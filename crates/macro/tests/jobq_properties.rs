//! Property tests of the PhishJobQ's invariants under arbitrary
//! request/release/complete interleavings.

use proptest::prelude::*;

use phish_macro::{AssignPolicy, JobId, JobQ, JobSpec};

#[derive(Debug, Clone)]
enum Op {
    Submit { priority: u8, cap: Option<u32> },
    Request,
    Release(usize),
    Complete(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            2 => (any::<u8>(), prop::option::of(1u32..6)).prop_map(|(priority, cap)| Op::Submit {
                priority,
                cap,
            }),
            4 => Just(Op::Request),
            1 => any::<usize>().prop_map(Op::Release),
            1 => any::<usize>().prop_map(Op::Complete),
        ],
        0..120,
    )
}

fn policy_strategy() -> impl Strategy<Value = AssignPolicy> {
    prop_oneof![
        Just(AssignPolicy::RoundRobin),
        Just(AssignPolicy::LeastLoaded),
        Just(AssignPolicy::FirstComeFirstServed),
        Just(AssignPolicy::MostDemand),
    ]
}

proptest! {
    #[test]
    fn capacity_and_priority_invariants(ops in ops(), policy in policy_strategy()) {
        let mut q = JobQ::with_policy(policy);
        let mut submitted: Vec<(JobId, u8, Option<u32>)> = Vec::new();
        let mut completed: Vec<JobId> = Vec::new();
        for op in ops {
            match op {
                Op::Submit { priority, cap } => {
                    let id = q.submit(JobSpec {
                        name: format!("j{}", submitted.len()),
                        priority,
                        max_participants: cap,
                    });
                    submitted.push((id, priority, cap));
                }
                Op::Request => {
                    if let Some(a) = q.request() {
                        // Assignment must be a live, submitted job.
                        let (_, prio, cap) = submitted
                            .iter()
                            .find(|(id, _, _)| *id == a.job)
                            .expect("assigned job was never submitted");
                        prop_assert!(!completed.contains(&a.job), "assigned a completed job");
                        // Capacity respected.
                        if let Some(cap) = cap {
                            prop_assert!(
                                q.participants(a.job).unwrap_or(0) <= *cap,
                                "capacity exceeded"
                            );
                        }
                        // Priority: no live job with capacity has strictly
                        // higher priority than the assigned one.
                        for (id, p, c) in &submitted {
                            if completed.contains(id) {
                                continue;
                            }
                            let has_room = c.is_none_or(|cap| {
                                q.participants(*id).unwrap_or(0) < cap
                            });
                            // The assigned job just gained a participant; a
                            // strictly-higher-priority job with room would
                            // have been chosen instead.
                            if has_room && *id != a.job {
                                prop_assert!(
                                    p <= prio,
                                    "priority inversion: assigned {prio}, available {p}"
                                );
                            }
                        }
                    }
                }
                Op::Release(i) => {
                    if !submitted.is_empty() {
                        let (id, _, _) = submitted[i % submitted.len()];
                        let before = q.participants(id);
                        q.release(id);
                        if let (Some(b), Some(after)) = (before, q.participants(id)) {
                            prop_assert!(after <= b, "release must not add participants");
                        }
                    }
                }
                Op::Complete(i) => {
                    if !submitted.is_empty() {
                        let (id, _, _) = submitted[i % submitted.len()];
                        q.complete(id);
                        if !completed.contains(&id) {
                            completed.push(id);
                        }
                        prop_assert!(q.participants(id).is_none(), "completed job lingers");
                    }
                }
            }
        }
        // Ledger consistency.
        let live = submitted.iter().filter(|(id, _, _)| !completed.contains(id)).count();
        prop_assert_eq!(q.len(), live, "pool size must equal live submissions");
    }

    #[test]
    fn round_robin_is_fair_over_equal_jobs(n_jobs in 1usize..8, rounds in 1usize..10) {
        let mut q = JobQ::new();
        let ids: Vec<JobId> = (0..n_jobs)
            .map(|i| q.submit(JobSpec::named(format!("j{i}"))))
            .collect();
        let mut counts = vec![0u32; n_jobs];
        for _ in 0..n_jobs * rounds {
            let a = q.request().expect("jobs available");
            let idx = ids.iter().position(|id| *id == a.job).expect("known job");
            counts[idx] += 1;
        }
        // Perfect fairness for equal-priority uncapped jobs.
        prop_assert!(counts.iter().all(|c| *c == rounds as u32), "{counts:?}");
    }
}
