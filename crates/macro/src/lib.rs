#![warn(missing_docs)]

//! # phish-macro — the macro-level idle-initiated scheduler
//!
//! The inter-application half of the paper's contribution: deciding which
//! workstations work on which parallel jobs. Its goals (§2): space-share
//! rather than time-share, accommodate dynamically changing parallelism,
//! and let owners retain sovereignty over their machines.
//!
//! Components, mirroring §3's architecture (Figure 2):
//!
//! * [`jobq::JobQ`] — the central pool of parallel jobs with non-preemptive
//!   round-robin assignment (the *PhishJobQ*).
//! * [`jobmanager::JobManager`] — the per-workstation daemon state machine
//!   with the paper's exact polling cadences: owner checks every 5 minutes
//!   while busy, job-request retries every 30 seconds, owner checks every
//!   2 seconds while a worker runs (the *PhishJobManager*).
//! * [`idleness`] — owner-chosen idleness policies.
//! * [`clearinghouse::Clearinghouse`] — the per-job registry, periodic
//!   roster updates (every 2 minutes), buffered worker I/O, and the
//!   heartbeat mechanism behind crash detection.
//!
//! Everything here is a pure, clock-driven state machine; the threaded
//! harness and the discrete-event simulator drive the same code.

pub mod clearinghouse;
pub mod clearinghouse_service;
pub mod deployment;
pub mod idleness;
pub mod jobmanager;
pub mod jobq;
pub mod jobq_service;

pub use clearinghouse::{
    Clearinghouse, ClearinghouseStats, Participant, Roster, HEARTBEAT_INTERVAL, HEARTBEAT_MISSES,
    UPDATE_INTERVAL,
};
pub use clearinghouse_service::{ChReply, ChRequest, ClearinghouseClient, ClearinghouseService};
pub use deployment::{
    Deployment, DeploymentConfig, JobOutcomeStats, OwnerScript, ParticipantExit, WorkerBody,
};
pub use idleness::{
    IdlenessPolicy, LoadBelowThreshold, NobodyLoggedIn, OwnerObservation, VacantAndQuiet,
};
pub use jobmanager::{
    Cadences, ExitReason, JobManager, KillReason, ManagerAction, ManagerState, JOB_REQUEST_RETRY,
    OWNER_POLL_WHILE_BUSY, OWNER_POLL_WHILE_RUNNING,
};
pub use jobq::{AssignPolicy, JobAssignment, JobId, JobQ, JobQStats, JobSpec};
pub use jobq_service::{JobQClient, JobQReply, JobQRequest, JobQService};
