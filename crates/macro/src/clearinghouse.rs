//! The Clearinghouse: per-job registry and services.
//!
//! "The Clearinghouse is a special program (independent of the particular
//! application) that is responsible for keeping track of all worker
//! processes participating in the job and providing various services to the
//! workers. When a worker starts, it registers with the Clearinghouse, and
//! when a worker quits, it unregisters. Workers can find out about the
//! other workers ... by obtaining periodic updates ... once every 2 minutes.
//! Workers can perform I/O through the Clearinghouse ... which is buffered
//! as much as possible." (§3)
//!
//! Heartbeats are this reproduction's concrete mechanism for the paper's
//! fault-tolerance claim: the Clearinghouse declares a worker crashed when
//! it misses enough heartbeats, and the recovery layer (phish-ft) redoes
//! the lost work.

use std::collections::HashMap;

use phish_net::time::{Nanos, SECOND};
use phish_net::NodeId;

/// "a worker process communicates with the Clearinghouse ... once every 2
/// minutes to obtain an update."
pub const UPDATE_INTERVAL: Nanos = 120 * SECOND;

/// Default heartbeat period for crash detection.
pub const HEARTBEAT_INTERVAL: Nanos = 5 * SECOND;

/// A worker missing this many consecutive heartbeats is declared crashed.
pub const HEARTBEAT_MISSES: u32 = 3;

/// A registered participant as seen by its peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Participant {
    /// Network address of the worker.
    pub node: NodeId,
    /// Registration time.
    pub joined_at: Nanos,
}

/// A roster snapshot returned by the periodic update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Roster {
    /// Monotonically increasing version; bumps on every join/leave.
    pub version: u64,
    /// Current participants, in join order.
    pub participants: Vec<Participant>,
}

/// Clearinghouse service counters (the §3 scalability argument rests on
/// these staying proportional to participants, not to tasks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClearinghouseStats {
    /// Registrations served.
    pub registrations: u64,
    /// Unregistrations served.
    pub unregistrations: u64,
    /// Roster updates served.
    pub updates_served: u64,
    /// Output lines accepted from workers.
    pub io_lines: u64,
    /// Buffered-I/O flushes performed.
    pub io_flushes: u64,
    /// Heartbeats received.
    pub heartbeats: u64,
    /// Workers declared crashed.
    pub crashes_detected: u64,
}

/// The per-job Clearinghouse.
#[derive(Debug)]
pub struct Clearinghouse {
    participants: HashMap<NodeId, ParticipantState>,
    join_order: Vec<NodeId>,
    version: u64,
    /// Buffered worker output: flushed to `output` when the buffer exceeds
    /// the threshold or on demand.
    io_buffer: Vec<String>,
    io_flush_threshold: usize,
    output: Vec<String>,
    stats: ClearinghouseStats,
}

#[derive(Debug, Clone, Copy)]
struct ParticipantState {
    joined_at: Nanos,
    last_heartbeat: Nanos,
}

impl Clearinghouse {
    /// A Clearinghouse with the default I/O buffering (64 lines).
    pub fn new() -> Self {
        Self::with_flush_threshold(64)
    }

    /// A Clearinghouse flushing worker output every `threshold` lines.
    pub fn with_flush_threshold(threshold: usize) -> Self {
        Self {
            participants: HashMap::new(),
            join_order: Vec::new(),
            version: 0,
            io_buffer: Vec::new(),
            io_flush_threshold: threshold.max(1),
            output: Vec::new(),
            stats: ClearinghouseStats::default(),
        }
    }

    /// A worker registers. Returns the roster so the newcomer immediately
    /// knows its peers. Re-registration refreshes the heartbeat without
    /// duplicating the entry.
    pub fn register(&mut self, node: NodeId, now: Nanos) -> Roster {
        self.stats.registrations += 1;
        if let Some(p) = self.participants.get_mut(&node) {
            p.last_heartbeat = now;
        } else {
            self.participants.insert(
                node,
                ParticipantState {
                    joined_at: now,
                    last_heartbeat: now,
                },
            );
            self.join_order.push(node);
            self.version += 1;
        }
        self.roster_snapshot()
    }

    /// A worker unregisters (clean exit).
    pub fn unregister(&mut self, node: NodeId) {
        if self.participants.remove(&node).is_some() {
            self.join_order.retain(|n| *n != node);
            self.version += 1;
            self.stats.unregistrations += 1;
        }
    }

    /// Serves the 2-minute periodic update and counts a heartbeat for the
    /// asking worker.
    pub fn update(&mut self, node: NodeId, now: Nanos) -> Roster {
        self.stats.updates_served += 1;
        self.heartbeat(node, now);
        self.roster_snapshot()
    }

    /// Records a heartbeat from `node`.
    pub fn heartbeat(&mut self, node: NodeId, now: Nanos) {
        if let Some(p) = self.participants.get_mut(&node) {
            p.last_heartbeat = now;
            self.stats.heartbeats += 1;
        }
    }

    /// Declares crashed every participant that has missed
    /// [`HEARTBEAT_MISSES`] heartbeats, removing them from the roster and
    /// returning them for the recovery layer.
    pub fn detect_crashes(&mut self, now: Nanos) -> Vec<NodeId> {
        self.detect_crashes_with(now, HEARTBEAT_INTERVAL * Nanos::from(HEARTBEAT_MISSES))
    }

    /// [`Clearinghouse::detect_crashes`] with an explicit silence deadline
    /// (tests and fast-failover deployments use short ones).
    pub fn detect_crashes_with(&mut self, now: Nanos, deadline: Nanos) -> Vec<NodeId> {
        let crashed: Vec<NodeId> = self
            .join_order
            .iter()
            .copied()
            .filter(|n| {
                let p = &self.participants[n];
                now.saturating_sub(p.last_heartbeat) >= deadline
            })
            .collect();
        for node in &crashed {
            self.participants.remove(node);
            self.join_order.retain(|n| n != node);
            self.version += 1;
            self.stats.crashes_detected += 1;
        }
        crashed
    }

    /// Accepts a line of worker output ("a user need only watch the
    /// Clearinghouse to see job output"), buffering it.
    pub fn write_line(&mut self, node: NodeId, line: impl Into<String>) {
        self.stats.io_lines += 1;
        self.io_buffer.push(format!("[{node}] {}", line.into()));
        if self.io_buffer.len() >= self.io_flush_threshold {
            self.flush_io();
        }
    }

    /// Flushes buffered output.
    pub fn flush_io(&mut self) {
        if !self.io_buffer.is_empty() {
            self.stats.io_flushes += 1;
            self.output.append(&mut self.io_buffer);
        }
    }

    /// All flushed output lines, in arrival order.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Number of live participants.
    pub fn participant_count(&self) -> usize {
        self.participants.len()
    }

    /// Current roster version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ClearinghouseStats {
        self.stats
    }

    fn roster_snapshot(&self) -> Roster {
        Roster {
            version: self.version,
            participants: self
                .join_order
                .iter()
                .map(|n| Participant {
                    node: *n,
                    joined_at: self.participants[n].joined_at,
                })
                .collect(),
        }
    }
}

impl Default for Clearinghouse {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_unregister_update_roster() {
        let mut ch = Clearinghouse::new();
        let r1 = ch.register(NodeId(1), 0);
        assert_eq!(r1.participants.len(), 1);
        let r2 = ch.register(NodeId(2), 10);
        assert_eq!(r2.participants.len(), 2);
        assert!(r2.version > r1.version);
        ch.unregister(NodeId(1));
        assert_eq!(ch.participant_count(), 1);
        let r3 = ch.update(NodeId(2), 20);
        assert_eq!(r3.participants.len(), 1);
        assert_eq!(r3.participants[0].node, NodeId(2));
    }

    #[test]
    fn reregistration_is_idempotent() {
        let mut ch = Clearinghouse::new();
        ch.register(NodeId(1), 0);
        let v = ch.version();
        ch.register(NodeId(1), 5);
        assert_eq!(ch.version(), v, "re-register must not bump the roster");
        assert_eq!(ch.participant_count(), 1);
    }

    #[test]
    fn roster_preserves_join_order() {
        let mut ch = Clearinghouse::new();
        for i in [5u32, 2, 9] {
            ch.register(NodeId(i), u64::from(i));
        }
        let roster = ch.update(NodeId(5), 100);
        let order: Vec<u32> = roster.participants.iter().map(|p| p.node.0).collect();
        assert_eq!(order, vec![5, 2, 9]);
    }

    #[test]
    fn crash_detection_after_missed_heartbeats() {
        let mut ch = Clearinghouse::new();
        ch.register(NodeId(1), 0);
        ch.register(NodeId(2), 0);
        // Node 2 keeps beating; node 1 goes silent.
        let deadline = HEARTBEAT_INTERVAL * Nanos::from(HEARTBEAT_MISSES);
        ch.heartbeat(NodeId(2), deadline - SECOND);
        let crashed = ch.detect_crashes(deadline);
        assert_eq!(crashed, vec![NodeId(1)]);
        assert_eq!(ch.participant_count(), 1);
        assert_eq!(ch.stats().crashes_detected, 1);
        // No double detection.
        assert!(ch.detect_crashes(deadline).is_empty());
    }

    #[test]
    fn heartbeat_from_unknown_node_ignored() {
        let mut ch = Clearinghouse::new();
        ch.heartbeat(NodeId(9), 0);
        assert_eq!(ch.stats().heartbeats, 0);
    }

    #[test]
    fn io_is_buffered_then_flushed() {
        let mut ch = Clearinghouse::with_flush_threshold(3);
        ch.write_line(NodeId(1), "a");
        ch.write_line(NodeId(1), "b");
        assert!(ch.output().is_empty(), "below threshold: still buffered");
        ch.write_line(NodeId(2), "c");
        assert_eq!(ch.output().len(), 3, "threshold reached: flushed");
        assert_eq!(ch.output()[2], "[n2] c");
        assert_eq!(ch.stats().io_flushes, 1);
        // Manual flush drains stragglers.
        ch.write_line(NodeId(1), "d");
        ch.flush_io();
        assert_eq!(ch.output().len(), 4);
    }

    #[test]
    fn update_counts_as_heartbeat() {
        let mut ch = Clearinghouse::new();
        ch.register(NodeId(1), 0);
        let deadline = HEARTBEAT_INTERVAL * Nanos::from(HEARTBEAT_MISSES);
        ch.update(NodeId(1), deadline - 1);
        assert!(ch.detect_crashes(deadline).is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut ch = Clearinghouse::new();
        ch.register(NodeId(1), 0);
        ch.update(NodeId(1), 1);
        ch.unregister(NodeId(1));
        let s = ch.stats();
        assert_eq!(s.registrations, 1);
        assert_eq!(s.updates_served, 1);
        assert_eq!(s.unregistrations, 1);
        assert_eq!(s.heartbeats, 1);
    }
}
