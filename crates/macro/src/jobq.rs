//! The PhishJobQ: the central pool of parallel jobs.
//!
//! "The PhishJobQ, an RPC server, resides on one computer and manages the
//! pool of parallel jobs. ... When an idle workstation requests a job, the
//! PhishJobQ assigns one of its parallel jobs to the idle workstation.
//! ... when it assigns a job to a workstation, the scheduler keeps that job
//! in its pool so that the job can also be assigned to other idle
//! workstations. Our current implementation ... uses a non-preemptive
//! round-robin scheduling algorithm to assign jobs." (§2–3)
//!
//! This structure is transport-agnostic: the threaded harness calls it
//! behind a mutex, the discrete-event simulator calls it from event
//! handlers and charges message costs separately.

use std::collections::HashMap;

/// Identifies a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// A job as submitted to the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Human-readable name (e.g. `"ray my-scene"`).
    pub name: String,
    /// Scheduling priority; higher wins. Jobs of equal priority share
    /// round-robin.
    pub priority: u8,
    /// Cap on simultaneous participants (`None` = unlimited). Lets the
    /// space-sharing experiments partition a fleet among jobs.
    pub max_participants: Option<u32>,
}

impl JobSpec {
    /// A default-priority, uncapped job.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            priority: 0,
            max_participants: None,
        }
    }
}

#[derive(Debug, Clone)]
struct JobEntry {
    spec: JobSpec,
    participants: u32,
    assignments_made: u64,
}

/// The assignment handed to an idle workstation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobAssignment {
    /// Which job to join.
    pub job: JobId,
    /// Job name (for the worker's logs).
    pub name: String,
}

/// Traffic and outcome counters for the JobQ (scalability evidence: §3
/// argues the JobQ stays coarse-grained).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobQStats {
    /// Requests that received an assignment.
    pub assignments: u64,
    /// Requests refused because the pool was empty (or all jobs full).
    pub refusals: u64,
    /// Jobs submitted over the queue's lifetime.
    pub submissions: u64,
    /// Jobs completed.
    pub completions: u64,
}

/// How the JobQ picks among the highest-priority jobs with capacity.
///
/// §3: "Our current implementation of the PhishJobQ uses a non-preemptive
/// round-robin scheduling algorithm to assign jobs. ... Future
/// implementations of Phish will provide opportunities for using and
/// studying more sophisticated job assignment algorithms" — these are those
/// opportunities, compared head-to-head by the `macro_policies` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignPolicy {
    /// The paper's choice: cycle through the pool (equal shares of
    /// *assignments*).
    #[default]
    RoundRobin,
    /// Give the next workstation to the job with the fewest current
    /// participants (equal shares of *machines* — fair space-sharing).
    LeastLoaded,
    /// Always the oldest unfinished job (FCFS: minimizes the lead job's
    /// completion time, starves the rest while it runs).
    FirstComeFirstServed,
    /// The job with the most remaining appetite (capacity minus current
    /// participants); uncapped jobs count as infinitely hungry.
    MostDemand,
}

/// The job pool with non-preemptive assignment under a pluggable policy
/// (round-robin by default, as in the paper).
#[derive(Debug, Default)]
pub struct JobQ {
    jobs: HashMap<JobId, JobEntry>,
    /// Submission/rotation order; rotated on each round-robin assignment.
    rotation: Vec<JobId>,
    next_id: u64,
    stats: JobQStats,
    policy: AssignPolicy,
}

impl JobQ {
    /// An empty pool with the paper's round-robin policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with the given assignment policy.
    pub fn with_policy(policy: AssignPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The active assignment policy.
    pub fn policy(&self) -> AssignPolicy {
        self.policy
    }

    /// Submits a job, returning its id.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobEntry {
                spec,
                participants: 0,
                assignments_made: 0,
            },
        );
        self.rotation.push(id);
        self.stats.submissions += 1;
        id
    }

    /// An idle workstation requests a job. Picks among the
    /// highest-priority jobs with capacity according to the assignment
    /// policy, keeping the job in the pool; `None` if no job is available.
    pub fn request(&mut self) -> Option<JobAssignment> {
        let best_priority = self.rotation.iter().filter_map(|id| {
            let e = &self.jobs[id];
            has_capacity(e).then_some(e.spec.priority)
        });
        let Some(best_priority) = best_priority.max() else {
            self.stats.refusals += 1;
            return None;
        };
        let eligible = |jobs: &HashMap<JobId, JobEntry>, id: &JobId| {
            let e = &jobs[id];
            e.spec.priority == best_priority && has_capacity(e)
        };
        let pos = match self.policy {
            // First eligible in rotation order; the rotate below makes it
            // round-robin.
            AssignPolicy::RoundRobin | AssignPolicy::FirstComeFirstServed => {
                self.rotation.iter().position(|id| eligible(&self.jobs, id))
            }
            AssignPolicy::LeastLoaded => self
                .rotation
                .iter()
                .enumerate()
                .filter(|(_, id)| eligible(&self.jobs, id))
                .min_by_key(|(_, id)| self.jobs[*id].participants)
                .map(|(i, _)| i),
            AssignPolicy::MostDemand => self
                .rotation
                .iter()
                .enumerate()
                .filter(|(_, id)| eligible(&self.jobs, id))
                .max_by_key(|(_, id)| {
                    let e = &self.jobs[*id];
                    e.spec
                        .max_participants
                        .map_or(u64::MAX, |cap| u64::from(cap - e.participants))
                })
                .map(|(i, _)| i),
        };
        let Some(pos) = pos else {
            self.stats.refusals += 1;
            return None;
        };
        let id = if self.policy == AssignPolicy::RoundRobin {
            // Rotate: move the chosen job to the back of the rotation.
            let id = self.rotation.remove(pos);
            self.rotation.push(id);
            id
        } else {
            self.rotation[pos]
        };
        let entry = self.jobs.get_mut(&id).expect("rotation entry exists");
        entry.participants += 1;
        entry.assignments_made += 1;
        self.stats.assignments += 1;
        Some(JobAssignment {
            job: id,
            name: entry.spec.name.clone(),
        })
    }

    /// A participant left `job` (worker exit, owner reclaim, retirement).
    pub fn release(&mut self, job: JobId) {
        if let Some(e) = self.jobs.get_mut(&job) {
            e.participants = e.participants.saturating_sub(1);
        }
    }

    /// The job finished; remove it from the pool.
    pub fn complete(&mut self, job: JobId) {
        if self.jobs.remove(&job).is_some() {
            self.rotation.retain(|id| *id != job);
            self.stats.completions += 1;
        }
    }

    /// True when a strictly higher-priority job than `current` could use a
    /// participant — the only case where the macro scheduler preempts
    /// ("this preemption is the only case in which the macro-level
    /// scheduler performs time-sharing").
    pub fn should_preempt(&self, current: JobId) -> Option<JobId> {
        let cur_priority = self.jobs.get(&current)?.spec.priority;
        self.rotation
            .iter()
            .filter(|id| **id != current)
            .filter(|id| {
                let e = &self.jobs[*id];
                e.spec.priority > cur_priority && has_capacity(e)
            })
            .max_by_key(|id| self.jobs[*id].spec.priority)
            .copied()
    }

    /// Number of jobs currently pooled.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Current participant count of `job`.
    pub fn participants(&self, job: JobId) -> Option<u32> {
        self.jobs.get(&job).map(|e| e.participants)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> JobQStats {
        self.stats
    }

    /// Records a refusal issued by the surrounding server (e.g. the RPC
    /// layer timed out a request). Exposed so harnesses keep one ledger.
    pub fn record_refusal(&mut self) {
        self.stats.refusals += 1;
    }
}

fn has_capacity(e: &JobEntry) -> bool {
    e.spec
        .max_participants
        .is_none_or(|cap| e.participants < cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pool_refuses() {
        let mut q = JobQ::new();
        assert!(q.request().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn single_job_assigned_repeatedly() {
        // "the scheduler keeps that job in its pool so that the job can
        // also be assigned to other idle workstations."
        let mut q = JobQ::new();
        let id = q.submit(JobSpec::named("pfold"));
        for _ in 0..5 {
            let a = q.request().expect("job available");
            assert_eq!(a.job, id);
        }
        assert_eq!(q.participants(id), Some(5));
    }

    #[test]
    fn round_robin_across_jobs() {
        let mut q = JobQ::new();
        let a = q.submit(JobSpec::named("a"));
        let b = q.submit(JobSpec::named("b"));
        let c = q.submit(JobSpec::named("c"));
        let seq: Vec<JobId> = (0..6).map(|_| q.request().unwrap().job).collect();
        assert_eq!(seq, vec![a, b, c, a, b, c]);
    }

    #[test]
    fn completion_removes_from_rotation() {
        let mut q = JobQ::new();
        let a = q.submit(JobSpec::named("a"));
        let b = q.submit(JobSpec::named("b"));
        q.complete(a);
        assert_eq!(q.len(), 1);
        for _ in 0..3 {
            assert_eq!(q.request().unwrap().job, b);
        }
    }

    #[test]
    fn priority_beats_rotation() {
        let mut q = JobQ::new();
        let _low = q.submit(JobSpec::named("low"));
        let high = q.submit(JobSpec {
            name: "high".into(),
            priority: 5,
            max_participants: None,
        });
        for _ in 0..3 {
            assert_eq!(q.request().unwrap().job, high);
        }
    }

    #[test]
    fn capacity_caps_assignments() {
        let mut q = JobQ::new();
        let capped = q.submit(JobSpec {
            name: "capped".into(),
            priority: 1,
            max_participants: Some(2),
        });
        let open = q.submit(JobSpec::named("open"));
        assert_eq!(q.request().unwrap().job, capped);
        assert_eq!(q.request().unwrap().job, capped);
        // Capped job is full: lower-priority open job serves next.
        assert_eq!(q.request().unwrap().job, open);
        // Release a seat; capped becomes assignable again.
        q.release(capped);
        assert_eq!(q.request().unwrap().job, capped);
    }

    #[test]
    fn preemption_only_for_strictly_higher_priority() {
        let mut q = JobQ::new();
        let low = q.submit(JobSpec {
            name: "low".into(),
            priority: 1,
            max_participants: None,
        });
        let same = q.submit(JobSpec {
            name: "same".into(),
            priority: 1,
            max_participants: None,
        });
        assert_eq!(q.should_preempt(low), None, "equal priority: no preempt");
        let high = q.submit(JobSpec {
            name: "high".into(),
            priority: 9,
            max_participants: None,
        });
        assert_eq!(q.should_preempt(low), Some(high));
        assert_eq!(q.should_preempt(same), Some(high));
        assert_eq!(q.should_preempt(high), None);
    }

    #[test]
    fn least_loaded_balances_machines() {
        let mut q = JobQ::with_policy(AssignPolicy::LeastLoaded);
        let a = q.submit(JobSpec::named("a"));
        let b = q.submit(JobSpec::named("b"));
        // Preload job a with 3 participants via direct requests under
        // round-robin semantics... instead: request 6 and check balance.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..6 {
            *counts.entry(q.request().unwrap().job).or_insert(0) += 1;
        }
        assert_eq!(counts[&a], 3);
        assert_eq!(counts[&b], 3);
        // Now release two seats from a; the next two go to a.
        q.release(a);
        q.release(a);
        assert_eq!(q.request().unwrap().job, a);
        assert_eq!(q.request().unwrap().job, a);
    }

    #[test]
    fn fcfs_starves_later_jobs() {
        let mut q = JobQ::with_policy(AssignPolicy::FirstComeFirstServed);
        let a = q.submit(JobSpec::named("first"));
        let _b = q.submit(JobSpec::named("second"));
        for _ in 0..5 {
            assert_eq!(q.request().unwrap().job, a);
        }
    }

    #[test]
    fn fcfs_falls_through_when_first_is_full() {
        let mut q = JobQ::with_policy(AssignPolicy::FirstComeFirstServed);
        let a = q.submit(JobSpec {
            name: "first".into(),
            priority: 0,
            max_participants: Some(1),
        });
        let b = q.submit(JobSpec::named("second"));
        assert_eq!(q.request().unwrap().job, a);
        assert_eq!(q.request().unwrap().job, b, "first is full");
    }

    #[test]
    fn most_demand_prefers_hungriest() {
        let mut q = JobQ::with_policy(AssignPolicy::MostDemand);
        let small = q.submit(JobSpec {
            name: "small".into(),
            priority: 0,
            max_participants: Some(2),
        });
        let big = q.submit(JobSpec {
            name: "big".into(),
            priority: 0,
            max_participants: Some(10),
        });
        let uncapped = q.submit(JobSpec::named("uncapped"));
        // Uncapped counts as infinite demand.
        for _ in 0..4 {
            assert_eq!(q.request().unwrap().job, uncapped);
        }
        q.complete(uncapped);
        // Then the big job until its demand drops to the small one's.
        for _ in 0..8 {
            assert_eq!(q.request().unwrap().job, big);
        }
        // big now has 8/10 = demand 2, equal to small's; max_by_key takes
        // the last maximal element in iteration order on ties, but either
        // is acceptable — just drain and verify capacity is respected.
        let mut seen = std::collections::HashMap::new();
        for _ in 0..4 {
            *seen.entry(q.request().unwrap().job).or_insert(0u32) += 1;
        }
        assert_eq!(seen.get(&big).copied().unwrap_or(0), 2);
        assert_eq!(seen.get(&small).copied().unwrap_or(0), 2);
        assert!(q.request().is_none(), "everything is full");
    }

    #[test]
    fn policy_accessor() {
        assert_eq!(JobQ::new().policy(), AssignPolicy::RoundRobin);
        assert_eq!(
            JobQ::with_policy(AssignPolicy::LeastLoaded).policy(),
            AssignPolicy::LeastLoaded
        );
    }

    #[test]
    fn stats_account_for_everything() {
        let mut q = JobQ::new();
        assert!(q.request().is_none());
        let a = q.submit(JobSpec::named("a"));
        q.request();
        q.request();
        q.complete(a);
        q.record_refusal();
        let s = q.stats();
        assert_eq!(s.submissions, 1);
        assert_eq!(s.assignments, 2);
        assert_eq!(s.completions, 1);
        assert_eq!(s.refusals, 2, "empty-pool request + explicit refusal");
    }
}
