//! The PhishJobManager: the per-workstation daemon.
//!
//! "The PhishJobManager, a background daemon, resides on every workstation
//! ... and tries to obtain a job from the PhishJobQ when the workstation
//! becomes idle. ... While users are logged in, the PhishJobManager checks
//! every five minutes to see if they have logged out. ... If the PhishJobQ
//! responds negatively ... the PhishJobManager continues to request a job
//! every thirty seconds. ... In the meantime, the PhishJobManager checks
//! every two seconds to see if anyone has logged in. If so, it terminates
//! the worker process." (§3)
//!
//! The manager is a pure, clock-driven state machine: callers feed it
//! owner observations and JobQ replies; it emits actions. That makes every
//! timing rule unit-testable and lets the discrete-event simulator drive
//! thousands of managers deterministically.

use phish_net::time::{Nanos, SECOND};

use crate::idleness::{IdlenessPolicy, OwnerObservation};
use crate::jobq::JobAssignment;

/// "While users are logged in, the PhishJobManager checks every five
/// minutes to see if they have logged out."
pub const OWNER_POLL_WHILE_BUSY: Nanos = 300 * SECOND;

/// "...continues to request a job every thirty seconds until it gets a job."
pub const JOB_REQUEST_RETRY: Nanos = 30 * SECOND;

/// "...the PhishJobManager checks every two seconds to see if anyone has
/// logged in."
pub const OWNER_POLL_WHILE_RUNNING: Nanos = 2 * SECOND;

/// The manager's polling cadences. Defaults are the paper's; threaded
/// test deployments scale them down to milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cadences {
    /// Owner poll period while the owner is using the machine.
    pub owner_poll_busy: Nanos,
    /// Job-request retry period while hunting for work.
    pub job_retry: Nanos,
    /// Owner poll period while a worker is running.
    pub owner_poll_running: Nanos,
}

impl Default for Cadences {
    fn default() -> Self {
        Self {
            owner_poll_busy: OWNER_POLL_WHILE_BUSY,
            job_retry: JOB_REQUEST_RETRY,
            owner_poll_running: OWNER_POLL_WHILE_RUNNING,
        }
    }
}

impl Cadences {
    /// The paper's cadences divided by `factor` — for real-time test
    /// deployments that cannot wait five minutes for an owner poll.
    pub fn scaled_down(factor: u64) -> Self {
        let d = Self::default();
        Self {
            owner_poll_busy: (d.owner_poll_busy / factor).max(1),
            job_retry: (d.job_retry / factor).max(1),
            owner_poll_running: (d.owner_poll_running / factor).max(1),
        }
    }
}

/// What the manager wants done right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagerAction {
    /// Send a job request to the PhishJobQ.
    RequestJob,
    /// Start a worker process participating in this assignment.
    StartWorker(JobAssignment),
    /// Terminate the running worker.
    KillWorker(KillReason),
}

/// Why a worker is being killed or has exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillReason {
    /// The owner logged back in / the machine stopped being idle.
    OwnerReturned,
    /// The macro scheduler preempted the job for a higher-priority one.
    Preempted,
}

/// Why a worker exited on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The parallel job terminated.
    JobFinished,
    /// The worker retired: parallelism in the job shrank.
    ParallelismShrank,
    /// The worker process crashed.
    Crashed,
}

/// Manager state (exposed for tests and fleet statistics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagerState {
    /// Owner is using the machine; polling every 5 minutes.
    OwnerActive,
    /// Machine idle, asking the JobQ for work every 30 seconds.
    RequestingJob,
    /// A request is in flight.
    AwaitingReply,
    /// A worker process is participating in a job.
    Participating(JobAssignment),
}

/// The per-workstation daemon state machine.
pub struct JobManager {
    policy: Box<dyn IdlenessPolicy>,
    state: ManagerState,
    /// Next time the current state's timer fires.
    next_timer: Nanos,
    cadences: Cadences,
}

impl std::fmt::Debug for JobManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobManager")
            .field("state", &self.state)
            .field("next_timer", &self.next_timer)
            .finish()
    }
}

impl JobManager {
    /// A manager whose owner is currently using the machine; first owner
    /// check at `now` + 5 min.
    pub fn new(policy: Box<dyn IdlenessPolicy>, now: Nanos) -> Self {
        Self::with_cadences(policy, now, Cadences::default())
    }

    /// A manager with custom polling cadences (the paper's are the
    /// default; see [`Cadences::scaled_down`] for fast test deployments).
    pub fn with_cadences(policy: Box<dyn IdlenessPolicy>, now: Nanos, cadences: Cadences) -> Self {
        Self {
            policy,
            state: ManagerState::OwnerActive,
            next_timer: now + cadences.owner_poll_busy,
            cadences,
        }
    }

    /// Current state.
    pub fn state(&self) -> &ManagerState {
        &self.state
    }

    /// When the manager next needs a `tick` (simulators schedule exactly
    /// this; threaded drivers may tick more often, harmlessly).
    pub fn next_timer(&self) -> Nanos {
        self.next_timer
    }

    /// Clock tick with a fresh owner observation. Returns the actions to
    /// perform. Ticks before `next_timer` are cheap no-ops except that an
    /// owner return while participating is always honoured at the 2-second
    /// cadence.
    pub fn tick(&mut self, now: Nanos, obs: &OwnerObservation) -> Vec<ManagerAction> {
        if now < self.next_timer {
            return Vec::new();
        }
        match &self.state {
            ManagerState::OwnerActive => {
                if self.policy.is_idle(obs) {
                    self.state = ManagerState::AwaitingReply;
                    // The retry timer guards against a lost reply.
                    self.next_timer = now + self.cadences.job_retry;
                    vec![ManagerAction::RequestJob]
                } else {
                    self.next_timer = now + self.cadences.owner_poll_busy;
                    Vec::new()
                }
            }
            ManagerState::RequestingJob | ManagerState::AwaitingReply => {
                if !self.policy.is_idle(obs) {
                    // Owner came back before we ever got work.
                    self.state = ManagerState::OwnerActive;
                    self.next_timer = now + self.cadences.owner_poll_busy;
                    Vec::new()
                } else {
                    self.state = ManagerState::AwaitingReply;
                    self.next_timer = now + self.cadences.job_retry;
                    vec![ManagerAction::RequestJob]
                }
            }
            ManagerState::Participating(_) => {
                if self.policy.is_idle(obs) {
                    self.next_timer = now + self.cadences.owner_poll_running;
                    Vec::new()
                } else {
                    self.state = ManagerState::OwnerActive;
                    self.next_timer = now + self.cadences.owner_poll_busy;
                    vec![ManagerAction::KillWorker(KillReason::OwnerReturned)]
                }
            }
        }
    }

    /// The JobQ's reply to our request.
    pub fn on_job_reply(&mut self, now: Nanos, reply: Option<JobAssignment>) -> Vec<ManagerAction> {
        debug_assert!(
            matches!(self.state, ManagerState::AwaitingReply),
            "unsolicited job reply in state {:?}",
            self.state
        );
        match reply {
            Some(assignment) => {
                self.state = ManagerState::Participating(assignment.clone());
                self.next_timer = now + self.cadences.owner_poll_running;
                vec![ManagerAction::StartWorker(assignment)]
            }
            None => {
                self.state = ManagerState::RequestingJob;
                self.next_timer = now + self.cadences.job_retry;
                Vec::new()
            }
        }
    }

    /// The worker process exited on its own. The workstation goes straight
    /// back to hunting for a job ("the macro-level scheduler accommodates
    /// this time-varying parallelism by reassigning the freed workstations
    /// to other jobs").
    pub fn on_worker_exit(&mut self, now: Nanos, _reason: ExitReason) -> Vec<ManagerAction> {
        debug_assert!(
            matches!(self.state, ManagerState::Participating(_)),
            "worker exit without a worker in state {:?}",
            self.state
        );
        self.state = ManagerState::AwaitingReply;
        self.next_timer = now + self.cadences.job_retry;
        vec![ManagerAction::RequestJob]
    }

    /// The macro scheduler preempts the current job for `reason`
    /// (priority). Emits the kill; the caller should then deliver the new
    /// assignment via [`JobManager::on_job_reply`].
    pub fn preempt(&mut self, now: Nanos) -> Vec<ManagerAction> {
        debug_assert!(matches!(self.state, ManagerState::Participating(_)));
        self.state = ManagerState::AwaitingReply;
        self.next_timer = now + self.cadences.job_retry;
        vec![
            ManagerAction::KillWorker(KillReason::Preempted),
            ManagerAction::RequestJob,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idleness::NobodyLoggedIn;
    use crate::jobq::JobId;

    fn manager() -> JobManager {
        JobManager::new(Box::new(NobodyLoggedIn), 0)
    }

    fn assignment() -> JobAssignment {
        JobAssignment {
            job: JobId(1),
            name: "pfold".into(),
        }
    }

    const IDLE: OwnerObservation = OwnerObservation {
        users_logged_in: 0,
        cpu_load: 0.0,
    };
    const BUSY: OwnerObservation = OwnerObservation {
        users_logged_in: 1,
        cpu_load: 0.4,
    };

    #[test]
    fn busy_owner_polled_every_five_minutes() {
        let mut m = manager();
        assert!(m.tick(10 * SECOND, &BUSY).is_empty(), "before timer: no-op");
        assert!(m.tick(OWNER_POLL_WHILE_BUSY, &BUSY).is_empty());
        assert_eq!(m.next_timer(), 2 * OWNER_POLL_WHILE_BUSY);
        assert_eq!(*m.state(), ManagerState::OwnerActive);
    }

    #[test]
    fn idle_owner_triggers_job_request() {
        let mut m = manager();
        let actions = m.tick(OWNER_POLL_WHILE_BUSY, &IDLE);
        assert_eq!(actions, vec![ManagerAction::RequestJob]);
        assert_eq!(*m.state(), ManagerState::AwaitingReply);
    }

    #[test]
    fn negative_reply_retries_every_thirty_seconds() {
        let mut m = manager();
        let t0 = OWNER_POLL_WHILE_BUSY;
        m.tick(t0, &IDLE);
        assert!(m.on_job_reply(t0, None).is_empty());
        assert_eq!(*m.state(), ManagerState::RequestingJob);
        // Nothing until 30s pass.
        assert!(m.tick(t0 + JOB_REQUEST_RETRY - 1, &IDLE).is_empty());
        let actions = m.tick(t0 + JOB_REQUEST_RETRY, &IDLE);
        assert_eq!(actions, vec![ManagerAction::RequestJob]);
    }

    #[test]
    fn positive_reply_starts_worker() {
        let mut m = manager();
        let t0 = OWNER_POLL_WHILE_BUSY;
        m.tick(t0, &IDLE);
        let actions = m.on_job_reply(t0, Some(assignment()));
        assert_eq!(actions, vec![ManagerAction::StartWorker(assignment())]);
        assert!(matches!(m.state(), ManagerState::Participating(_)));
        assert_eq!(m.next_timer(), t0 + OWNER_POLL_WHILE_RUNNING);
    }

    #[test]
    fn owner_return_kills_worker_within_two_seconds() {
        let mut m = manager();
        let t0 = OWNER_POLL_WHILE_BUSY;
        m.tick(t0, &IDLE);
        m.on_job_reply(t0, Some(assignment()));
        // Still idle at the first 2s check.
        assert!(m.tick(t0 + OWNER_POLL_WHILE_RUNNING, &IDLE).is_empty());
        // Owner logs in; next 2s check kills the worker.
        let actions = m.tick(t0 + 2 * OWNER_POLL_WHILE_RUNNING, &BUSY);
        assert_eq!(
            actions,
            vec![ManagerAction::KillWorker(KillReason::OwnerReturned)]
        );
        assert_eq!(*m.state(), ManagerState::OwnerActive);
    }

    #[test]
    fn worker_exit_rerequests_immediately() {
        let mut m = manager();
        let t0 = OWNER_POLL_WHILE_BUSY;
        m.tick(t0, &IDLE);
        m.on_job_reply(t0, Some(assignment()));
        let actions = m.on_worker_exit(t0 + SECOND, ExitReason::ParallelismShrank);
        assert_eq!(actions, vec![ManagerAction::RequestJob]);
        assert_eq!(*m.state(), ManagerState::AwaitingReply);
    }

    #[test]
    fn owner_return_while_requesting_goes_quiet() {
        let mut m = manager();
        let t0 = OWNER_POLL_WHILE_BUSY;
        m.tick(t0, &IDLE);
        m.on_job_reply(t0, None);
        let actions = m.tick(t0 + JOB_REQUEST_RETRY, &BUSY);
        assert!(actions.is_empty());
        assert_eq!(*m.state(), ManagerState::OwnerActive);
        assert_eq!(
            m.next_timer(),
            t0 + JOB_REQUEST_RETRY + OWNER_POLL_WHILE_BUSY
        );
    }

    #[test]
    fn preemption_kills_then_rerequests() {
        let mut m = manager();
        let t0 = OWNER_POLL_WHILE_BUSY;
        m.tick(t0, &IDLE);
        m.on_job_reply(t0, Some(assignment()));
        let actions = m.preempt(t0 + SECOND);
        assert_eq!(
            actions,
            vec![
                ManagerAction::KillWorker(KillReason::Preempted),
                ManagerAction::RequestJob,
            ]
        );
    }

    #[test]
    fn scaled_cadences_shrink_all_timers() {
        let c = Cadences::scaled_down(1000);
        assert_eq!(c.owner_poll_busy, OWNER_POLL_WHILE_BUSY / 1000);
        assert_eq!(c.job_retry, JOB_REQUEST_RETRY / 1000);
        assert_eq!(c.owner_poll_running, OWNER_POLL_WHILE_RUNNING / 1000);
        let mut m = JobManager::with_cadences(Box::new(NobodyLoggedIn), 0, c);
        assert_eq!(m.next_timer(), c.owner_poll_busy);
        let actions = m.tick(c.owner_poll_busy, &IDLE);
        assert_eq!(actions, vec![ManagerAction::RequestJob]);
    }

    #[test]
    fn lost_reply_recovers_via_retry_timer() {
        // The request (or its reply) vanished on the datagram network: the
        // 30s timer must re-issue it.
        let mut m = manager();
        let t0 = OWNER_POLL_WHILE_BUSY;
        m.tick(t0, &IDLE);
        // No on_job_reply ever arrives.
        let actions = m.tick(t0 + JOB_REQUEST_RETRY, &IDLE);
        assert_eq!(actions, vec![ManagerAction::RequestJob]);
        assert_eq!(*m.state(), ManagerState::AwaitingReply);
    }
}
