//! The PhishJobQ as an actual RPC server.
//!
//! "The PhishJobQ, an RPC server, resides on one computer and manages the
//! pool of parallel jobs." (§3) [`JobQService`] runs a [`JobQ`] behind a
//! [`phish_net::RpcServer`] on its own thread; [`JobQClient`] is what a
//! PhishJobManager (or a submitting user) holds. The request/reply bodies
//! are small, fixed-size messages, matching the coarse-grained protocol
//! the scalability conjecture depends on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use phish_net::{
    Fabric, FabricConfig, FabricHandle, NodeId, RpcClient, RpcFrame, RpcServer, WireSized,
};

use crate::jobq::{AssignPolicy, JobAssignment, JobId, JobQ, JobQStats, JobSpec};

/// Requests a workstation (or user) sends to the JobQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobQRequest {
    /// An idle workstation asks for a job.
    RequestJob,
    /// A participant left the job (exit, eviction, retirement).
    Release(JobId),
    /// A participant reports the job finished.
    Complete(JobId),
    /// A user submits a job.
    Submit(JobSpec),
    /// Ask for the queue's statistics.
    Stats,
}

/// The JobQ's replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobQReply {
    /// Assignment, or `None` when the pool is empty ("responds
    /// negatively").
    Assignment(Option<JobAssignment>),
    /// Acknowledgement of release/complete.
    Ack,
    /// The id of a submitted job.
    Submitted(JobId),
    /// Queue statistics.
    Stats(JobQStats),
}

impl WireSized for JobQRequest {
    fn wire_bytes(&self) -> usize {
        match self {
            JobQRequest::Submit(spec) => phish_net::message::HEADER_BYTES + spec.name.len() + 8,
            _ => phish_net::message::HEADER_BYTES + 8,
        }
    }
}

impl WireSized for JobQReply {
    fn wire_bytes(&self) -> usize {
        match self {
            JobQReply::Assignment(Some(a)) => phish_net::message::HEADER_BYTES + a.name.len() + 8,
            _ => phish_net::message::HEADER_BYTES + 8,
        }
    }
}

type Frame = RpcFrame<JobQRequest, JobQReply>;

/// A running JobQ server plus the endpoints its clients use.
pub struct JobQService {
    handle: Option<std::thread::JoinHandle<JobQ>>,
    stop: Arc<AtomicBool>,
    net: FabricHandle<Frame>,
    clients: Vec<Option<RpcClient<JobQRequest, JobQReply>>>,
    server_node: NodeId,
}

impl JobQService {
    /// Starts a JobQ (with `policy`) serving `clients` client endpoints
    /// over reliable links. The server occupies the *last* node id,
    /// clients the first `clients` ids.
    pub fn start(policy: AssignPolicy, clients: usize) -> Self {
        Self::start_with(policy, clients, FabricConfig::reliable())
    }

    /// [`JobQService::start`] over an arbitrary fabric — pass a lossy
    /// configuration to run the whole job-pool protocol over faulty
    /// datagram links.
    pub fn start_with(policy: AssignPolicy, clients: usize, fabric_cfg: FabricConfig) -> Self {
        let fabric = Fabric::<Frame>::new(clients + 1, fabric_cfg);
        let net = fabric.handle();
        let mut eps = fabric.into_endpoints();
        let server_ep = eps.pop().expect("server endpoint");
        let client_eps = eps;
        let server_node = server_ep.id();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("phish-jobq".into())
            .spawn(move || {
                let mut jobq = JobQ::with_policy(policy);
                let mut server = RpcServer::new(server_ep);
                let mut handler = |_src: NodeId, req: JobQRequest| -> JobQReply {
                    match req {
                        JobQRequest::RequestJob => JobQReply::Assignment(jobq.request()),
                        JobQRequest::Release(id) => {
                            jobq.release(id);
                            JobQReply::Ack
                        }
                        JobQRequest::Complete(id) => {
                            jobq.complete(id);
                            JobQReply::Ack
                        }
                        JobQRequest::Submit(spec) => JobQReply::Submitted(jobq.submit(spec)),
                        JobQRequest::Stats => JobQReply::Stats(jobq.stats()),
                    }
                };
                server.serve_until(
                    Duration::from_millis(1),
                    &{
                        let stop = stop_flag;
                        move || stop.load(Ordering::Acquire)
                    },
                    &mut handler,
                );
                jobq
            })
            .expect("spawn jobq server");
        Self {
            handle: Some(handle),
            stop,
            net,
            clients: client_eps
                .into_iter()
                .map(|ep| Some(RpcClient::new(ep)))
                .collect(),
            server_node,
        }
    }

    /// The server's network address.
    pub fn server_node(&self) -> NodeId {
        self.server_node
    }

    /// Takes client `i`'s handle (each workstation takes one). Taking an
    /// already-taken slot panics; use [`JobQService::reclaim_slot`] when a
    /// departed workstation's slot should serve a newcomer.
    pub fn take_client(&mut self, i: usize) -> JobQClient {
        JobQClient {
            rpc: self.clients[i].take().expect("client already taken"),
            server: self.server_node,
        }
    }

    /// Re-mints slot `i`'s endpoint for a new workstation after its
    /// previous holder departed (its client was dropped): the node is
    /// reopened on the same address with a fresh fault schedule.
    pub fn reclaim_slot(&mut self, i: usize) -> JobQClient {
        self.clients[i] = Some(RpcClient::new(self.net.endpoint(i)));
        self.take_client(i)
    }

    /// Stops the server and returns the final JobQ state.
    pub fn shutdown(mut self) -> JobQ {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .expect("handle present")
            .join()
            .expect("jobq server panicked")
    }
}

/// A workstation's handle to the remote JobQ.
pub struct JobQClient {
    rpc: RpcClient<JobQRequest, JobQReply>,
    server: NodeId,
}

impl JobQClient {
    /// "When a workstation becomes idle, it requests a job."
    pub fn request_job(&mut self, timeout: Duration) -> Option<JobAssignment> {
        match self
            .rpc
            .call_blocking(self.server, JobQRequest::RequestJob, timeout)
        {
            Some(JobQReply::Assignment(a)) => a,
            _ => None,
        }
    }

    /// Reports leaving a job.
    pub fn release(&mut self, job: JobId, timeout: Duration) -> bool {
        matches!(
            self.rpc
                .call_blocking(self.server, JobQRequest::Release(job), timeout),
            Some(JobQReply::Ack)
        )
    }

    /// Reports job completion.
    pub fn complete(&mut self, job: JobId, timeout: Duration) -> bool {
        matches!(
            self.rpc
                .call_blocking(self.server, JobQRequest::Complete(job), timeout),
            Some(JobQReply::Ack)
        )
    }

    /// Submits a job.
    pub fn submit(&mut self, spec: JobSpec, timeout: Duration) -> Option<JobId> {
        match self
            .rpc
            .call_blocking(self.server, JobQRequest::Submit(spec), timeout)
        {
            Some(JobQReply::Submitted(id)) => Some(id),
            _ => None,
        }
    }

    /// Fetches queue statistics.
    pub fn stats(&mut self, timeout: Duration) -> Option<JobQStats> {
        match self
            .rpc
            .call_blocking(self.server, JobQRequest::Stats, timeout)
        {
            Some(JobQReply::Stats(s)) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(10);

    #[test]
    fn submit_request_complete_over_rpc() {
        let mut svc = JobQService::start(AssignPolicy::RoundRobin, 2);
        let mut user = svc.take_client(0);
        let mut ws = svc.take_client(1);

        let id = user.submit(JobSpec::named("pfold"), T).expect("submitted");
        let a = ws.request_job(T).expect("assignment");
        assert_eq!(a.job, id);
        assert_eq!(a.name, "pfold");
        // The job stays pooled for other workstations.
        let again = ws.request_job(T).expect("still pooled");
        assert_eq!(again.job, id);
        assert!(ws.release(id, T));
        assert!(ws.complete(id, T));
        // Pool now empty: negative response.
        assert!(ws.request_job(T).is_none());

        let stats = user.stats(T).expect("stats");
        assert_eq!(stats.submissions, 1);
        assert_eq!(stats.assignments, 2);
        assert_eq!(stats.completions, 1);
        let final_q = svc.shutdown();
        assert!(final_q.is_empty());
    }

    #[test]
    fn concurrent_workstations_share_the_pool() {
        let n = 4;
        let mut svc = JobQService::start(AssignPolicy::RoundRobin, n + 1);
        let mut user = svc.take_client(n);
        let a = user.submit(JobSpec::named("a"), T).expect("a");
        let b = user.submit(JobSpec::named("b"), T).expect("b");
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let mut c = svc.take_client(i);
                std::thread::spawn(move || c.request_job(T).map(|a| a.job))
            })
            .collect();
        let got: Vec<JobId> = handles
            .into_iter()
            .map(|h| h.join().unwrap().expect("assignment"))
            .collect();
        // Round-robin over two jobs: two assignments each.
        assert_eq!(got.iter().filter(|j| **j == a).count(), 2);
        assert_eq!(got.iter().filter(|j| **j == b).count(), 2);
        svc.shutdown();
    }

    #[test]
    fn empty_pool_gives_negative_reply() {
        let mut svc = JobQService::start(AssignPolicy::RoundRobin, 1);
        let mut ws = svc.take_client(0);
        assert!(
            ws.request_job(T).is_none(),
            "empty pool responds negatively"
        );
        let q = svc.shutdown();
        assert_eq!(q.stats().refusals, 1);
    }
}
