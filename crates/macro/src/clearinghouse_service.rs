//! The Clearinghouse as an actual RPC server.
//!
//! "When a worker starts, it registers with the Clearinghouse, and when a
//! worker quits, it unregisters. Workers can find out about the other
//! workers participating in the job by obtaining periodic updates ...
//! Workers can perform I/O through the Clearinghouse, so a user need only
//! watch the Clearinghouse to see job output." (§3)
//!
//! [`ClearinghouseService`] runs one job's [`Clearinghouse`] behind an RPC
//! server on its own thread; [`ClearinghouseClient`] is the handle a worker
//! process holds. A background sweep declares silent workers crashed, which
//! the fault-tolerance layer consumes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use phish_net::time::{Clock, Nanos, RealClock};
use phish_net::{
    Fabric, FabricConfig, FabricHandle, NodeId, RpcClient, RpcFrame, RpcServer, WireSized,
};

use crate::clearinghouse::{Clearinghouse, ClearinghouseStats, Roster};

/// Worker → Clearinghouse requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChRequest {
    /// Join the job.
    Register,
    /// Leave the job.
    Unregister,
    /// The 2-minute periodic update (doubles as a heartbeat).
    Update,
    /// A bare heartbeat.
    Heartbeat,
    /// A line of job output.
    WriteLine(String),
    /// Workers declared crashed since the last drain (recovery layer).
    TakeCrashed,
}

/// Clearinghouse replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChReply {
    /// The roster (for Register/Update).
    Roster(Roster),
    /// Plain acknowledgement.
    Ack,
    /// Crashed workers drained by `TakeCrashed`.
    Crashed(Vec<NodeId>),
}

impl WireSized for ChRequest {
    fn wire_bytes(&self) -> usize {
        match self {
            ChRequest::WriteLine(s) => phish_net::message::HEADER_BYTES + s.len(),
            _ => phish_net::message::HEADER_BYTES,
        }
    }
}

impl WireSized for ChReply {
    fn wire_bytes(&self) -> usize {
        match self {
            ChReply::Roster(r) => phish_net::message::HEADER_BYTES + r.participants.len() * 12,
            ChReply::Crashed(v) => phish_net::message::HEADER_BYTES + v.len() * 4,
            ChReply::Ack => phish_net::message::HEADER_BYTES,
        }
    }
}

type Frame = RpcFrame<ChRequest, ChReply>;

/// A running Clearinghouse server plus its client endpoints.
pub struct ClearinghouseService {
    handle: Option<std::thread::JoinHandle<(ClearinghouseStats, Vec<String>)>>,
    stop: Arc<AtomicBool>,
    net: FabricHandle<Frame>,
    clients: Vec<Option<RpcClient<ChRequest, ChReply>>>,
    server_node: NodeId,
    /// Crash-detection deadline used by the serving loop.
    crash_deadline: Nanos,
    /// Detected-but-undrained crashed workers.
    pending_crashes: Arc<Mutex<Vec<NodeId>>>,
}

impl ClearinghouseService {
    /// Starts a Clearinghouse serving `clients` worker endpoints over
    /// reliable links, declaring a worker crashed after `crash_deadline`
    /// of silence.
    pub fn start(clients: usize, crash_deadline: Duration) -> Self {
        Self::start_with(clients, crash_deadline, FabricConfig::reliable())
    }

    /// [`ClearinghouseService::start`] over an arbitrary fabric — pass a
    /// lossy configuration to run registration, heartbeats, and job I/O
    /// over faulty datagram links.
    pub fn start_with(clients: usize, crash_deadline: Duration, fabric_cfg: FabricConfig) -> Self {
        let fabric = Fabric::<Frame>::new(clients + 1, fabric_cfg);
        let net = fabric.handle();
        let mut eps = fabric.into_endpoints();
        let server_ep = eps.pop().expect("server endpoint");
        let client_eps = eps;
        let server_node = server_ep.id();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let pending_crashes = Arc::new(Mutex::new(Vec::new()));
        let pending = Arc::clone(&pending_crashes);
        let deadline_ns = crash_deadline.as_nanos() as Nanos;
        let handle = std::thread::Builder::new()
            .name("phish-clearinghouse".into())
            .spawn(move || {
                let clock = RealClock::new();
                let mut ch = Clearinghouse::new();
                let mut server = RpcServer::new(server_ep);
                while !stop_flag.load(Ordering::Acquire) {
                    let now = clock.now();
                    let mut handler = |src: NodeId, req: ChRequest| -> ChReply {
                        match req {
                            ChRequest::Register => ChReply::Roster(ch.register(src, now)),
                            ChRequest::Unregister => {
                                ch.unregister(src);
                                ChReply::Ack
                            }
                            ChRequest::Update => ChReply::Roster(ch.update(src, now)),
                            ChRequest::Heartbeat => {
                                ch.heartbeat(src, now);
                                ChReply::Ack
                            }
                            ChRequest::WriteLine(line) => {
                                ch.write_line(src, line);
                                ChReply::Ack
                            }
                            ChRequest::TakeCrashed => {
                                ChReply::Crashed(std::mem::take(&mut *pending.lock()))
                            }
                        }
                    };
                    server.serve_once(Duration::from_millis(1), &mut handler);
                    let crashed = ch.detect_crashes_with(clock.now(), deadline_ns);
                    if !crashed.is_empty() {
                        pending.lock().extend(crashed);
                    }
                }
                ch.flush_io();
                (ch.stats(), ch.output().to_vec())
            })
            .expect("spawn clearinghouse server");
        Self {
            handle: Some(handle),
            stop,
            net,
            clients: client_eps
                .into_iter()
                .map(|ep| Some(RpcClient::new(ep)))
                .collect(),
            server_node,
            crash_deadline: deadline_ns,
            pending_crashes,
        }
    }

    /// The silence deadline after which workers are declared crashed.
    pub fn crash_deadline(&self) -> Nanos {
        self.crash_deadline
    }

    /// Takes worker `i`'s client handle (each worker takes exactly one).
    /// Taking an already-taken slot panics; once its holder departs, the
    /// slot is reusable via [`ClearinghouseService::reclaim_slot`].
    pub fn take_client(&mut self, i: usize) -> ClearinghouseClient {
        ClearinghouseClient {
            rpc: self.clients[i].take().expect("client already taken"),
            server: self.server_node,
        }
    }

    /// Re-mints slot `i`'s endpoint for a newly arriving worker after the
    /// previous holder departed (unregistered, crashed, or dropped its
    /// client). The node is reopened on the same address — worker churn
    /// reuses slots instead of leaking them.
    pub fn reclaim_slot(&mut self, i: usize) -> ClearinghouseClient {
        self.clients[i] = Some(RpcClient::new(self.net.endpoint(i)));
        self.take_client(i)
    }

    /// Crashed workers detected so far (without going through a client).
    pub fn crashed_snapshot(&self) -> Vec<NodeId> {
        self.pending_crashes.lock().clone()
    }

    /// Stops the server; returns its final statistics and the flushed job
    /// output.
    pub fn shutdown(mut self) -> (ClearinghouseStats, Vec<String>) {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .expect("handle present")
            .join()
            .expect("clearinghouse server panicked")
    }
}

/// A worker's handle to the remote Clearinghouse.
pub struct ClearinghouseClient {
    rpc: RpcClient<ChRequest, ChReply>,
    server: NodeId,
}

impl ClearinghouseClient {
    /// Registers, returning the roster.
    pub fn register(&mut self, timeout: Duration) -> Option<Roster> {
        match self
            .rpc
            .call_blocking(self.server, ChRequest::Register, timeout)
        {
            Some(ChReply::Roster(r)) => Some(r),
            _ => None,
        }
    }

    /// Unregisters (clean exit).
    pub fn unregister(&mut self, timeout: Duration) -> bool {
        matches!(
            self.rpc
                .call_blocking(self.server, ChRequest::Unregister, timeout),
            Some(ChReply::Ack)
        )
    }

    /// The periodic update: fresh roster plus an implicit heartbeat.
    pub fn update(&mut self, timeout: Duration) -> Option<Roster> {
        match self
            .rpc
            .call_blocking(self.server, ChRequest::Update, timeout)
        {
            Some(ChReply::Roster(r)) => Some(r),
            _ => None,
        }
    }

    /// A bare heartbeat.
    pub fn heartbeat(&mut self, timeout: Duration) -> bool {
        matches!(
            self.rpc
                .call_blocking(self.server, ChRequest::Heartbeat, timeout),
            Some(ChReply::Ack)
        )
    }

    /// Sends a line of job output through the Clearinghouse.
    pub fn write_line(&mut self, line: impl Into<String>, timeout: Duration) -> bool {
        matches!(
            self.rpc
                .call_blocking(self.server, ChRequest::WriteLine(line.into()), timeout),
            Some(ChReply::Ack)
        )
    }

    /// Drains the crashed-worker list (recovery layer).
    pub fn take_crashed(&mut self, timeout: Duration) -> Vec<NodeId> {
        match self
            .rpc
            .call_blocking(self.server, ChRequest::TakeCrashed, timeout)
        {
            Some(ChReply::Crashed(v)) => v,
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(10);

    #[test]
    fn register_update_unregister_over_rpc() {
        let mut svc = ClearinghouseService::start(2, Duration::from_secs(60));
        let mut w0 = svc.take_client(0);
        let mut w1 = svc.take_client(1);
        let r0 = w0.register(T).expect("roster");
        assert_eq!(r0.participants.len(), 1);
        let r1 = w1.register(T).expect("roster");
        assert_eq!(r1.participants.len(), 2);
        assert!(w0.write_line("hello from w0", T));
        let r = w0.update(T).expect("update");
        assert_eq!(r.participants.len(), 2);
        assert!(w1.unregister(T));
        let r = w0.update(T).expect("update");
        assert_eq!(r.participants.len(), 1);
        assert!(w0.unregister(T));
        let (stats, output) = svc.shutdown();
        assert_eq!(stats.registrations, 2);
        assert_eq!(stats.unregistrations, 2);
        assert_eq!(stats.updates_served, 2);
        assert_eq!(output.len(), 1);
        assert!(output[0].contains("hello from w0"));
    }

    #[test]
    fn silent_worker_declared_crashed() {
        let mut svc = ClearinghouseService::start(2, Duration::from_millis(50));
        let mut lively = svc.take_client(0);
        let mut doomed = svc.take_client(1);
        lively.register(T).unwrap();
        doomed.register(T).unwrap();
        // `doomed` goes silent; `lively` keeps beating past the deadline.
        for _ in 0..8 {
            std::thread::sleep(Duration::from_millis(15));
            assert!(lively.heartbeat(T));
        }
        let crashed = lively.take_crashed(T);
        assert_eq!(crashed, vec![NodeId(1)], "silent worker must be declared");
        let (stats, _) = svc.shutdown();
        assert_eq!(stats.crashes_detected, 1);
    }

    #[test]
    fn taking_a_client_twice_panics() {
        let mut svc = ClearinghouseService::start(1, Duration::from_secs(1));
        let _c = svc.take_client(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| svc.take_client(0)));
        assert!(r.is_err());
        svc.shutdown();
    }

    #[test]
    fn slots_are_reclaimed_across_worker_churn() {
        // Five generations of workers cycle through a single slot: each
        // registers, works, unregisters, and departs (dropping its client
        // closes the node). The slot must serve every newcomer instead of
        // leaking — the regression this guards is a one-shot
        // `Vec<Option<RpcClient>>` that panicked on the second arrival.
        let mut svc = ClearinghouseService::start(1, Duration::from_secs(60));
        for generation in 0..5u32 {
            let mut w = if generation == 0 {
                svc.take_client(0)
            } else {
                svc.reclaim_slot(0)
            };
            let roster = w.register(T).expect("roster");
            assert_eq!(roster.participants.len(), 1, "generation {generation}");
            assert!(w.write_line(format!("gen {generation}"), T));
            assert!(w.unregister(T));
        }
        let (stats, output) = svc.shutdown();
        assert_eq!(stats.registrations, 5);
        assert_eq!(stats.unregistrations, 5);
        assert_eq!(output.len(), 5);
    }

    #[test]
    fn service_works_over_lossy_links() {
        use phish_net::LossyConfig;
        // Registration, output, and unregistration over 15% drop links:
        // the fabric's recovery keeps the RPC protocol exactly-once.
        let mut svc = ClearinghouseService::start_with(
            2,
            Duration::from_secs(60),
            FabricConfig::lossy(LossyConfig {
                drop_prob: 0.15,
                dup_prob: 0.05,
                reorder_prob: 0.10,
                seed: 0xC1EA,
            }),
        );
        let mut w0 = svc.take_client(0);
        let mut w1 = svc.take_client(1);
        assert!(w0.register(T).is_some());
        assert!(w1.register(T).is_some());
        assert!(w0.write_line("over a lossy link", T));
        assert!(w0.unregister(T));
        assert!(w1.unregister(T));
        let (stats, output) = svc.shutdown();
        assert_eq!(stats.registrations, 2);
        assert_eq!(stats.unregistrations, 2);
        assert_eq!(output.len(), 1);
    }
}
