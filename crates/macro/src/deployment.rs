//! A live, threaded Phish deployment.
//!
//! This is Figure 2 of the paper running for real inside one process: a
//! JobQ, one JobManager thread per "workstation" (each with its own
//! simulated owner), a per-job Clearinghouse, and real worker bodies doing
//! real computation. Workstations join jobs when their owners leave, are
//! evicted within one owner-poll period when owners return, exit on their
//! own when parallelism shrinks, and go straight back to the JobQ — the
//! complete idle-initiated macro-level loop, with the paper's polling
//! cadences (scaled down so tests take milliseconds, not minutes).
//!
//! What a "worker process" does is the caller's business: a
//! [`WorkerBody`] runs on the workstation's thread until it finishes,
//! notices shrunken parallelism, or is told the owner came back. The
//! `phish` facade crate provides a spec-pool body that plugs the
//! micro-level work model in here.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use phish_net::time::{Clock, Nanos, RealClock};
use phish_net::NodeId;

use crate::clearinghouse::Clearinghouse;
use crate::idleness::{NobodyLoggedIn, OwnerObservation};
use crate::jobmanager::{Cadences, ExitReason, JobManager, ManagerAction};
use crate::jobq::{JobId, JobQ, JobSpec};

/// Why a worker body stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParticipantExit {
    /// The job is complete.
    JobFinished,
    /// The eviction flag was raised (owner returned / preemption).
    Evicted,
    /// No work was available for this participant (parallelism shrank).
    ParallelismShrank,
}

/// The computation one participant runs.
///
/// `evict` is raised when the workstation's owner returns; bodies must
/// poll it at task granularity and return [`ParticipantExit::Evicted`]
/// promptly, migrating any unfinished work back to the job's shared state
/// first ("the process's data migrates before termination", §2).
pub trait WorkerBody: Send + Sync {
    /// Runs one participant on workstation `ws`.
    fn run(&self, ws: usize, evict: &AtomicBool) -> ParticipantExit;
}

/// An owner-activity script: given time since deployment start, is the
/// owner using the machine?
pub type OwnerScript = Arc<dyn Fn(Nanos) -> bool + Send + Sync>;

/// Configuration of a live deployment.
#[derive(Clone)]
pub struct DeploymentConfig {
    /// Number of workstation threads.
    pub workstations: usize,
    /// Manager polling cadences (scale the paper's down for tests).
    pub cadences: Cadences,
    /// Owner scripts per workstation; missing entries mean "always away".
    pub owners: HashMap<usize, OwnerScript>,
}

impl DeploymentConfig {
    /// `n` workstations with absent owners and millisecond-scale cadences
    /// (paper cadences ÷ 10000: owner polls every 30ms busy / 0.2ms
    /// running, job retries every 3ms).
    pub fn dedicated(n: usize) -> Self {
        Self {
            workstations: n,
            cadences: Cadences::scaled_down(10_000),
            owners: HashMap::new(),
        }
    }

    /// Adds an owner script for workstation `ws`.
    pub fn with_owner(mut self, ws: usize, script: OwnerScript) -> Self {
        self.owners.insert(ws, script);
        self
    }
}

struct JobRecord {
    body: Arc<dyn WorkerBody>,
    finished: bool,
}

struct Central {
    jobq: Mutex<JobQ>,
    jobs: Mutex<HashMap<JobId, JobRecord>>,
    clearinghouse: Mutex<Clearinghouse>,
    finished_signal: Condvar,
    shutdown: AtomicBool,
    clock: RealClock,
}

/// Per-job participation counters for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobOutcomeStats {
    /// Participants that ran to job completion.
    pub finished_exits: u64,
    /// Participants evicted by returning owners.
    pub evictions: u64,
    /// Participants that left because parallelism shrank.
    pub shrink_exits: u64,
    /// Participants preempted for a higher-priority job.
    pub preemptions: u64,
}

/// A running deployment.
pub struct Deployment {
    central: Arc<Central>,
    handles: Vec<std::thread::JoinHandle<JobOutcomeStats>>,
}

impl Deployment {
    /// Starts the workstation threads.
    pub fn start(cfg: DeploymentConfig) -> Self {
        let central = Arc::new(Central {
            jobq: Mutex::new(JobQ::new()),
            jobs: Mutex::new(HashMap::new()),
            clearinghouse: Mutex::new(Clearinghouse::new()),
            finished_signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            clock: RealClock::new(),
        });
        let handles = (0..cfg.workstations)
            .map(|ws| {
                let central = Arc::clone(&central);
                let cadences = cfg.cadences;
                let owner = cfg.owners.get(&ws).cloned();
                std::thread::Builder::new()
                    .name(format!("phish-ws-{ws}"))
                    .spawn(move || workstation_thread(ws, central, cadences, owner))
                    .expect("spawn workstation thread")
            })
            .collect();
        Self { central, handles }
    }

    /// Submits a job with its worker body; idle workstations will pick it
    /// up within one job-retry period.
    pub fn submit(&self, spec: JobSpec, body: Arc<dyn WorkerBody>) -> JobId {
        let id = self.central.jobq.lock().submit(spec);
        self.central.jobs.lock().insert(
            id,
            JobRecord {
                body,
                finished: false,
            },
        );
        id
    }

    /// Blocks until `job` completes; `false` on timeout.
    pub fn wait_job(&self, job: JobId, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut jobs = self.central.jobs.lock();
        loop {
            if jobs.get(&job).is_none_or(|j| j.finished) {
                return true;
            }
            if self
                .central
                .finished_signal
                .wait_until(&mut jobs, deadline)
                .timed_out()
            {
                return jobs.get(&job).is_none_or(|j| j.finished);
            }
        }
    }

    /// Stops all workstation threads and returns the aggregated
    /// participation statistics.
    pub fn shutdown(self) -> JobOutcomeStats {
        self.central.shutdown.store(true, Ordering::Release);
        let mut total = JobOutcomeStats::default();
        for h in self.handles {
            let s = h.join().expect("workstation thread panicked");
            total.finished_exits += s.finished_exits;
            total.evictions += s.evictions;
            total.shrink_exits += s.shrink_exits;
            total.preemptions += s.preemptions;
        }
        total
    }

    /// Snapshot of the Clearinghouse roster size (participants currently
    /// registered across all jobs).
    pub fn participants(&self) -> usize {
        self.central.clearinghouse.lock().participant_count()
    }
}

fn workstation_thread(
    ws: usize,
    central: Arc<Central>,
    cadences: Cadences,
    owner: Option<OwnerScript>,
) -> JobOutcomeStats {
    let mut stats = JobOutcomeStats::default();
    let now0 = central.clock.now();
    let mut manager = JobManager::with_cadences(Box::new(NobodyLoggedIn), now0, cadences);
    let observe = |central: &Central| -> OwnerObservation {
        let t = central.clock.now();
        let busy = owner.as_ref().is_some_and(|f| f(t));
        if busy {
            OwnerObservation::occupied()
        } else {
            OwnerObservation::vacant()
        }
    };
    while !central.shutdown.load(Ordering::Acquire) {
        let now = central.clock.now();
        let wait = manager.next_timer().saturating_sub(now);
        if wait > 0 {
            std::thread::sleep(Duration::from_nanos(wait.min(5_000_000)));
            continue;
        }
        let obs = observe(&central);
        let actions = manager.tick(central.clock.now(), &obs);
        for action in actions {
            match action {
                ManagerAction::RequestJob => {
                    let reply = central.jobq.lock().request();
                    let more = manager.on_job_reply(central.clock.now(), reply);
                    for a in more {
                        if let ManagerAction::StartWorker(assignment) = a {
                            run_participant(
                                ws,
                                &central,
                                &mut manager,
                                &mut stats,
                                assignment.job,
                                &observe,
                                cadences,
                            );
                        }
                    }
                }
                ManagerAction::KillWorker(_) | ManagerAction::StartWorker(_) => {
                    unreachable!("kill/start outside participation are handled inline")
                }
            }
        }
    }
    stats
}

/// Runs participations until the workstation has no immediate next
/// assignment (iterative, so a workstation cycling through thousands of
/// consecutive assignments uses constant stack).
#[allow(clippy::too_many_arguments)]
fn run_participant(
    ws: usize,
    central: &Central,
    manager: &mut JobManager,
    stats: &mut JobOutcomeStats,
    job: JobId,
    observe: &dyn Fn(&Central) -> OwnerObservation,
    cadences: Cadences,
) {
    let mut next = Some(job);
    while let Some(job) = next {
        next = run_one_participation(ws, central, manager, stats, job, observe, cadences);
    }
}

/// One participation; returns the immediate next assignment, if any.
#[allow(clippy::too_many_arguments)]
fn run_one_participation(
    ws: usize,
    central: &Central,
    manager: &mut JobManager,
    stats: &mut JobOutcomeStats,
    job: JobId,
    observe: &dyn Fn(&Central) -> OwnerObservation,
    _cadences: Cadences,
) -> Option<JobId> {
    let Some(body) = central.jobs.lock().get(&job).map(|r| Arc::clone(&r.body)) else {
        // Job vanished between assignment and start.
        central.jobq.lock().release(job);
        manager.on_worker_exit(central.clock.now(), ExitReason::JobFinished);
        return None;
    };
    central
        .clearinghouse
        .lock()
        .register(NodeId(ws as u32), central.clock.now());
    // The "worker process" runs on a separate thread so the manager can
    // keep polling the owner at its 2-second (scaled) cadence and raise
    // the eviction flag, exactly like the real PhishJobManager killing the
    // worker process.
    let evict = Arc::new(AtomicBool::new(false));
    let body_evict = Arc::clone(&evict);
    let worker = std::thread::Builder::new()
        .name(format!("phish-worker-ws{ws}"))
        .spawn(move || body.run(ws, &body_evict))
        .expect("spawn worker body");
    let exit = loop {
        if worker.is_finished() {
            break worker.join().expect("worker body panicked");
        }
        let now = central.clock.now();
        if now >= manager.next_timer() {
            let obs = observe(central);
            let actions = manager.tick(now, &obs);
            // Priority preemption — "the only case in which the macro-level
            // scheduler performs time-sharing" (§2): a strictly
            // higher-priority job waiting in the pool takes this machine.
            let preempt = actions.is_empty() && central.jobq.lock().should_preempt(job).is_some();
            if preempt {
                evict.store(true, Ordering::Release);
                let exit = worker.join().expect("worker body panicked");
                central.jobq.lock().release(job);
                central.clearinghouse.lock().unregister(NodeId(ws as u32));
                match exit {
                    ParticipantExit::JobFinished => {
                        stats.finished_exits += 1;
                        mark_finished(central, job);
                    }
                    ParticipantExit::Evicted => stats.preemptions += 1,
                    ParticipantExit::ParallelismShrank => stats.shrink_exits += 1,
                }
                // The manager kills and immediately re-requests; the JobQ
                // hands it the higher-priority job.
                let kill_actions = manager.preempt(central.clock.now());
                for a in kill_actions {
                    if let ManagerAction::RequestJob = a {
                        let reply = central.jobq.lock().request();
                        let more = manager.on_job_reply(central.clock.now(), reply);
                        for a in more {
                            if let ManagerAction::StartWorker(assignment) = a {
                                return Some(assignment.job);
                            }
                        }
                    }
                }
                return None;
            }
            if actions
                .iter()
                .any(|a| matches!(a, ManagerAction::KillWorker(_)))
            {
                evict.store(true, Ordering::Release);
                let exit = worker.join().expect("worker body panicked");
                // Manager already transitioned to OwnerActive.
                central.jobq.lock().release(job);
                central.clearinghouse.lock().unregister(NodeId(ws as u32));
                match exit {
                    ParticipantExit::Evicted => stats.evictions += 1,
                    ParticipantExit::JobFinished => {
                        stats.finished_exits += 1;
                        mark_finished(central, job);
                    }
                    ParticipantExit::ParallelismShrank => stats.shrink_exits += 1,
                }
                return None;
            }
        }
        if central.shutdown.load(Ordering::Acquire) {
            evict.store(true, Ordering::Release);
            let _ = worker.join();
            central.jobq.lock().release(job);
            central.clearinghouse.lock().unregister(NodeId(ws as u32));
            return None;
        }
        std::thread::sleep(Duration::from_micros(200));
    };
    // Worker exited on its own.
    central.jobq.lock().release(job);
    central.clearinghouse.lock().unregister(NodeId(ws as u32));
    let reason = match exit {
        ParticipantExit::JobFinished => {
            stats.finished_exits += 1;
            mark_finished(central, job);
            ExitReason::JobFinished
        }
        ParticipantExit::ParallelismShrank => {
            stats.shrink_exits += 1;
            ExitReason::ParallelismShrank
        }
        ParticipantExit::Evicted => {
            stats.evictions += 1;
            ExitReason::ParallelismShrank
        }
    };
    manager.on_worker_exit(central.clock.now(), reason);
    // The exit handler issued a RequestJob; serve it immediately.
    let reply = central.jobq.lock().request();
    let more = manager.on_job_reply(central.clock.now(), reply);
    for a in more {
        if let ManagerAction::StartWorker(assignment) = a {
            return Some(assignment.job);
        }
    }
    None
}

fn mark_finished(central: &Central, job: JobId) {
    let mut jobs = central.jobs.lock();
    if let Some(r) = jobs.get_mut(&job) {
        if !r.finished {
            r.finished = true;
            central.jobq.lock().complete(job);
        }
    }
    central.finished_signal.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A body that just counts invocations and sleeps briefly.
    struct CountBody {
        runs: AtomicU64,
        work_ms: u64,
    }

    impl WorkerBody for CountBody {
        fn run(&self, _ws: usize, evict: &AtomicBool) -> ParticipantExit {
            self.runs.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + Duration::from_millis(self.work_ms);
            while std::time::Instant::now() < deadline {
                if evict.load(Ordering::Acquire) {
                    return ParticipantExit::Evicted;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            ParticipantExit::JobFinished
        }
    }

    #[test]
    fn dedicated_deployment_runs_a_job_to_completion() {
        let dep = Deployment::start(DeploymentConfig::dedicated(2));
        let body = Arc::new(CountBody {
            runs: AtomicU64::new(0),
            work_ms: 20,
        });
        let job = dep.submit(JobSpec::named("count"), Arc::clone(&body) as _);
        assert!(dep.wait_job(job, Duration::from_secs(20)), "job timed out");
        let stats = dep.shutdown();
        assert!(body.runs.load(Ordering::SeqCst) >= 1);
        assert!(stats.finished_exits >= 1);
    }

    #[test]
    fn owner_return_evicts_participant() {
        // Workstation 0's owner is away for 100ms, then comes back for
        // good. The body runs "forever", so the only way it stops is
        // eviction.
        struct Forever;
        impl WorkerBody for Forever {
            fn run(&self, _ws: usize, evict: &AtomicBool) -> ParticipantExit {
                loop {
                    if evict.load(Ordering::Acquire) {
                        return ParticipantExit::Evicted;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
        let owner: OwnerScript = Arc::new(|t| t > 100_000_000);
        let cfg = DeploymentConfig::dedicated(1).with_owner(0, owner);
        let dep = Deployment::start(cfg);
        let _job = dep.submit(JobSpec::named("forever"), Arc::new(Forever));
        // Give it time to join and then be evicted.
        std::thread::sleep(Duration::from_millis(400));
        let stats = dep.shutdown();
        assert!(stats.evictions >= 1, "owner return must evict: {stats:?}");
    }

    #[test]
    fn higher_priority_job_preempts() {
        use crate::jobq::JobSpec;
        struct Forever;
        impl WorkerBody for Forever {
            fn run(&self, _ws: usize, evict: &AtomicBool) -> ParticipantExit {
                loop {
                    if evict.load(Ordering::Acquire) {
                        return ParticipantExit::Evicted;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
        let dep = Deployment::start(DeploymentConfig::dedicated(1));
        let _low = dep.submit(JobSpec::named("low"), Arc::new(Forever));
        // Give the workstation time to join the low-priority job.
        std::thread::sleep(Duration::from_millis(150));
        let body = Arc::new(CountBody {
            runs: AtomicU64::new(0),
            work_ms: 10,
        });
        let high = dep.submit(
            JobSpec {
                name: "high".into(),
                priority: 9,
                max_participants: None,
            },
            Arc::clone(&body) as _,
        );
        assert!(
            dep.wait_job(high, Duration::from_secs(30)),
            "high-priority job must preempt and finish"
        );
        let stats = dep.shutdown();
        assert!(stats.preemptions >= 1, "{stats:?}");
        assert!(body.runs.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn shutdown_with_no_jobs_is_clean() {
        let dep = Deployment::start(DeploymentConfig::dedicated(3));
        std::thread::sleep(Duration::from_millis(50));
        let stats = dep.shutdown();
        assert_eq!(stats, JobOutcomeStats::default());
    }

    #[test]
    fn wait_job_times_out_for_unfinished_job() {
        struct Forever;
        impl WorkerBody for Forever {
            fn run(&self, _ws: usize, evict: &AtomicBool) -> ParticipantExit {
                loop {
                    if evict.load(Ordering::Acquire) {
                        return ParticipantExit::Evicted;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
        let dep = Deployment::start(DeploymentConfig::dedicated(1));
        let job = dep.submit(JobSpec::named("forever"), Arc::new(Forever));
        assert!(!dep.wait_job(job, Duration::from_millis(100)));
        dep.shutdown();
    }
}
