//! Owner-sovereignty idleness policies.
//!
//! "Each workstation owner can set his or her own policy on 'idleness'
//! versus 'busyness.' For example, some owners may decide that their
//! machines are idle ... only when nobody is logged in. Other owners may
//! make their machines available so long as the CPU load is below some
//! threshold. We believe that maintaining the owner's sovereignty is
//! essential." (§2)

/// What the JobManager can observe about the workstation's owner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OwnerObservation {
    /// Number of interactively logged-in users.
    pub users_logged_in: u32,
    /// One-minute CPU load average attributable to the owner.
    pub cpu_load: f64,
}

impl OwnerObservation {
    /// A workstation with nobody logged in and no load.
    pub fn vacant() -> Self {
        Self {
            users_logged_in: 0,
            cpu_load: 0.0,
        }
    }

    /// A workstation with an active interactive user.
    pub fn occupied() -> Self {
        Self {
            users_logged_in: 1,
            cpu_load: 0.5,
        }
    }
}

/// An owner's definition of "my machine is idle".
pub trait IdlenessPolicy: Send + Sync {
    /// True when the workstation may run parallel work.
    fn is_idle(&self, obs: &OwnerObservation) -> bool;

    /// Policy name for logs and experiment output.
    fn name(&self) -> &'static str;
}

/// The paper's conservative default: "a workstation is deemed idle only
/// when no users are logged in." (§3)
#[derive(Debug, Clone, Copy, Default)]
pub struct NobodyLoggedIn;

impl IdlenessPolicy for NobodyLoggedIn {
    fn is_idle(&self, obs: &OwnerObservation) -> bool {
        obs.users_logged_in == 0
    }

    fn name(&self) -> &'static str {
        "nobody-logged-in"
    }
}

/// A more permissive policy: idle whenever owner CPU load is below a
/// threshold, regardless of logins.
#[derive(Debug, Clone, Copy)]
pub struct LoadBelowThreshold {
    /// Maximum owner load considered idle.
    pub max_load: f64,
}

impl IdlenessPolicy for LoadBelowThreshold {
    fn is_idle(&self, obs: &OwnerObservation) -> bool {
        obs.cpu_load < self.max_load
    }

    fn name(&self) -> &'static str {
        "load-below-threshold"
    }
}

/// Both conditions at once: nobody logged in *and* load low — for owners
/// who leave background jobs running.
#[derive(Debug, Clone, Copy)]
pub struct VacantAndQuiet {
    /// Maximum residual load considered idle.
    pub max_load: f64,
}

impl IdlenessPolicy for VacantAndQuiet {
    fn is_idle(&self, obs: &OwnerObservation) -> bool {
        obs.users_logged_in == 0 && obs.cpu_load < self.max_load
    }

    fn name(&self) -> &'static str {
        "vacant-and-quiet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nobody_logged_in_tracks_logins_only() {
        let p = NobodyLoggedIn;
        assert!(p.is_idle(&OwnerObservation::vacant()));
        assert!(!p.is_idle(&OwnerObservation::occupied()));
        // Load does not matter.
        assert!(p.is_idle(&OwnerObservation {
            users_logged_in: 0,
            cpu_load: 5.0
        }));
    }

    #[test]
    fn load_threshold_ignores_logins() {
        let p = LoadBelowThreshold { max_load: 0.3 };
        assert!(p.is_idle(&OwnerObservation {
            users_logged_in: 3,
            cpu_load: 0.1
        }));
        assert!(!p.is_idle(&OwnerObservation {
            users_logged_in: 0,
            cpu_load: 0.9
        }));
    }

    #[test]
    fn vacant_and_quiet_requires_both() {
        let p = VacantAndQuiet { max_load: 0.3 };
        assert!(p.is_idle(&OwnerObservation::vacant()));
        assert!(!p.is_idle(&OwnerObservation {
            users_logged_in: 1,
            cpu_load: 0.0
        }));
        assert!(!p.is_idle(&OwnerObservation {
            users_logged_in: 0,
            cpu_load: 0.5
        }));
    }

    #[test]
    fn policies_have_names() {
        assert_eq!(NobodyLoggedIn.name(), "nobody-logged-in");
        assert_eq!(
            LoadBelowThreshold { max_load: 0.5 }.name(),
            "load-below-threshold"
        );
        assert_eq!(VacantAndQuiet { max_load: 0.5 }.name(), "vacant-and-quiet");
    }
}
