//! Reliable, ordered in-process transport.
//!
//! `ChannelNet` builds a fully-connected "network" of `n` endpoints over
//! crossbeam MPSC channels. Delivery is reliable and per-sender ordered —
//! this is the baseline transport used by the threaded engine, with the
//! workstation-LAN cost structure injected as a configurable per-send
//! software overhead (the paper stresses that send overhead on a
//! workstation is ~100× that of a supercomputer interconnect; varying
//! [`SendCost`] reproduces that axis).
//!
//! For raw-UDP semantics, wrap endpoints in [`crate::lossy::LossyEndpoint`]
//! and recover delivery with [`crate::reliable::ReliableEndpoint`].

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::message::{Envelope, NodeId, WireSized};
use crate::metrics::NetMetrics;
use crate::time::Nanos;

/// Per-message cost model applied on the sending side.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendCost {
    /// Software overhead busy-spun on every send, in nanoseconds.
    ///
    /// Zero (the default) sends at channel speed. A few microseconds
    /// emulates a tuned 1990s LAN stack; tens of microseconds emulates the
    /// untuned UDP/IP path the paper used.
    pub overhead: Nanos,
}

impl SendCost {
    /// No injected overhead (supercomputer-interconnect-like).
    pub const FREE: SendCost = SendCost { overhead: 0 };

    /// A cost with the given software overhead per send.
    pub fn with_overhead(overhead: Nanos) -> Self {
        Self { overhead }
    }

    /// Busy-spins for the configured overhead; called once per send.
    /// Public so higher layers (e.g. worker mailboxes) can charge the same
    /// cost to messages that bypass a [`ChannelNet`].
    #[inline]
    pub fn pay(&self) {
        if self.overhead > 0 {
            let start = std::time::Instant::now();
            let limit = Duration::from_nanos(self.overhead);
            while start.elapsed() < limit {
                std::hint::spin_loop();
            }
        }
    }
}

/// Factory for a fully-connected set of [`Endpoint`]s.
#[derive(Debug)]
pub struct ChannelNet<M> {
    endpoints: Vec<Endpoint<M>>,
    metrics: Arc<NetMetrics>,
}

impl<M: Send> ChannelNet<M> {
    /// Builds a network of `n` endpoints sharing one metrics block, all
    /// using `cost` on sends.
    pub fn new(n: usize, cost: SendCost) -> Self {
        let metrics = Arc::new(NetMetrics::new());
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint {
                id: NodeId(i as u32),
                senders: Arc::clone(&senders),
                receiver: rx,
                metrics: Arc::clone(&metrics),
                cost,
            })
            .collect();
        Self { endpoints, metrics }
    }

    /// The shared traffic counters.
    pub fn metrics(&self) -> Arc<NetMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Consumes the net, yielding one endpoint per node (index = node id).
    pub fn into_endpoints(self) -> Vec<Endpoint<M>> {
        self.endpoints
    }
}

/// One node's attachment to a [`ChannelNet`].
///
/// An endpoint can send to any node (including itself) and receives messages
/// addressed to it. Sending never blocks (channels are unbounded); receiving
/// is by non-blocking poll, matching the split-phase style of the Phish
/// runtime, plus a blocking variant for daemon-style loops.
#[derive(Debug)]
pub struct Endpoint<M> {
    id: NodeId,
    senders: Arc<Vec<Sender<Envelope<M>>>>,
    receiver: Receiver<Envelope<M>>,
    metrics: Arc<NetMetrics>,
    cost: SendCost,
}

impl<M: Send> Endpoint<M> {
    /// This endpoint's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes on the network.
    pub fn node_count(&self) -> usize {
        self.senders.len()
    }

    /// The shared traffic counters.
    pub fn metrics(&self) -> &Arc<NetMetrics> {
        &self.metrics
    }

    /// Creates an extra sending handle addressed *from* this node; useful
    /// when a node runs sender and receiver on different threads.
    pub fn sender(&self) -> EndpointSender<M> {
        EndpointSender {
            id: self.id,
            senders: Arc::clone(&self.senders),
            metrics: Arc::clone(&self.metrics),
            cost: self.cost,
        }
    }

    /// Sends `body` to `dst`, paying the configured software overhead.
    ///
    /// Returns `false` if the destination endpoint has been dropped (a
    /// "crashed workstation"): datagrams to dead hosts vanish silently, and
    /// callers that care use the reliability layer on top.
    pub fn send(&self, dst: NodeId, body: M) -> bool
    where
        M: WireSized,
    {
        send_impl(&self.senders, &self.metrics, self.cost, self.id, dst, body)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.receiver.try_recv() {
            Ok(env) => {
                self.metrics.record_delivery();
                Some(env)
            }
            Err(_) => None,
        }
    }

    /// Blocking receive with a timeout; `None` on timeout or if all senders
    /// are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        match self.receiver.recv_timeout(timeout) {
            Ok(env) => {
                self.metrics.record_delivery();
                Some(env)
            }
            Err(_) => None,
        }
    }

    /// Number of messages waiting in this endpoint's queue.
    pub fn pending(&self) -> usize {
        self.receiver.len()
    }
}

/// Send-only handle split off an [`Endpoint`].
#[derive(Debug, Clone)]
pub struct EndpointSender<M> {
    id: NodeId,
    senders: Arc<Vec<Sender<Envelope<M>>>>,
    metrics: Arc<NetMetrics>,
    cost: SendCost,
}

impl<M: Send> EndpointSender<M> {
    /// The node this handle sends as.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `body` to `dst`; see [`Endpoint::send`].
    pub fn send(&self, dst: NodeId, body: M) -> bool
    where
        M: WireSized,
    {
        send_impl(&self.senders, &self.metrics, self.cost, self.id, dst, body)
    }
}

fn send_impl<M: Send + WireSized>(
    senders: &[Sender<Envelope<M>>],
    metrics: &NetMetrics,
    cost: SendCost,
    src: NodeId,
    dst: NodeId,
    body: M,
) -> bool {
    cost.pay();
    metrics.record_send(body.wire_bytes());
    let env = Envelope {
        src,
        dst,
        seq: 0,
        body,
    };
    senders[dst.index()].send(env).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let eps = ChannelNet::<u64>::new(3, SendCost::FREE).into_endpoints();
        assert!(eps[0].send(NodeId(2), 42));
        let env = eps[2].try_recv().expect("message should arrive");
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.dst, NodeId(2));
        assert_eq!(env.body, 42);
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn self_send_works() {
        let eps = ChannelNet::<u64>::new(1, SendCost::FREE).into_endpoints();
        assert!(eps[0].send(NodeId(0), 7));
        assert_eq!(eps[0].try_recv().unwrap().body, 7);
    }

    #[test]
    fn per_sender_ordering_is_preserved() {
        let eps = ChannelNet::<u64>::new(2, SendCost::FREE).into_endpoints();
        for i in 0..100 {
            eps[0].send(NodeId(1), i);
        }
        for i in 0..100 {
            assert_eq!(eps[1].try_recv().unwrap().body, i);
        }
    }

    #[test]
    fn metrics_count_sends_and_deliveries() {
        let net = ChannelNet::<u64>::new(2, SendCost::FREE);
        let m = net.metrics();
        let eps = net.into_endpoints();
        eps[0].send(NodeId(1), 1);
        eps[0].send(NodeId(1), 2);
        eps[1].try_recv();
        let s = m.snapshot();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_delivered, 1);
    }

    #[test]
    fn send_to_dropped_endpoint_reports_failure() {
        let mut eps = ChannelNet::<u64>::new(2, SendCost::FREE).into_endpoints();
        let dead = eps.remove(1);
        drop(dead);
        assert!(!eps[0].send(NodeId(1), 5));
    }

    #[test]
    fn overhead_slows_sends() {
        // 200µs of overhead across 20 sends must take at least 4ms total.
        let eps = ChannelNet::<u64>::new(2, SendCost::with_overhead(200_000)).into_endpoints();
        let start = std::time::Instant::now();
        for i in 0..20 {
            eps[0].send(NodeId(1), i);
        }
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn cross_thread_send_receive() {
        let eps = ChannelNet::<u64>::new(2, SendCost::FREE).into_endpoints();
        let mut it = eps.into_iter();
        let a = it.next().unwrap();
        let b = it.next().unwrap();
        let t = std::thread::spawn(move || {
            for i in 0..1000 {
                a.send(NodeId(1), i);
            }
        });
        let mut got = 0;
        while got < 1000 {
            if let Some(env) = b.recv_timeout(Duration::from_secs(5)) {
                assert_eq!(env.body, got);
                got += 1;
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn split_sender_handle() {
        let eps = ChannelNet::<u64>::new(2, SendCost::FREE).into_endpoints();
        let tx = eps[0].sender();
        assert_eq!(tx.id(), NodeId(0));
        tx.send(NodeId(1), 9);
        assert_eq!(eps[1].try_recv().unwrap().body, 9);
        assert_eq!(eps[1].pending(), 0);
    }
}
