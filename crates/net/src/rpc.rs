//! Request/reply RPC over the in-process network.
//!
//! "The PhishJobQ, an RPC server, resides on one computer and manages the
//! pool of parallel jobs." (§3) This module provides that shape: an
//! [`RpcServer`] that answers typed requests with a handler function, and
//! an [`RpcClient`] whose calls are *split-phase* by default — issue the
//! request, keep working, collect the reply when it lands — with a
//! blocking convenience wrapper for daemon-style callers like the
//! PhishJobManager.
//!
//! Both halves ride [`crate::fabric::FabricEndpoint`]s, so an RPC service
//! runs unchanged over reliable channels or over lossy datagrams with
//! recovery — pumping the fabric's protocol is folded into the client's
//! [`RpcClient::pump`] and the server's [`RpcServer::serve_once`].

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::fabric::FabricEndpoint;
use crate::message::{NodeId, WireSized, HEADER_BYTES};
use crate::splitphase::{RequestId, SplitPhase};

/// Wire frames of the RPC protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcFrame<Req, Resp> {
    /// A client's request.
    Request {
        /// Client-chosen correlation id.
        id: u64,
        /// The request body.
        body: Req,
    },
    /// The server's reply to request `id`.
    Reply {
        /// Echoed correlation id.
        id: u64,
        /// The reply body.
        body: Resp,
    },
}

impl<Req: WireSized, Resp: WireSized> WireSized for RpcFrame<Req, Resp> {
    fn wire_bytes(&self) -> usize {
        match self {
            RpcFrame::Request { body, .. } => body.wire_bytes() + 8,
            RpcFrame::Reply { body, .. } => body.wire_bytes() + 8,
        }
    }
}

/// Blanket no-payload sizing for types that don't care; concrete protocols
/// should implement [`WireSized`] on their bodies instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unsized<T>(pub T);

impl<T> WireSized for Unsized<T> {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES
    }
}

/// The client half: split-phase calls with a blocking convenience.
pub struct RpcClient<Req, Resp> {
    endpoint: FabricEndpoint<RpcFrame<Req, Resp>>,
    pending: SplitPhase<Resp>,
    /// Wire-id → split-phase id (they are allocated in lockstep, but keep
    /// the map explicit so ids stay opaque).
    wire_to_req: HashMap<u64, RequestId>,
    next_wire_id: u64,
}

impl<Req, Resp> RpcClient<Req, Resp>
where
    Req: Send + WireSized,
    Resp: Send + WireSized,
{
    /// Wraps an endpoint as an RPC client.
    pub fn new(endpoint: FabricEndpoint<RpcFrame<Req, Resp>>) -> Self {
        Self {
            endpoint,
            pending: SplitPhase::new(),
            wire_to_req: HashMap::new(),
            next_wire_id: 1,
        }
    }

    /// This client's network address.
    pub fn id(&self) -> NodeId {
        self.endpoint.id()
    }

    /// Issues a request and returns immediately — the split phase. Poll
    /// with [`RpcClient::pump`] + [`RpcClient::try_take`].
    pub fn call_split(&mut self, server: NodeId, body: Req) -> RequestId {
        let req_id = self.pending.register();
        let wire = self.next_wire_id;
        self.next_wire_id += 1;
        self.wire_to_req.insert(wire, req_id);
        self.endpoint
            .send(server, RpcFrame::Request { id: wire, body });
        req_id
    }

    /// Drains arrived replies into the pending table and drives the
    /// fabric's recovery protocol. Returns how many replies landed.
    pub fn pump(&mut self) -> usize {
        self.endpoint.pump_now();
        let mut n = 0;
        while let Some(env) = self.endpoint.try_recv() {
            if let RpcFrame::Reply { id, body } = env.body {
                if let Some(req_id) = self.wire_to_req.remove(&id) {
                    if self.pending.complete(req_id, body) {
                        n += 1;
                    }
                }
            }
        }
        n
    }

    /// Takes a completed reply, if it has arrived.
    pub fn try_take(&mut self, id: RequestId) -> Option<Resp> {
        self.pending.poll(id)
    }

    /// Requests still awaiting replies.
    pub fn outstanding(&self) -> usize {
        self.pending.outstanding()
    }

    /// The blocking convenience: call and wait up to `timeout`.
    pub fn call_blocking(&mut self, server: NodeId, body: Req, timeout: Duration) -> Option<Resp> {
        let id = self.call_split(server, body);
        let deadline = Instant::now() + timeout;
        loop {
            self.pump();
            if let Some(resp) = self.try_take(id) {
                return Some(resp);
            }
            if Instant::now() >= deadline {
                self.pending.cancel(id);
                return None;
            }
            // Block briefly on the endpoint rather than spinning.
            if let Some(env) = self.endpoint.recv_timeout(Duration::from_millis(1)) {
                if let RpcFrame::Reply { id: wire, body } = env.body {
                    if let Some(req_id) = self.wire_to_req.remove(&wire) {
                        self.pending.complete(req_id, body);
                    }
                }
            }
        }
    }
}

/// The server half: a handler over incoming requests.
pub struct RpcServer<Req, Resp> {
    endpoint: FabricEndpoint<RpcFrame<Req, Resp>>,
    served: u64,
}

impl<Req, Resp> RpcServer<Req, Resp>
where
    Req: Send + WireSized,
    Resp: Send + WireSized,
{
    /// Wraps an endpoint as an RPC server.
    pub fn new(endpoint: FabricEndpoint<RpcFrame<Req, Resp>>) -> Self {
        Self {
            endpoint,
            served: 0,
        }
    }

    /// This server's network address.
    pub fn id(&self) -> NodeId {
        self.endpoint.id()
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Serves at most one request, waiting up to `timeout` for it.
    /// Returns `true` if a request was handled.
    pub fn serve_once(
        &mut self,
        timeout: Duration,
        handler: &mut dyn FnMut(NodeId, Req) -> Resp,
    ) -> bool {
        self.endpoint.pump_now();
        let Some(env) = self.endpoint.recv_timeout(timeout) else {
            return false;
        };
        match env.body {
            RpcFrame::Request { id, body } => {
                let reply = handler(env.src, body);
                self.endpoint
                    .send(env.src, RpcFrame::Reply { id, body: reply });
                self.served += 1;
                true
            }
            RpcFrame::Reply { .. } => false, // stray reply; ignore
        }
    }

    /// Serves requests until `stop` returns true (checked between
    /// requests, at `poll` granularity).
    pub fn serve_until(
        &mut self,
        poll: Duration,
        stop: &dyn Fn() -> bool,
        handler: &mut dyn FnMut(NodeId, Req) -> Resp,
    ) {
        while !stop() {
            self.serve_once(poll, handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig, LossyConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    type Frame = RpcFrame<u64, u64>;

    fn pair_over(cfg: FabricConfig) -> (RpcClient<u64, u64>, RpcServer<u64, u64>) {
        let eps = Fabric::<Frame>::new(2, cfg).into_endpoints();
        let mut it = eps.into_iter();
        let client = RpcClient::new(it.next().unwrap());
        let server = RpcServer::new(it.next().unwrap());
        (client, server)
    }

    fn pair() -> (RpcClient<u64, u64>, RpcServer<u64, u64>) {
        pair_over(FabricConfig::reliable())
    }

    #[test]
    fn blocking_call_roundtrips() {
        let (mut client, mut server) = pair();
        let t = std::thread::spawn(move || {
            let mut doubler = |_, x: u64| x * 2;
            for _ in 0..3 {
                while !server.serve_once(Duration::from_secs(5), &mut doubler) {}
            }
            server.served()
        });
        for i in 1..=3u64 {
            let resp = client.call_blocking(NodeId(1), i, Duration::from_secs(5));
            assert_eq!(resp, Some(i * 2));
        }
        assert_eq!(t.join().unwrap(), 3);
    }

    #[test]
    fn split_phase_overlaps_requests() {
        let (mut client, mut server) = pair();
        // Issue all requests before the server answers any: split-phase.
        let ids: Vec<_> = (0..10u64)
            .map(|i| client.call_split(NodeId(1), i))
            .collect();
        assert_eq!(client.outstanding(), 10);
        let mut square = |_, x: u64| x * x;
        for _ in 0..10 {
            assert!(server.serve_once(Duration::from_secs(1), &mut square));
        }
        // Collect replies in any order.
        let mut got = 0;
        while got < 10 {
            client.pump();
            for (i, id) in ids.iter().enumerate() {
                if let Some(v) = client.try_take(*id) {
                    assert_eq!(v, (i as u64) * (i as u64));
                    got += 1;
                }
            }
        }
        assert_eq!(client.outstanding(), 0);
    }

    #[test]
    fn blocking_call_times_out_without_server() {
        let (mut client, _server) = pair();
        let start = Instant::now();
        let resp = client.call_blocking(NodeId(1), 1, Duration::from_millis(30));
        assert_eq!(resp, None);
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(client.outstanding(), 0, "timed-out call is cancelled");
    }

    #[test]
    fn blocking_calls_survive_a_lossy_link() {
        // The same client/server pair over 20% drop + duplication +
        // reordering: recovery is the fabric's job, not the RPC layer's.
        let (mut client, mut server) = pair_over(FabricConfig::lossy(LossyConfig {
            drop_prob: 0.2,
            dup_prob: 0.1,
            reorder_prob: 0.1,
            seed: 0xFACE,
        }));
        let t = std::thread::spawn(move || {
            let mut doubler = |_, x: u64| x * 2;
            for _ in 0..20 {
                while !server.serve_once(Duration::from_millis(1), &mut doubler) {}
            }
            server.served()
        });
        for i in 1..=20u64 {
            let resp = client.call_blocking(NodeId(1), i, Duration::from_secs(30));
            assert_eq!(resp, Some(i * 2), "call {i} lost over lossy link");
        }
        assert_eq!(t.join().unwrap(), 20);
    }

    #[test]
    fn serve_until_stops_on_flag() {
        let eps = Fabric::<Frame>::new(2, FabricConfig::reliable()).into_endpoints();
        let mut it = eps.into_iter();
        let mut client = RpcClient::new(it.next().unwrap());
        let mut server = RpcServer::new(it.next().unwrap());
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let t = std::thread::spawn(move || {
            let mut inc = |_, x: u64| x + 1;
            server.serve_until(
                Duration::from_millis(1),
                &{
                    let stop = stop2;
                    move || stop.load(Ordering::Acquire)
                },
                &mut inc,
            );
            server.served()
        });
        assert_eq!(
            client.call_blocking(NodeId(1), 41, Duration::from_secs(5)),
            Some(42)
        );
        stop.store(true, Ordering::Release);
        assert!(t.join().unwrap() >= 1);
    }

    #[test]
    fn many_clients_one_server() {
        let eps = Fabric::<Frame>::new(4, FabricConfig::reliable()).into_endpoints();
        let mut it = eps.into_iter();
        let clients: Vec<_> = (0..3).map(|_| RpcClient::new(it.next().unwrap())).collect();
        let mut server = RpcServer::new(it.next().unwrap());
        let t = std::thread::spawn(move || {
            let mut neg = |src: NodeId, x: u64| x + u64::from(src.0) * 1000;
            for _ in 0..3 {
                while !server.serve_once(Duration::from_secs(5), &mut neg) {}
            }
        });
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(i, mut c)| {
                std::thread::spawn(move || {
                    c.call_blocking(NodeId(3), 7, Duration::from_secs(5))
                        .map(|v| (i, v))
                })
            })
            .collect();
        for h in handles {
            let (i, v) = h.join().unwrap().expect("reply");
            assert_eq!(v, 7 + (i as u64) * 1000);
        }
        t.join().unwrap();
    }
}
