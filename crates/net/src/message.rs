//! Message addressing and framing.

/// Identifies a node (a workstation, a worker process, the JobQ, or a
/// Clearinghouse) on the simulated network.
///
/// Node ids are dense small integers assigned by the transport builder, so
/// they double as indices into per-node tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A message in flight: payload plus source/destination addressing.
///
/// The transport stamps the source automatically; the sequence number is
/// assigned by the reliability layer (zero when unused).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Sequence number within the `(src, dst)` flow; 0 if the message did
    /// not pass through the reliability layer.
    pub seq: u64,
    /// The payload.
    pub body: M,
}

/// Gives a message an approximate size on the wire, in bytes.
///
/// The simulator's bandwidth model charges `overhead + size/bandwidth` per
/// message. Scheduling messages in Phish are tiny (a steal request is a
/// couple of words); application payloads such as ray-traced pixel bands can
/// be large.
pub trait WireSized {
    /// Approximate encoded size in bytes, including a nominal header.
    fn wire_bytes(&self) -> usize;
}

impl WireSized for () {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES
    }
}

impl WireSized for u64 {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES + 8
    }
}

impl WireSized for &str {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.len()
    }
}

impl WireSized for String {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.len()
    }
}

impl<T> WireSized for Vec<T> {
    fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.len() * std::mem::size_of::<T>()
    }
}

/// Nominal UDP/IP + Phish header size charged to every message.
pub const HEADER_BYTES: usize = 48;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(7);
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n}"), "n7");
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(().wire_bytes(), HEADER_BYTES);
        assert_eq!(5u64.wire_bytes(), HEADER_BYTES + 8);
        assert_eq!(vec![0u32; 10].wire_bytes(), HEADER_BYTES + 40);
    }

    #[test]
    fn envelope_fields() {
        let e = Envelope {
            src: NodeId(1),
            dst: NodeId(2),
            seq: 0,
            body: 99u64,
        };
        assert_eq!(e.src, NodeId(1));
        assert_eq!(e.dst, NodeId(2));
        assert_eq!(e.body, 99);
    }
}
