//! Acknowledgement / retransmission / deduplication over lossy datagrams.
//!
//! Phish layered its runtime protocol over UDP/IP, so every message that
//! mattered was retried until acknowledged and duplicates were discarded at
//! the receiver. [`ReliableEndpoint`] reproduces that: callers `send` and
//! periodically `pump`; pumping acknowledges and delivers fresh incoming
//! data, discards duplicates, and retransmits anything unacknowledged past
//! the retransmission timeout. Delivery is exactly-once per message but not
//! necessarily in order — Phish's scheduler messages (steal requests, task
//! migrations, synchronisation sends) are order-insensitive by design.

use std::collections::{HashMap, HashSet};

use crate::lossy::LossyEndpoint;
use crate::message::{Envelope, NodeId, WireSized, HEADER_BYTES};
use crate::time::Nanos;

/// Tuning for the reliability layer.
#[derive(Debug, Clone, Copy)]
pub struct ReliableConfig {
    /// Retransmission timeout: a datagram unacknowledged for this long is
    /// re-sent.
    pub rto: Nanos,
    /// Give up (and surface the peer as dead) after this many
    /// retransmissions of a single datagram.
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self {
            rto: 50 * crate::time::MILLISECOND,
            max_retries: 20,
        }
    }
}

/// Wire frames exchanged by the reliability layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReliableMsg<M> {
    /// Application payload with a per-(src,dst) sequence number.
    Data {
        /// Sequence number within the flow.
        seq: u64,
        /// The payload.
        body: M,
    },
    /// Cumulative-free acknowledgement of exactly `seq`.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
}

impl<M: WireSized> WireSized for ReliableMsg<M> {
    fn wire_bytes(&self) -> usize {
        match self {
            ReliableMsg::Data { body, .. } => body.wire_bytes() + 8,
            ReliableMsg::Ack { .. } => HEADER_BYTES,
        }
    }
}

#[derive(Debug)]
struct Outstanding<M> {
    dst: NodeId,
    body: M,
    last_sent: Nanos,
    retries: u32,
}

#[derive(Debug)]
struct RecvFlow {
    /// All seq numbers below this have been delivered.
    cursor: u64,
    /// Delivered seqs at or above `cursor` (out-of-order arrivals).
    seen: HashSet<u64>,
}

impl Default for RecvFlow {
    fn default() -> Self {
        // Sequence numbers start at 1, so everything below 1 is "delivered".
        Self {
            cursor: 1,
            seen: HashSet::new(),
        }
    }
}

impl RecvFlow {
    /// Returns true when `seq` is fresh, recording it as delivered.
    fn accept(&mut self, seq: u64) -> bool {
        if seq < self.cursor || self.seen.contains(&seq) {
            return false;
        }
        self.seen.insert(seq);
        while self.seen.remove(&self.cursor) {
            self.cursor += 1;
        }
        true
    }
}

/// Exactly-once delivery over a [`LossyEndpoint`].
#[derive(Debug)]
pub struct ReliableEndpoint<M> {
    inner: LossyEndpoint<ReliableMsg<M>>,
    cfg: ReliableConfig,
    next_seq: HashMap<NodeId, u64>,
    unacked: HashMap<(NodeId, u64), Outstanding<M>>,
    recv: HashMap<NodeId, RecvFlow>,
    /// Peers that exhausted `max_retries`; the caller should treat them as
    /// crashed (the fault-tolerance layer does exactly that).
    dead_peers: Vec<NodeId>,
}

impl<M: Send + Clone + WireSized> ReliableEndpoint<M> {
    /// Wraps a lossy endpoint.
    pub fn new(inner: LossyEndpoint<ReliableMsg<M>>, cfg: ReliableConfig) -> Self {
        Self {
            inner,
            cfg,
            next_seq: HashMap::new(),
            unacked: HashMap::new(),
            recv: HashMap::new(),
            dead_peers: Vec::new(),
        }
    }

    /// This endpoint's address.
    pub fn id(&self) -> NodeId {
        self.inner.id()
    }

    /// Queues `body` for exactly-once delivery to `dst` and transmits the
    /// first copy. `now` is the caller's clock reading.
    pub fn send(&mut self, dst: NodeId, body: M, now: Nanos) {
        let seq = self.next_seq.entry(dst).or_insert(1);
        let this_seq = *seq;
        *seq += 1;
        self.inner.send(
            dst,
            ReliableMsg::Data {
                seq: this_seq,
                body: body.clone(),
            },
        );
        self.unacked.insert(
            (dst, this_seq),
            Outstanding {
                dst,
                body,
                last_sent: now,
                retries: 0,
            },
        );
    }

    /// Processes incoming frames and expirations. Returns freshly delivered
    /// application messages (duplicates silently dropped).
    pub fn pump(&mut self, now: Nanos) -> Vec<Envelope<M>> {
        let mut delivered = Vec::new();
        // Inbound.
        while let Some(env) = self.inner.try_recv() {
            match env.body {
                ReliableMsg::Data { seq, body } => {
                    // Always ack, even duplicates — the original ack may
                    // have been the lost datagram.
                    self.inner.send(env.src, ReliableMsg::Ack { seq });
                    if self.recv.entry(env.src).or_default().accept(seq) {
                        delivered.push(Envelope {
                            src: env.src,
                            dst: env.dst,
                            seq,
                            body,
                        });
                    }
                }
                ReliableMsg::Ack { seq } => {
                    self.unacked.remove(&(env.src, seq));
                }
            }
        }
        // Retransmissions.
        let rto = self.cfg.rto;
        let max_retries = self.cfg.max_retries;
        let mut expired: Vec<(NodeId, u64)> = Vec::new();
        let mut to_resend: Vec<(NodeId, u64)> = Vec::new();
        for (&key, out) in &self.unacked {
            if now.saturating_sub(out.last_sent) >= rto {
                if out.retries >= max_retries {
                    expired.push(key);
                } else {
                    to_resend.push(key);
                }
            }
        }
        for key in to_resend {
            let out = self.unacked.get_mut(&key).expect("key just observed");
            out.retries += 1;
            out.last_sent = now;
            self.inner.inner().metrics().record_retransmission();
            let frame = ReliableMsg::Data {
                seq: key.1,
                body: out.body.clone(),
            };
            let dst = out.dst;
            self.inner.send(dst, frame);
        }
        for key in expired {
            self.unacked.remove(&key);
            if !self.dead_peers.contains(&key.0) {
                self.dead_peers.push(key.0);
            }
        }
        delivered
    }

    /// Messages queued but not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Peers declared dead after exhausting retries. Cleared on read.
    pub fn take_dead_peers(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.dead_peers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelNet, SendCost};
    use crate::lossy::LossyConfig;

    fn linked_pair(cfg: LossyConfig) -> (ReliableEndpoint<u64>, ReliableEndpoint<u64>) {
        let eps = ChannelNet::<ReliableMsg<u64>>::new(2, SendCost::FREE).into_endpoints();
        let mut it = eps.into_iter();
        let a = ReliableEndpoint::new(
            LossyEndpoint::new(it.next().unwrap(), cfg),
            ReliableConfig {
                rto: 10,
                max_retries: 1000,
            },
        );
        let b = ReliableEndpoint::new(
            LossyEndpoint::new(it.next().unwrap(), cfg),
            ReliableConfig {
                rto: 10,
                max_retries: 1000,
            },
        );
        (a, b)
    }

    /// Run both ends until quiescent, collecting deliveries at `b`.
    fn settle(a: &mut ReliableEndpoint<u64>, b: &mut ReliableEndpoint<u64>) -> Vec<u64> {
        let mut got = Vec::new();
        let mut now = 0;
        for _ in 0..10_000 {
            now += 11; // always past the tiny RTO
            got.extend(a.pump(now).into_iter().map(|e| e.body));
            got.extend(b.pump(now).into_iter().map(|e| e.body));
            if a.in_flight() == 0 && b.in_flight() == 0 {
                break;
            }
        }
        got
    }

    #[test]
    fn perfect_link_delivers_once() {
        let (mut a, mut b) = linked_pair(LossyConfig::perfect(5));
        for i in 0..100 {
            a.send(NodeId(1), i, 0);
        }
        let mut got = settle(&mut a, &mut b);
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn exactly_once_under_heavy_loss() {
        let (mut a, mut b) = linked_pair(LossyConfig {
            drop_prob: 0.4,
            dup_prob: 0.2,
            reorder_prob: 0.2,
            seed: 42,
        });
        for i in 0..200 {
            a.send(NodeId(1), i, 0);
        }
        let mut got = settle(&mut a, &mut b);
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>(), "exactly-once violated");
    }

    #[test]
    fn bidirectional_traffic() {
        let (mut a, mut b) = linked_pair(LossyConfig::nasty(7));
        for i in 0..50 {
            a.send(NodeId(1), i, 0);
            b.send(NodeId(0), 1000 + i, 0);
        }
        let got = settle(&mut a, &mut b);
        let to_b: Vec<u64> = got.iter().copied().filter(|v| *v < 1000).collect();
        let to_a: Vec<u64> = got.iter().copied().filter(|v| *v >= 1000).collect();
        let mut sb = to_b.clone();
        sb.sort_unstable();
        let mut sa = to_a.clone();
        sa.sort_unstable();
        assert_eq!(sb, (0..50).collect::<Vec<_>>());
        assert_eq!(sa, (1000..1050).collect::<Vec<_>>());
    }

    #[test]
    fn retransmissions_counted() {
        let (mut a, mut b) = linked_pair(LossyConfig {
            drop_prob: 0.5,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            seed: 21,
        });
        for i in 0..100 {
            a.send(NodeId(1), i, 0);
        }
        settle(&mut a, &mut b);
        // With 50% loss, retransmissions must have occurred.
        // (Metrics live on the shared ChannelNet block under endpoint a.)
        let snap = a.inner.inner().metrics().snapshot();
        assert!(snap.retransmissions > 0);
    }

    #[test]
    fn dead_peer_detected_after_max_retries() {
        let eps = ChannelNet::<ReliableMsg<u64>>::new(2, SendCost::FREE).into_endpoints();
        let mut it = eps.into_iter();
        let a_raw = it.next().unwrap();
        let b_raw = it.next().unwrap();
        drop(b_raw); // peer crashes
        let mut a = ReliableEndpoint::new(
            LossyEndpoint::new(a_raw, LossyConfig::perfect(1)),
            ReliableConfig {
                rto: 10,
                max_retries: 3,
            },
        );
        a.send(NodeId(1), 9, 0);
        let mut now = 0;
        for _ in 0..10 {
            now += 11;
            a.pump(now);
        }
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.take_dead_peers(), vec![NodeId(1)]);
        assert!(a.take_dead_peers().is_empty(), "cleared on read");
    }

    #[test]
    fn recv_flow_dedups() {
        let mut f = RecvFlow::default();
        assert!(f.accept(1));
        assert!(f.accept(3));
        assert!(!f.accept(1));
        assert!(!f.accept(3));
        assert!(f.accept(2));
        assert!(!f.accept(2));
        assert_eq!(f.cursor, 4);
        assert!(f.seen.is_empty());
    }
}
