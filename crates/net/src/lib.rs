#![warn(missing_docs)]

//! # phish-net — simulated workstation-network transports
//!
//! The original Phish system ran on a 1994 Ethernet LAN and implemented all
//! of its communication as *split-phase* operations on top of UDP/IP
//! datagrams: the runtime system sends a request and keeps scheduling work
//! while the reply is in flight, and it tolerates the loss, duplication, and
//! reordering that raw datagrams exhibit.
//!
//! This crate provides the equivalent substrate for an in-process
//! reproduction:
//!
//! * [`channel`] — a reliable, ordered in-process transport built on
//!   crossbeam channels, with a configurable per-message **software
//!   overhead** so that the cost structure of a workstation LAN (where
//!   sending a message costs two orders of magnitude more than on a
//!   supercomputer interconnect) can be injected and varied.
//! * [`lossy`] — a deterministic fault-injecting wrapper that drops,
//!   duplicates, and reorders messages under a seeded RNG, standing in for
//!   raw UDP behaviour.
//! * [`reliable`] — an acknowledgement/retransmission/deduplication layer
//!   that recovers exactly-once delivery on top of the lossy transport,
//!   mirroring what the Phish runtime layered over UDP.
//! * [`splitphase`] — request/reply correlation so callers can issue an RPC
//!   and continue working until the reply arrives.
//! * [`metrics`] — message and byte counters; Table 2 of the paper reports
//!   "messages sent" and these counters are its source of truth.
//! * [`time`] — a nanosecond clock abstraction with both a real
//!   (monotonic) implementation and a manually-advanced one for
//!   deterministic tests.
//!
//! Everything is generic over the message type `M` rather than forcing a
//! byte-level wire format: the scheduling algorithms under study observe
//! message *counts* and *costs*, not encodings. Types that want to
//! participate in bandwidth modelling implement [`message::WireSized`].

pub mod channel;
pub mod delayed;
pub mod lossy;
pub mod message;
pub mod metrics;
pub mod reliable;
pub mod rpc;
pub mod splitphase;
pub mod time;

pub use channel::{ChannelNet, Endpoint, SendCost};
pub use delayed::DelayedNet;
pub use lossy::{LossyConfig, LossyEndpoint};
pub use message::{Envelope, NodeId, WireSized};
pub use metrics::NetMetrics;
pub use reliable::{ReliableConfig, ReliableEndpoint};
pub use rpc::{RpcClient, RpcFrame, RpcServer};
pub use splitphase::{RequestId, SplitPhase};
pub use time::{Clock, ManualClock, Nanos, RealClock};
