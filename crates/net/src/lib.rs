#![warn(missing_docs)]

//! # phish-net — simulated workstation-network transports
//!
//! The original Phish system ran on a 1994 Ethernet LAN and implemented all
//! of its communication as *split-phase* operations on top of UDP/IP
//! datagrams: the runtime system sends a request and keeps scheduling work
//! while the reply is in flight, and it tolerates the loss, duplication, and
//! reordering that raw datagrams exhibit.
//!
//! This crate provides the equivalent substrate for an in-process
//! reproduction, unified behind one abstraction:
//!
//! * [`fabric`] — the message fabric every layer sends through. A
//!   [`Fabric`] is a fully-connected network of dense-id nodes with a
//!   configurable per-message **software overhead** (the cost structure of
//!   a workstation LAN, where sending a message costs two orders of
//!   magnitude more than on a supercomputer interconnect) and a pluggable
//!   [`LinkPolicy`]: reliable in-process channels, or lossy datagrams with
//!   seeded drop/duplicate/reorder faults recovered to exactly-once
//!   delivery by an ack/retransmission/deduplication protocol — what the
//!   Phish runtime layered over raw UDP. [`VirtualFabric`] is the same
//!   fabric on a virtual clock, carrying the discrete-event simulator's
//!   traffic with exact, deterministic latencies.
//! * [`rpc`] — typed request/reply servers and split-phase clients over
//!   fabric endpoints (the PhishJobQ and Clearinghouse shape).
//! * [`splitphase`] — request/reply correlation so callers can issue an RPC
//!   and continue working until the reply arrives.
//! * [`metrics`] — message and byte counters; Table 2 of the paper reports
//!   "messages sent" and the fabric's per-node/per-link counters are its
//!   sole source of truth.
//! * [`time`] — a nanosecond clock abstraction with both a real
//!   (monotonic) implementation and a manually-advanced one for
//!   deterministic tests.
//!
//! Everything is generic over the message type `M` rather than forcing a
//! byte-level wire format: the scheduling algorithms under study observe
//! message *counts* and *costs*, not encodings. Types that want to
//! participate in bandwidth modelling implement [`message::WireSized`].
//! Notably, the lossy policy does **not** require `M: Clone` — loss is
//! simulated by retaining the owned body for retransmission — so even the
//! engines' non-clonable boxed task closures can ride a faulty link.

pub mod fabric;
pub mod message;
pub mod metrics;
pub mod rpc;
pub mod splitphase;
pub mod time;
pub mod udp;

pub use fabric::{
    Fabric, FabricConfig, FabricEndpoint, FabricHandle, LinkPolicy, LossyConfig, ReliableConfig,
    SendCost, VirtualFabric,
};
pub use message::{Envelope, NodeId, WireSized};
pub use metrics::{NetMetrics, NetSnapshot};
pub use rpc::{RpcClient, RpcFrame, RpcServer};
pub use splitphase::{RequestId, SplitPhase};
pub use time::{Clock, ManualClock, Nanos, RealClock};
pub use udp::{UdpConfig, UdpEndpoint, UdpFabric, WireCodec, UDP_HEADER_BYTES};
