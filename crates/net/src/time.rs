//! Nanosecond clocks.
//!
//! The retransmission layer and the macro-level scheduler both need a notion
//! of "now". Production code uses [`RealClock`] (a monotonic wall clock);
//! tests and the discrete-event simulator use [`ManualClock`], which only
//! advances when told to, making every timeout deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotonic time in nanoseconds since an arbitrary epoch.
pub type Nanos = u64;

/// One second expressed in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// One millisecond expressed in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;

/// One microsecond expressed in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;

/// A source of monotonic nanosecond timestamps.
///
/// Implementations must be cheap to clone (handles to shared state) and
/// callable from any thread.
pub trait Clock: Send + Sync {
    /// The current time in nanoseconds since this clock's epoch.
    fn now(&self) -> Nanos;
}

/// A [`Clock`] backed by [`std::time::Instant`].
#[derive(Debug, Clone)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Creates a clock whose epoch is the moment of creation.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Nanos {
        self.epoch.elapsed().as_nanos() as Nanos
    }
}

/// A manually advanced [`Clock`] for deterministic tests.
///
/// Cloning a `ManualClock` yields a handle to the *same* underlying time, so
/// a test can hold one handle and hand another to the code under test.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock reading `start`.
    pub fn starting_at(start: Nanos) -> Self {
        let clock = Self::new();
        clock.now.store(start, Ordering::SeqCst);
        clock
    }

    /// Advances the clock by `delta` nanoseconds and returns the new time.
    pub fn advance(&self, delta: Nanos) -> Nanos {
        self.now.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// Sets the clock to an absolute time. `t` must not be in the past;
    /// moving a monotonic clock backwards is a logic error and panics.
    pub fn set(&self, t: Nanos) {
        let prev = self.now.swap(t, Ordering::SeqCst);
        assert!(prev <= t, "ManualClock moved backwards: {prev} -> {t}");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Nanos {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_starts_at_zero() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(10), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    fn manual_clock_set_forward() {
        let c = ManualClock::starting_at(100);
        c.set(250);
        assert_eq!(c.now(), 250);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_set_backwards_panics() {
        let c = ManualClock::starting_at(100);
        c.set(50);
    }

    #[test]
    fn units_are_consistent() {
        assert_eq!(SECOND, 1000 * MILLISECOND);
        assert_eq!(MILLISECOND, 1000 * MICROSECOND);
    }
}
