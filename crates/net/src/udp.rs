//! Real-socket UDP transport.
//!
//! The original Phish runtime spoke raw UDP/IP datagrams on a 1994
//! Ethernet and layered its own acknowledgement/retransmission protocol on
//! top (§3). [`UdpEndpoint`] is that transport for the reproduction's
//! multi-process mode: a nonblocking UDP socket on loopback or a LAN, with
//! the *same* exactly-once recovery protocol the in-memory fabric runs —
//! sender-side ack/retransmit tables tuned by [`ReliableConfig`], the
//! receiver-side [`RecvFlow`] deduplication window (shared, not
//! reimplemented), and the same [`NetMetrics`] counters with the same
//! accounting rules (every copy put on the wire counts; acks are protocol
//! overhead and are not counted, matching the in-memory fabric's control
//! path).
//!
//! Each endpoint runs one background **poller thread** that drains the
//! socket, acknowledges and deduplicates inbound data, and pumps the
//! retransmission timer. Application payloads cross the wire through
//! [`WireCodec`] — a byte-level encoding trait. `phish-net` sits *below*
//! `phish-core` in the dependency order, so the trait lives here and the
//! process runtime (`phish-proc`) implements it by bridging to
//! `phish-core::codec`'s word-stream `WordCodec`.
//!
//! A seeded [`LossyConfig`] can be layered over the real socket: loopback
//! practically never loses datagrams, so injected faults are how tests
//! exercise the recovery protocol end-to-end over genuine sockets.
//! Injection happens on the send side, exactly like the in-memory fabric:
//! a "dropped" datagram is counted as sent and then never given to the
//! kernel; a "duplicated" one is transmitted twice; a "reordered" one is
//! held back until the next transmission overtakes it.
//!
//! Datagram layout (little-endian), [`UDP_HEADER_BYTES`] = 24:
//!
//! ```text
//! magic  u32   0x50485348 ("PHSH")
//! ver    u8    wire-format version (1)
//! kind   u8    0 = data, 1 = ack
//! _pad   u16   reserved, zero
//! src    u32   sender NodeId
//! dst    u32   intended receiver NodeId
//! seq    u64   per-(src,dst) sequence number, starting at 1
//! body   ...   WireCodec bytes (data frames only)
//! ```

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fabric::{LossyConfig, RecvFlow, ReliableConfig};
use crate::message::NodeId;
use crate::metrics::{NetMetrics, NetSnapshot};

/// Byte-level wire encoding for messages crossing a real socket.
///
/// The in-memory fabric moves Rust values and never serialises; a real
/// datagram needs bytes. Implementations in the process runtime bridge to
/// `phish-core::codec`'s `WordCodec` (encode to `u64` words, then to
/// little-endian bytes) so the UDP wire format and the in-memory messages
/// cannot drift apart.
pub trait WireCodec: Sized {
    /// Encodes `self` to bytes.
    fn encode_bytes(&self) -> Vec<u8>;
    /// Decodes a value from bytes; `None` on malformed input.
    fn decode_bytes(bytes: &[u8]) -> Option<Self>;
}

/// Size of the datagram header prepended to every frame.
pub const UDP_HEADER_BYTES: usize = 24;

const MAGIC: u32 = 0x5048_5348; // "PHSH"
const VERSION: u8 = 1;
const KIND_DATA: u8 = 0;
const KIND_ACK: u8 = 1;

/// Largest datagram the transport will send or receive. Loopback and any
/// sane LAN MTU-with-fragmentation handle this; the runtime's frames
/// (steal grants carrying an encoded spec task, rosters, reports) are far
/// smaller.
pub const MAX_DATAGRAM: usize = 60 * 1024;

fn encode_header(kind: u8, src: NodeId, dst: NodeId, seq: u64) -> [u8; UDP_HEADER_BYTES] {
    let mut h = [0u8; UDP_HEADER_BYTES];
    h[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    h[4] = VERSION;
    h[5] = kind;
    h[8..12].copy_from_slice(&src.0.to_le_bytes());
    h[12..16].copy_from_slice(&dst.0.to_le_bytes());
    h[16..24].copy_from_slice(&seq.to_le_bytes());
    h
}

fn decode_header(buf: &[u8]) -> Option<(u8, NodeId, NodeId, u64)> {
    if buf.len() < UDP_HEADER_BYTES {
        return None;
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
    if magic != MAGIC || buf[4] != VERSION {
        return None;
    }
    let kind = buf[5];
    let src = NodeId(u32::from_le_bytes(buf[8..12].try_into().ok()?));
    let dst = NodeId(u32::from_le_bytes(buf[12..16].try_into().ok()?));
    let seq = u64::from_le_bytes(buf[16..24].try_into().ok()?);
    Some((kind, src, dst, seq))
}

/// Configuration for a [`UdpEndpoint`].
#[derive(Debug, Clone, Copy)]
pub struct UdpConfig {
    /// Ack/retransmit tuning. Defaults to [`ReliableConfig::lan`] —
    /// a 5ms retransmission timeout and a ~1s retry budget, sized for
    /// loopback/LAN RTTs rather than the in-memory fabric's spin-loop
    /// latency.
    pub recovery: ReliableConfig,
    /// Optional seeded fault injection layered over the real socket.
    /// Loopback essentially never drops, so this is how tests and
    /// experiments exercise the recovery protocol on genuine datagrams.
    pub faults: Option<LossyConfig>,
}

impl Default for UdpConfig {
    fn default() -> Self {
        Self {
            recovery: ReliableConfig::lan(),
            faults: None,
        }
    }
}

impl UdpConfig {
    /// The default profile: LAN recovery timers, no injected faults.
    pub fn lan() -> Self {
        Self::default()
    }

    /// Overrides the recovery profile.
    pub fn with_recovery(mut self, recovery: ReliableConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Layers seeded fault injection over the socket.
    pub fn with_faults(mut self, faults: LossyConfig) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// A datagram retained for retransmission until acknowledged.
struct Unacked {
    /// The full frame (header + body) as put on the wire.
    frame: Vec<u8>,
    /// Where it goes.
    addr: SocketAddr,
    /// Retransmissions so far.
    retries: u32,
    /// Last transmission time.
    last_tx: Instant,
}

/// Send-side fault injector state (seeded, like the in-memory fabric's).
struct FaultLane {
    cfg: LossyConfig,
    rng: SmallRng,
    /// A frame held back by a reorder roll, transmitted after the next
    /// frame overtakes it.
    held: Option<(SocketAddr, Vec<u8>)>,
}

/// State shared between the caller-facing endpoint and its poller thread.
struct Inner {
    me: NodeId,
    socket: UdpSocket,
    recovery: ReliableConfig,
    peers: Mutex<HashMap<u32, SocketAddr>>,
    next_seq: Mutex<HashMap<u32, u64>>,
    unacked: Mutex<HashMap<(u32, u64), Unacked>>,
    recv_flows: Mutex<HashMap<u32, RecvFlow>>,
    faults: Option<Mutex<FaultLane>>,
    metrics: NetMetrics,
    dead_peers: Mutex<Vec<NodeId>>,
    /// Bodies of frames that exhausted their retry budget, for recovery
    /// by the layer above (a steal grant to a dead peer must be
    /// re-admitted, not lost).
    dead_letters: Mutex<Vec<(NodeId, Vec<u8>)>>,
    stop: AtomicBool,
}

impl Inner {
    /// Puts one frame on the wire, applying metric accounting and fault
    /// injection. Every copy counts toward `messages_sent`/`bytes_sent`
    /// *before* the drop roll — the same honesty rule as the in-memory
    /// fabric's counters.
    fn transmit(&self, addr: SocketAddr, frame: &[u8], retransmit: bool) {
        self.metrics.record_send(frame.len());
        if retransmit {
            self.metrics.record_retransmission();
        }
        let mut copies: usize = 1;
        if let Some(lane) = &self.faults {
            let mut lane = lane.lock().expect("fault lane");
            let cfg = lane.cfg;
            if lane.rng.gen_bool(cfg.drop_prob) {
                self.metrics.record_drop();
                return;
            }
            if lane.rng.gen_bool(cfg.dup_prob) {
                self.metrics.record_duplicate();
                copies = 2;
            }
            if lane.rng.gen_bool(cfg.reorder_prob) {
                // Hold this frame; release anything previously held (it
                // has now been overtaken, which is the reordering).
                let released = lane.held.replace((addr, frame.to_vec()));
                drop(lane);
                if let Some((r_addr, r_frame)) = released {
                    let _ = self.socket.send_to(&r_frame, r_addr);
                }
                return;
            }
            let released = lane.held.take();
            drop(lane);
            for _ in 0..copies {
                let _ = self.socket.send_to(frame, addr);
            }
            if let Some((r_addr, r_frame)) = released {
                let _ = self.socket.send_to(&r_frame, r_addr);
            }
            return;
        }
        for _ in 0..copies {
            let _ = self.socket.send_to(frame, addr);
        }
    }

    /// Acknowledges `seq` from `src` straight back to the source address.
    /// Acks are protocol overhead: uncounted and never fault-injected,
    /// matching the in-memory fabric, which models ack loss via the data
    /// frame's own drop roll (a lost ack and a lost frame both end in a
    /// retransmission).
    fn send_ack(&self, src: NodeId, seq: u64, to: SocketAddr) {
        let h = encode_header(KIND_ACK, self.me, src, seq);
        let _ = self.socket.send_to(&h, to);
    }

    /// Retransmits timed-out frames; expires peers past the retry budget.
    fn pump(&self) {
        let now = Instant::now();
        let rto = Duration::from_nanos(self.recovery.rto);
        let mut expired: Vec<(u32, u64)> = Vec::new();
        let mut resend: Vec<(SocketAddr, Vec<u8>)> = Vec::new();
        {
            let mut unacked = self.unacked.lock().expect("unacked");
            for ((dst, seq), u) in unacked.iter_mut() {
                if now.duration_since(u.last_tx) < rto {
                    continue;
                }
                if u.retries >= self.recovery.max_retries {
                    expired.push((*dst, *seq));
                    continue;
                }
                u.retries += 1;
                u.last_tx = now;
                resend.push((u.addr, u.frame.clone()));
            }
            for key in &expired {
                let u = unacked.remove(key).expect("expired entry present");
                let dst = NodeId(key.0);
                let mut dead = self.dead_peers.lock().expect("dead peers");
                if !dead.contains(&dst) {
                    dead.push(dst);
                }
                self.dead_letters
                    .lock()
                    .expect("dead letters")
                    .push((dst, u.frame[UDP_HEADER_BYTES..].to_vec()));
            }
        }
        for (addr, frame) in resend {
            self.transmit(addr, &frame, true);
        }
    }
}

/// One node of the real-socket transport: a bound UDP socket, the
/// exactly-once recovery protocol, and a background poller thread.
///
/// The API mirrors [`crate::FabricEndpoint`] where the concepts coincide
/// (send / try_recv / metrics / in-flight / dead peers / quiesce) so the
/// process runtime can be read side-by-side with the in-memory engines.
pub struct UdpEndpoint<M> {
    inner: Arc<Inner>,
    rx: Receiver<(NodeId, M)>,
    poller: Option<std::thread::JoinHandle<()>>,
}

impl<M: WireCodec + Send + 'static> UdpEndpoint<M> {
    /// Binds on an ephemeral loopback port.
    pub fn bind(id: NodeId, cfg: UdpConfig) -> io::Result<Self> {
        Self::bind_addr(id, "127.0.0.1:0".parse().expect("loopback"), cfg)
    }

    /// Binds on a specific address.
    pub fn bind_addr(id: NodeId, addr: SocketAddr, cfg: UdpConfig) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        // The poller blocks in recv for at most this long between
        // retransmission pumps; a quarter of the RTO keeps timer error
        // well under the timeout itself, floored to stay off the syscall
        // fast-path edge (0 would mean nonblocking / busy spin).
        let pump_tick = Duration::from_nanos((cfg.recovery.rto / 4).max(100_000));
        socket.set_read_timeout(Some(pump_tick))?;
        let inner = Arc::new(Inner {
            me: id,
            socket,
            recovery: cfg.recovery,
            peers: Mutex::new(HashMap::new()),
            next_seq: Mutex::new(HashMap::new()),
            unacked: Mutex::new(HashMap::new()),
            recv_flows: Mutex::new(HashMap::new()),
            faults: cfg.faults.map(|f| {
                Mutex::new(FaultLane {
                    rng: SmallRng::seed_from_u64(f.seed ^ (0x0DD5_0C4E7 + u64::from(id.0))),
                    cfg: f,
                    held: None,
                })
            }),
            metrics: NetMetrics::new(),
            dead_peers: Mutex::new(Vec::new()),
            dead_letters: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let (tx, rx) = unbounded();
        let poller = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("phish-udp-{}", id.0))
                .spawn(move || poll_loop::<M>(&inner, &tx))
                .expect("spawn udp poller")
        };
        Ok(Self {
            inner,
            rx,
            poller: Some(poller),
        })
    }

    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.inner.me
    }

    /// The socket's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.socket.local_addr().expect("bound socket")
    }

    /// Registers (or updates) a peer's address. Peers are also learned
    /// automatically from the source address of inbound datagrams.
    pub fn add_peer(&self, id: NodeId, addr: SocketAddr) {
        self.inner.peers.lock().expect("peers").insert(id.0, addr);
    }

    /// The known address of `id`, if any.
    pub fn peer_addr(&self, id: NodeId) -> Option<SocketAddr> {
        self.inner.peers.lock().expect("peers").get(&id.0).copied()
    }

    /// Sends `msg` to `dst` with at-least-once transmission and
    /// receiver-side deduplication (net effect: exactly-once, same
    /// protocol as the in-memory fabric's lossy policy). Returns `false`
    /// when `dst`'s address is unknown.
    pub fn send(&self, dst: NodeId, msg: &M) -> bool {
        let Some(addr) = self.peer_addr(dst) else {
            return false;
        };
        let seq = {
            let mut seqs = self.inner.next_seq.lock().expect("next_seq");
            let s = seqs.entry(dst.0).or_insert(1);
            let seq = *s;
            *s += 1;
            seq
        };
        let body = msg.encode_bytes();
        let mut frame = Vec::with_capacity(UDP_HEADER_BYTES + body.len());
        frame.extend_from_slice(&encode_header(KIND_DATA, self.inner.me, dst, seq));
        frame.extend_from_slice(&body);
        debug_assert!(frame.len() <= MAX_DATAGRAM, "frame exceeds MAX_DATAGRAM");
        self.inner.unacked.lock().expect("unacked").insert(
            (dst.0, seq),
            Unacked {
                frame: frame.clone(),
                addr,
                retries: 0,
                last_tx: Instant::now(),
            },
        );
        self.inner.transmit(addr, &frame, false);
        true
    }

    /// Takes the next delivered message, if one is waiting.
    pub fn try_recv(&self) -> Option<(NodeId, M)> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next delivered message.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(NodeId, M)> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// This endpoint's traffic counters.
    pub fn metrics(&self) -> NetSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Frames sent but not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        self.inner.unacked.lock().expect("unacked").len()
    }

    /// Waits up to `timeout` for every in-flight frame to be acknowledged
    /// (or expired). Returns `true` when the endpoint quiesced.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.in_flight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }

    /// Peers that exhausted the retry budget since the last call.
    pub fn take_dead_peers(&self) -> Vec<NodeId> {
        std::mem::take(&mut *self.inner.dead_peers.lock().expect("dead peers"))
    }

    /// Decoded bodies of frames that expired unacknowledged since the
    /// last call — the layer above re-admits them (e.g. a steal grant in
    /// flight to a crashed worker goes back to the pool instead of being
    /// lost). Bodies that fail to decode are dropped silently.
    pub fn take_dead_letters(&self) -> Vec<(NodeId, M)> {
        let raw = std::mem::take(&mut *self.inner.dead_letters.lock().expect("dead letters"));
        raw.into_iter()
            .filter_map(|(dst, bytes)| M::decode_bytes(&bytes).map(|m| (dst, m)))
            .collect()
    }
}

impl<M> Drop for UdpEndpoint<M> {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.poller.take() {
            let _ = h.join();
        }
    }
}

/// The poller: drains the socket (acks, dedup, delivery) and pumps the
/// retransmission timer until the endpoint drops.
fn poll_loop<M: WireCodec + Send + 'static>(inner: &Inner, tx: &Sender<(NodeId, M)>) {
    let mut buf = vec![0u8; MAX_DATAGRAM];
    while !inner.stop.load(Ordering::Acquire) {
        match inner.socket.recv_from(&mut buf) {
            Ok((n, from)) => {
                if let Some((kind, src, dst, seq)) = decode_header(&buf[..n]) {
                    if dst != inner.me {
                        // Misrouted or stale; not ours.
                    } else if kind == KIND_ACK {
                        inner.unacked.lock().expect("unacked").remove(&(src.0, seq));
                    } else if kind == KIND_DATA {
                        // Learn/refresh the peer's address from the
                        // datagram itself — this is how workers discover
                        // each other without static configuration.
                        inner.peers.lock().expect("peers").insert(src.0, from);
                        // Always ack, even duplicates: the sender may
                        // have missed the first ack.
                        inner.send_ack(src, seq, from);
                        let fresh = inner
                            .recv_flows
                            .lock()
                            .expect("recv flows")
                            .entry(src.0)
                            .or_default()
                            .accept(seq);
                        if fresh {
                            if let Some(msg) = M::decode_bytes(&buf[UDP_HEADER_BYTES..n]) {
                                inner.metrics.record_delivery();
                                let _ = tx.send((src, msg));
                            }
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                // Transient socket error (e.g. ICMP unreachable surfaced
                // on some platforms); the retransmission protocol covers
                // any associated loss.
            }
        }
        inner.pump();
    }
}

/// Convenience constructor for a fully-meshed set of loopback endpoints
/// inside one process — the UDP analogue of `Fabric::into_endpoints`,
/// used by tests and benchmarks.
pub struct UdpFabric;

impl UdpFabric {
    /// Binds `n` endpoints on ephemeral loopback ports, with every
    /// endpoint knowing every other's address. Node ids are `0..n`.
    pub fn local<M: WireCodec + Send + 'static>(
        n: usize,
        cfg: UdpConfig,
    ) -> io::Result<Vec<UdpEndpoint<M>>> {
        let eps: Vec<UdpEndpoint<M>> = (0..n)
            .map(|i| UdpEndpoint::bind(NodeId(i as u32), cfg))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = eps.iter().map(UdpEndpoint::local_addr).collect();
        for (i, ep) in eps.iter().enumerate() {
            for (j, addr) in addrs.iter().enumerate() {
                if i != j {
                    ep.add_peer(NodeId(j as u32), *addr);
                }
            }
        }
        Ok(eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Blob(Vec<u8>);

    impl WireCodec for Blob {
        fn encode_bytes(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn decode_bytes(bytes: &[u8]) -> Option<Self> {
            Some(Self(bytes.to_vec()))
        }
    }

    const T: Duration = Duration::from_secs(10);

    #[test]
    fn header_roundtrip() {
        let h = encode_header(KIND_DATA, NodeId(3), NodeId(9), 0xDEAD_BEEF_0042);
        assert_eq!(
            decode_header(&h),
            Some((KIND_DATA, NodeId(3), NodeId(9), 0xDEAD_BEEF_0042))
        );
        assert_eq!(decode_header(&h[..10]), None, "truncated header rejected");
        let mut bad = h;
        bad[0] ^= 0xFF;
        assert_eq!(decode_header(&bad), None, "bad magic rejected");
    }

    #[test]
    fn loopback_ping_pong() {
        let eps = UdpFabric::local::<Blob>(2, UdpConfig::lan()).expect("bind");
        assert!(eps[0].send(NodeId(1), &Blob(vec![1, 2, 3])));
        let (src, msg) = eps[1].recv_timeout(T).expect("delivered");
        assert_eq!(src, NodeId(0));
        assert_eq!(msg, Blob(vec![1, 2, 3]));
        // The reply can ride the auto-learned address: drop ep 1's
        // static peer table first to prove learning works.
        eps[1].inner.peers.lock().unwrap().remove(&0);
        assert!(
            !eps[1].send(NodeId(0), &Blob(vec![9])),
            "unknown peer refused"
        );
        // Receiving from 0 re-taught the address above... but we just
        // removed it; send again from 0 to re-learn.
        assert!(eps[0].send(NodeId(1), &Blob(vec![4])));
        eps[1].recv_timeout(T).expect("second delivery");
        assert!(eps[1].send(NodeId(0), &Blob(vec![5])), "address learned");
        let (src, msg) = eps[0].recv_timeout(T).expect("reply");
        assert_eq!(src, NodeId(1));
        assert_eq!(msg, Blob(vec![5]));
        assert!(eps[0].quiesce(T) && eps[1].quiesce(T));
    }

    #[test]
    fn exactly_once_under_injected_faults() {
        let cfg = UdpConfig::lan()
            .with_recovery(ReliableConfig::lan().with_rto(2_000_000)) // 2ms
            .with_faults(LossyConfig {
                drop_prob: 0.3,
                dup_prob: 0.2,
                reorder_prob: 0.1,
                seed: 42,
            });
        let eps = UdpFabric::local::<Blob>(2, cfg).expect("bind");
        let n = 100u8;
        for i in 0..n {
            assert!(eps[0].send(NodeId(1), &Blob(vec![i])));
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + T;
        while got.len() < n as usize && Instant::now() < deadline {
            if let Some((_, Blob(b))) = eps[1].recv_timeout(Duration::from_millis(100)) {
                got.push(b[0]);
            }
        }
        assert_eq!(got.len(), n as usize, "every message delivered");
        got.sort_unstable();
        let expect: Vec<u8> = (0..n).collect();
        assert_eq!(got, expect, "each exactly once");
        assert!(eps[0].quiesce(T), "all frames eventually acknowledged");
        let snap = eps[0].metrics();
        assert!(snap.retransmissions > 0, "loss forced retransmissions");
        assert!(
            snap.messages_sent as usize > n as usize,
            "retransmitted copies counted"
        );
        assert_eq!(eps[1].metrics().messages_delivered, u64::from(n));
    }

    #[test]
    fn dead_peer_surfaces_and_letters_are_recoverable() {
        let cfg = UdpConfig::lan().with_recovery(ReliableConfig {
            rto: 1_000_000, // 1ms
            max_retries: 3,
        });
        let ep = UdpEndpoint::<Blob>::bind(NodeId(0), cfg).expect("bind");
        // A loopback port with nothing listening: sends vanish, acks
        // never come.
        ep.add_peer(NodeId(7), "127.0.0.1:9".parse().unwrap());
        assert!(ep.send(NodeId(7), &Blob(vec![42])));
        let deadline = Instant::now() + T;
        let mut dead = Vec::new();
        while dead.is_empty() && Instant::now() < deadline {
            dead = ep.take_dead_peers();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(dead, vec![NodeId(7)]);
        let letters = ep.take_dead_letters();
        assert_eq!(letters, vec![(NodeId(7), Blob(vec![42]))]);
        assert_eq!(ep.in_flight(), 0);
        assert_eq!(ep.metrics().retransmissions, 3, "full retry budget spent");
    }

    #[test]
    fn retransmission_bytes_counted_on_the_wire() {
        // Drop everything: the original and every retransmitted copy are
        // counted as sent even though none reach the kernel.
        let cfg = UdpConfig::lan()
            .with_recovery(ReliableConfig {
                rto: 1_000_000,
                max_retries: 4,
            })
            .with_faults(LossyConfig::dropping(1.0, 7));
        let ep = UdpEndpoint::<Blob>::bind(NodeId(0), cfg).expect("bind");
        ep.add_peer(NodeId(1), "127.0.0.1:9".parse().unwrap());
        assert!(ep.send(NodeId(1), &Blob(vec![0; 8])));
        let deadline = Instant::now() + T;
        while ep.in_flight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let frame = (UDP_HEADER_BYTES + 8) as u64;
        let snap = ep.metrics();
        assert_eq!(snap.retransmissions, 4);
        assert_eq!(snap.messages_sent, 5, "original + 4 retransmissions");
        assert_eq!(snap.bytes_sent, 5 * frame);
        assert_eq!(snap.messages_dropped, 5);
    }
}
