//! A deterministic latency-modelling transport.
//!
//! [`DelayedNet`] holds every sent message until its delivery time, driven
//! by an explicit clock — the unit-test companion to the discrete-event
//! simulator's link models: protocol code can be exercised against exact
//! latencies (and exact interleavings) with no threads and no sleeps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::message::{Envelope, NodeId, WireSized};
use crate::metrics::NetMetrics;
use crate::time::Nanos;

#[derive(Debug)]
struct InFlight<M> {
    deliver_at: Nanos,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// A single-owner network of `n` nodes where every message takes a
/// caller-supplied latency and arrives exactly on time, in deterministic
/// order (ties break by send order).
#[derive(Debug)]
pub struct DelayedNet<M> {
    nodes: usize,
    in_flight: BinaryHeap<Reverse<InFlight<M>>>,
    next_seq: u64,
    metrics: NetMetrics,
}

impl<M: WireSized> DelayedNet<M> {
    /// An empty network of `n` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            in_flight: BinaryHeap::new(),
            next_seq: 0,
            metrics: NetMetrics::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Sends `body` from `src` to `dst`, to be delivered at
    /// `now + latency`.
    pub fn send(&mut self, now: Nanos, latency: Nanos, src: NodeId, dst: NodeId, body: M) {
        assert!(src.index() < self.nodes && dst.index() < self.nodes);
        self.metrics.record_send(body.wire_bytes());
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight.push(Reverse(InFlight {
            deliver_at: now + latency,
            seq,
            env: Envelope {
                src,
                dst,
                seq: 0,
                body,
            },
        }));
    }

    /// Delivers every message due at or before `now`, in delivery order.
    pub fn deliver_due(&mut self, now: Nanos) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > now {
                break;
            }
            let Reverse(m) = self.in_flight.pop().expect("peeked");
            self.metrics.record_delivery();
            out.push(m.env);
        }
        out
    }

    /// The time the next message becomes due, if any.
    pub fn next_due(&self) -> Option<Nanos> {
        self.in_flight.peek().map(|Reverse(m)| m.deliver_at)
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_exactly_on_time() {
        let mut net: DelayedNet<u64> = DelayedNet::new(2);
        net.send(0, 100, NodeId(0), NodeId(1), 7);
        assert!(net.deliver_due(99).is_empty());
        let due = net.deliver_due(100);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].body, 7);
        assert_eq!(due[0].src, NodeId(0));
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn delivery_order_is_by_time_then_send_order() {
        let mut net: DelayedNet<u64> = DelayedNet::new(2);
        net.send(0, 300, NodeId(0), NodeId(1), 1); // due 300
        net.send(0, 100, NodeId(0), NodeId(1), 2); // due 100
        net.send(0, 100, NodeId(1), NodeId(0), 3); // due 100, sent after
        let due = net.deliver_due(1000);
        let bodies: Vec<u64> = due.iter().map(|e| e.body).collect();
        assert_eq!(bodies, vec![2, 3, 1]);
    }

    #[test]
    fn next_due_drives_a_virtual_clock() {
        let mut net: DelayedNet<u64> = DelayedNet::new(2);
        net.send(0, 50, NodeId(0), NodeId(1), 1);
        net.send(0, 200, NodeId(0), NodeId(1), 2);
        let mut now = 0;
        let mut got = Vec::new();
        while let Some(due) = net.next_due() {
            now = due;
            got.extend(net.deliver_due(now).into_iter().map(|e| e.body));
        }
        assert_eq!(now, 200);
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn ping_pong_protocol_is_fully_deterministic() {
        // A request/response exchange with asymmetric latencies, stepped
        // on a virtual clock: the transcript is exact.
        let mut net: DelayedNet<&'static str> = DelayedNet::new(2);
        net.send(0, 150, NodeId(0), NodeId(1), "ping");
        let mut transcript = Vec::new();
        while let Some(due) = net.next_due() {
            let now = due;
            for env in net.deliver_due(now) {
                transcript.push((now, env.body));
                if env.body == "ping" {
                    net.send(now, 50, env.dst, env.src, "pong");
                }
            }
        }
        assert_eq!(transcript, vec![(150, "ping"), (200, "pong")]);
        assert_eq!(net.metrics().snapshot().messages_sent, 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_rejected() {
        let mut net: DelayedNet<u64> = DelayedNet::new(1);
        net.send(0, 1, NodeId(0), NodeId(5), 9);
    }
}
