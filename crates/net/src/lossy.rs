//! Deterministic datagram fault injection.
//!
//! Phish ran over raw UDP/IP, so its runtime had to survive loss,
//! duplication, and reordering. [`LossyEndpoint`] wraps a reliable
//! [`Endpoint`] and injects exactly those faults under a seeded RNG, so a
//! test can replay one adversarial schedule forever.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::channel::Endpoint;
use crate::message::{Envelope, NodeId, WireSized};

/// Fault probabilities for a lossy link. All in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct LossyConfig {
    /// Probability a sent message is silently discarded.
    pub drop_prob: f64,
    /// Probability a sent message is delivered twice.
    pub dup_prob: f64,
    /// Probability a sent message is delayed past the next send (pairwise
    /// reordering).
    pub reorder_prob: f64,
    /// RNG seed; equal seeds give equal fault schedules.
    pub seed: u64,
}

impl LossyConfig {
    /// A perfectly behaved link (no faults).
    pub fn perfect(seed: u64) -> Self {
        Self {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            seed,
        }
    }

    /// A nasty link: 10% loss, 5% duplication, 10% reordering.
    pub fn nasty(seed: u64) -> Self {
        Self {
            drop_prob: 0.10,
            dup_prob: 0.05,
            reorder_prob: 0.10,
            seed,
        }
    }
}

/// An [`Endpoint`] whose *sends* are subjected to loss, duplication, and
/// reordering. Receives pass through unchanged.
#[derive(Debug)]
pub struct LossyEndpoint<M> {
    inner: Endpoint<M>,
    cfg: LossyConfig,
    rng: SmallRng,
    /// Messages held back by the reordering fault, flushed after the next
    /// successful send (or explicitly).
    delayed: Vec<(NodeId, M)>,
}

impl<M: Send + Clone + WireSized> LossyEndpoint<M> {
    /// Wraps `inner` with the fault schedule drawn from `cfg.seed`.
    pub fn new(inner: Endpoint<M>, cfg: LossyConfig) -> Self {
        let salt = inner_id_salt(&inner);
        Self {
            inner,
            rng: SmallRng::seed_from_u64(cfg.seed ^ salt),
            cfg,
            delayed: Vec::new(),
        }
    }

    /// The wrapped endpoint's address.
    pub fn id(&self) -> NodeId {
        self.inner.id()
    }

    /// Number of nodes on the underlying network.
    pub fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// Sends with fault injection. Returns `true` if the message was
    /// *accepted* (it may still have been dropped by the simulated link —
    /// that is the point).
    pub fn send(&mut self, dst: NodeId, body: M) -> bool {
        if self.rng.gen_bool(self.cfg.drop_prob) {
            self.inner.metrics().record_drop();
            // The dropped message still unblocks anything held for
            // reordering, as a real later datagram would.
            self.flush_delayed();
            return true;
        }
        if self.rng.gen_bool(self.cfg.reorder_prob) {
            self.delayed.push((dst, body));
            return true;
        }
        let dup = self.rng.gen_bool(self.cfg.dup_prob);
        let ok = if dup {
            self.inner.metrics().record_duplicate();
            let first = self.inner.send(dst, body.clone());
            self.inner.send(dst, body) || first
        } else {
            self.inner.send(dst, body)
        };
        self.flush_delayed();
        ok
    }

    /// Delivers any messages still held back by the reordering fault.
    /// Call when a flow goes quiet to avoid stranding the final datagram.
    pub fn flush_delayed(&mut self) {
        for (dst, body) in std::mem::take(&mut self.delayed) {
            self.inner.send(dst, body);
        }
    }

    /// Non-blocking receive (no receive-side faults).
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.inner.try_recv()
    }

    /// Access to the wrapped endpoint.
    pub fn inner(&self) -> &Endpoint<M> {
        &self.inner
    }
}

fn inner_id_salt<M>(ep: &Endpoint<M>) -> u64
where
    M: Send,
{
    // Distinct endpoints with the same user seed should see distinct fault
    // schedules, like distinct hosts on a real LAN.
    0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(ep.id().0) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelNet, SendCost};

    fn pair(cfg: LossyConfig) -> (LossyEndpoint<u64>, Endpoint<u64>) {
        let mut eps = ChannelNet::<u64>::new(2, SendCost::FREE).into_endpoints();
        let rx = eps.pop().unwrap();
        let tx = LossyEndpoint::new(eps.pop().unwrap(), cfg);
        (tx, rx)
    }

    fn drain(rx: &Endpoint<u64>) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(env) = rx.try_recv() {
            out.push(env.body);
        }
        out
    }

    #[test]
    fn perfect_link_delivers_everything_in_order() {
        let (mut tx, rx) = pair(LossyConfig::perfect(1));
        for i in 0..50 {
            tx.send(NodeId(1), i);
        }
        tx.flush_delayed();
        assert_eq!(drain(&rx), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn drops_lose_messages() {
        let cfg = LossyConfig {
            drop_prob: 0.5,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            seed: 7,
        };
        let (mut tx, rx) = pair(cfg);
        for i in 0..1000 {
            tx.send(NodeId(1), i);
        }
        tx.flush_delayed();
        let got = drain(&rx);
        assert!(got.len() < 1000, "some messages must be lost");
        assert!(got.len() > 200, "not everything should be lost");
        // Survivors stay in order on this single flow.
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicates_appear() {
        let cfg = LossyConfig {
            drop_prob: 0.0,
            dup_prob: 0.3,
            reorder_prob: 0.0,
            seed: 11,
        };
        let (mut tx, rx) = pair(cfg);
        for i in 0..500 {
            tx.send(NodeId(1), i);
        }
        tx.flush_delayed();
        let got = drain(&rx);
        assert!(got.len() > 500, "duplicates must inflate the count");
        // Every original message is still present.
        let mut uniq = got.clone();
        uniq.dedup();
        assert_eq!(uniq, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn reordering_swaps_neighbours() {
        let cfg = LossyConfig {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.3,
            seed: 13,
        };
        let (mut tx, rx) = pair(cfg);
        for i in 0..500 {
            tx.send(NodeId(1), i);
        }
        tx.flush_delayed();
        let got = drain(&rx);
        assert_eq!(got.len(), 500, "reordering must not lose messages");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<_>>());
        assert!(
            got.windows(2).any(|w| w[0] > w[1]),
            "at least one inversion expected at 30% reorder"
        );
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let run = || {
            let (mut tx, rx) = pair(LossyConfig::nasty(99));
            for i in 0..300 {
                tx.send(NodeId(1), i);
            }
            tx.flush_delayed();
            drain(&rx)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metrics_record_faults() {
        let cfg = LossyConfig {
            drop_prob: 0.5,
            dup_prob: 0.2,
            reorder_prob: 0.0,
            seed: 3,
        };
        let mut eps = ChannelNet::<u64>::new(2, SendCost::FREE).into_endpoints();
        let _rx = eps.pop().unwrap();
        let m = std::sync::Arc::clone(eps[0].metrics());
        let mut tx = LossyEndpoint::new(eps.pop().unwrap(), cfg);
        for i in 0..1000 {
            tx.send(NodeId(1), i);
        }
        let s = m.snapshot();
        assert!(s.messages_dropped > 300);
        assert!(s.messages_duplicated > 30);
    }
}
