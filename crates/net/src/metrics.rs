//! Network traffic counters.
//!
//! Table 2 of the paper reports "Messages sent" for pfold runs; these
//! counters are the source of that statistic throughout the reproduction.
//! They are shared (`Arc`-style handles via `&NetMetrics` held in transports)
//! and updated with relaxed atomics — counts only need to be exact once the
//! run has quiesced, which is when we read them.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative traffic statistics for one transport.
#[derive(Debug, Default)]
pub struct NetMetrics {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    messages_delivered: AtomicU64,
    messages_dropped: AtomicU64,
    messages_duplicated: AtomicU64,
    retransmissions: AtomicU64,
}

/// A point-in-time copy of [`NetMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetSnapshot {
    /// Messages put on the wire by senders, including every retransmitted
    /// copy.
    pub messages_sent: u64,
    /// Approximate bytes put on the wire by senders, including every
    /// retransmitted copy (Table 2's byte figures stay honest under loss).
    pub bytes_sent: u64,
    /// Application messages handed to a receiver — exactly once per
    /// message under the fabric's lossy policy (duplicates are filtered
    /// by the receive protocol before this counter).
    pub messages_delivered: u64,
    /// Messages the lossy layer discarded.
    pub messages_dropped: u64,
    /// Extra copies the lossy layer injected.
    pub messages_duplicated: u64,
    /// Messages re-sent by the reliability layer after a timeout.
    pub retransmissions: u64,
}

impl NetMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` bytes sent in one message.
    #[inline]
    pub fn record_send(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a delivery to a receiver.
    #[inline]
    pub fn record_delivery(&self) {
        self.messages_delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message dropped by the lossy layer.
    #[inline]
    pub fn record_drop(&self) {
        self.messages_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duplicate injected by the lossy layer.
    #[inline]
    pub fn record_duplicate(&self) {
        self.messages_duplicated.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a retransmission by the reliability layer.
    #[inline]
    pub fn record_retransmission(&self) {
        self.retransmissions.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_delivered: self.messages_delivered.load(Ordering::Relaxed),
            messages_dropped: self.messages_dropped.load(Ordering::Relaxed),
            messages_duplicated: self.messages_duplicated.load(Ordering::Relaxed),
            retransmissions: self.retransmissions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = NetMetrics::new();
        m.record_send(100);
        m.record_send(28);
        m.record_delivery();
        m.record_drop();
        m.record_duplicate();
        m.record_retransmission();
        let s = m.snapshot();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.bytes_sent, 128);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.messages_duplicated, 1);
        assert_eq!(s.retransmissions, 1);
    }

    #[test]
    fn snapshot_of_new_is_zero() {
        assert_eq!(NetMetrics::new().snapshot(), NetSnapshot::default());
    }
}
