//! Split-phase request/reply correlation.
//!
//! "Since the round-trip latency of the network is very high, almost all
//! communications are done with split-phase operations; that is, the runtime
//! system almost always works while waiting for a reply message." (§3)
//!
//! [`SplitPhase`] is the bookkeeping half of that pattern: a caller
//! registers a request (optionally with a continuation closure), embeds the
//! returned [`RequestId`] in its outgoing message, keeps scheduling work,
//! and later feeds the reply back in. The transport itself is orthogonal —
//! any of this crate's endpoints can carry the id.

use std::collections::HashMap;

/// Correlates a reply with the request that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

enum Pending<R> {
    /// Caller will poll for the value.
    Polled(Option<R>),
    /// Caller left a continuation to run on completion.
    Continuation(Box<dyn FnOnce(R) + Send>),
}

impl<R> std::fmt::Debug for Pending<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pending::Polled(Some(_)) => write!(f, "Polled(ready)"),
            Pending::Polled(None) => write!(f, "Polled(waiting)"),
            Pending::Continuation(_) => write!(f, "Continuation"),
        }
    }
}

/// Outstanding-request table for one client.
#[derive(Debug, Default)]
pub struct SplitPhase<R> {
    next: u64,
    pending: HashMap<RequestId, Pending<R>>,
}

impl<R> SplitPhase<R> {
    /// An empty table.
    pub fn new() -> Self {
        Self {
            next: 1,
            pending: HashMap::new(),
        }
    }

    /// Registers a request whose reply the caller will poll with
    /// [`SplitPhase::poll`].
    pub fn register(&mut self) -> RequestId {
        let id = self.fresh_id();
        self.pending.insert(id, Pending::Polled(None));
        id
    }

    /// Registers a request whose reply runs `cont` inside
    /// [`SplitPhase::complete`].
    pub fn register_with(&mut self, cont: impl FnOnce(R) + Send + 'static) -> RequestId {
        let id = self.fresh_id();
        self.pending
            .insert(id, Pending::Continuation(Box::new(cont)));
        id
    }

    /// Delivers the reply for `id`. Returns `false` for unknown or
    /// already-completed ids (duplicate replies are expected over datagram
    /// transports and must be harmless).
    pub fn complete(&mut self, id: RequestId, reply: R) -> bool {
        match self.pending.get_mut(&id) {
            Some(Pending::Polled(slot @ None)) => {
                *slot = Some(reply);
                true
            }
            Some(Pending::Polled(Some(_))) => false,
            Some(Pending::Continuation(_)) => {
                let Some(Pending::Continuation(cont)) = self.pending.remove(&id) else {
                    unreachable!("variant checked above");
                };
                cont(reply);
                true
            }
            None => false,
        }
    }

    /// Takes the reply for a polled request if it has arrived, removing the
    /// entry.
    pub fn poll(&mut self, id: RequestId) -> Option<R> {
        match self.pending.get_mut(&id) {
            Some(Pending::Polled(slot)) if slot.is_some() => {
                let value = slot.take();
                self.pending.remove(&id);
                value
            }
            _ => None,
        }
    }

    /// Abandons a request (e.g. the peer died); the reply, if it ever
    /// arrives, will be ignored.
    pub fn cancel(&mut self, id: RequestId) -> bool {
        self.pending.remove(&id).is_some()
    }

    /// Requests awaiting replies (including polled-but-uncollected ones).
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    fn fresh_id(&mut self) -> RequestId {
        let id = RequestId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn ids_are_unique() {
        let mut sp = SplitPhase::<u32>::new();
        let a = sp.register();
        let b = sp.register();
        assert_ne!(a, b);
    }

    #[test]
    fn poll_before_completion_is_none() {
        let mut sp = SplitPhase::<u32>::new();
        let id = sp.register();
        assert_eq!(sp.poll(id), None);
        assert!(sp.complete(id, 5));
        assert_eq!(sp.poll(id), Some(5));
        assert_eq!(sp.poll(id), None, "reply is consumed");
        assert_eq!(sp.outstanding(), 0);
    }

    #[test]
    fn continuation_runs_on_complete() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sp = SplitPhase::<u64>::new();
        let h = Arc::clone(&hits);
        let id = sp.register_with(move |v| {
            h.fetch_add(v, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert!(sp.complete(id, 17));
        assert_eq!(hits.load(Ordering::SeqCst), 17);
        assert_eq!(sp.outstanding(), 0);
    }

    #[test]
    fn duplicate_replies_are_harmless() {
        let hits = Arc::new(AtomicU64::new(0));
        let mut sp = SplitPhase::<u64>::new();
        let h = Arc::clone(&hits);
        let id = sp.register_with(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(sp.complete(id, 1));
        assert!(!sp.complete(id, 1), "duplicate must be rejected");
        assert_eq!(hits.load(Ordering::SeqCst), 1);

        let id2 = sp.register();
        assert!(sp.complete(id2, 7));
        assert!(!sp.complete(id2, 8), "second reply ignored");
        assert_eq!(sp.poll(id2), Some(7));
    }

    #[test]
    fn unknown_id_rejected() {
        let mut sp = SplitPhase::<u32>::new();
        assert!(!sp.complete(RequestId(999), 1));
    }

    #[test]
    fn cancel_discards_future_reply() {
        let mut sp = SplitPhase::<u32>::new();
        let id = sp.register();
        assert!(sp.cancel(id));
        assert!(!sp.cancel(id));
        assert!(!sp.complete(id, 3));
        assert_eq!(sp.poll(id), None);
    }

    #[test]
    fn outstanding_counts() {
        let mut sp = SplitPhase::<u32>::new();
        let a = sp.register();
        let _b = sp.register();
        assert_eq!(sp.outstanding(), 2);
        sp.complete(a, 0);
        // Completed-but-unpolled still occupies the table.
        assert_eq!(sp.outstanding(), 2);
        sp.poll(a);
        assert_eq!(sp.outstanding(), 1);
    }
}
