//! The unified message fabric.
//!
//! Every inter-node message path in the reproduction — kernel steal
//! requests and non-local synchronisation sends, JobQ/Clearinghouse RPC,
//! fault-tolerance heartbeats and ledger traffic — runs over one
//! [`Fabric`]: a fully-connected network of dense-id nodes with a
//! per-message cost model, a pluggable [`LinkPolicy`], and per-node plus
//! per-link traffic counters. Table 2's "messages sent" row is read from
//! these counters and nowhere else.
//!
//! Two policies cover the paper's two worlds:
//!
//! * [`LinkPolicy::Reliable`] — in-process channel delivery, reliable and
//!   per-sender ordered. The protocol machinery is bypassed entirely, so
//!   the fast path is a metrics bump plus a queue push.
//! * [`LinkPolicy::Lossy`] — raw-UDP semantics: sends are dropped,
//!   duplicated, and reordered under a seeded RNG ([`LossyConfig`]), and an
//!   ack/retransmission/deduplication protocol ([`ReliableConfig`])
//!   recovers exactly-once delivery, exactly as the Phish runtime layered
//!   its protocol over datagrams (§3).
//!
//! The lossy policy works for *any* `Send` payload — including the boxed
//! `FnOnce` closures that carry migrated tasks, which are not `Clone`. A
//! datagram "lost on the wire" is simulated by retaining the owned body in
//! the sender's unacked table instead of enqueueing it (observably
//! identical to in-flight loss), so retransmission re-sends the original
//! body rather than a copy. Duplicate delivery is exercised with payload-
//! free [`Payload::Probe`] frames that replay a sequence number at the
//! receiver's deduplication window.
//!
//! A third, single-owner instantiation, [`VirtualFabric`], carries the
//! discrete-event simulator's traffic on a virtual clock: every message
//! takes a caller-supplied latency and arrives exactly on time, in
//! deterministic order.
//!
//! Inbound queues live in shared state and receiving is addressed by
//! *node*, not by endpoint: [`FabricHandle::try_recv_at`] lets any thread
//! drain any node's queue. The threaded engine's retirement protocol
//! depends on this — a retiring worker's mailbox is adopted by a survivor,
//! which simply takes over polling duty for that node id.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::queue::SegQueue;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::message::{Envelope, NodeId, WireSized};
use crate::metrics::{NetMetrics, NetSnapshot};
use crate::time::{Nanos, MICROSECOND, MILLISECOND};

/// Per-message cost model applied on the sending side.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendCost {
    /// Software overhead busy-spun on every send, in nanoseconds.
    ///
    /// Zero (the default) sends at channel speed. A few microseconds
    /// emulates a tuned 1990s LAN stack; tens of microseconds emulates the
    /// untuned UDP/IP path the paper used.
    pub overhead: Nanos,
}

impl SendCost {
    /// No injected overhead (supercomputer-interconnect-like).
    pub const FREE: SendCost = SendCost { overhead: 0 };

    /// A cost with the given software overhead per send.
    pub fn with_overhead(overhead: Nanos) -> Self {
        Self { overhead }
    }

    /// Busy-spins for the configured overhead; called once per send.
    #[inline]
    pub fn pay(&self) {
        if self.overhead > 0 {
            let start = Instant::now();
            let limit = Duration::from_nanos(self.overhead);
            while start.elapsed() < limit {
                std::hint::spin_loop();
            }
        }
    }
}

/// Fault probabilities for a lossy link. All in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct LossyConfig {
    /// Probability a sent message is silently discarded.
    pub drop_prob: f64,
    /// Probability a sent message is delivered twice.
    pub dup_prob: f64,
    /// Probability a sent message is delayed past the next send (pairwise
    /// reordering).
    pub reorder_prob: f64,
    /// RNG seed; equal seeds give equal fault schedules.
    pub seed: u64,
}

impl LossyConfig {
    /// A perfectly behaved link (no faults).
    pub fn perfect(seed: u64) -> Self {
        Self {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            seed,
        }
    }

    /// A nasty link: 10% loss, 5% duplication, 10% reordering.
    pub fn nasty(seed: u64) -> Self {
        Self {
            drop_prob: 0.10,
            dup_prob: 0.05,
            reorder_prob: 0.10,
            seed,
        }
    }

    /// A pure-loss link with the given drop probability.
    pub fn dropping(drop_prob: f64, seed: u64) -> Self {
        Self {
            drop_prob,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            seed,
        }
    }
}

/// Tuning for the recovery protocol run under [`LinkPolicy::Lossy`].
#[derive(Debug, Clone, Copy)]
pub struct ReliableConfig {
    /// Retransmission timeout: a datagram unacknowledged for this long is
    /// re-sent.
    pub rto: Nanos,
    /// Give up (and surface the peer as dead) after this many
    /// retransmissions of a single datagram.
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self {
            rto: 50 * MILLISECOND,
            max_retries: 20,
        }
    }
}

impl ReliableConfig {
    /// An aggressive profile for in-process engines: a retransmission
    /// timeout short enough that a busy-polling scheduler loop recovers a
    /// lost steal reply in microseconds, and effectively unlimited retries
    /// (loss is injected, peers don't die unless closed).
    pub fn aggressive() -> Self {
        Self {
            rto: 200 * MICROSECOND,
            max_retries: u32::MAX,
        }
    }

    /// A profile tuned for real sockets on loopback or a LAN: a 5ms
    /// retransmission timeout (two orders of magnitude above a loopback
    /// RTT, far below human-visible latency) and enough retries that a
    /// peer is only declared dead after about a second of silence.
    pub fn lan() -> Self {
        Self {
            rto: 5 * MILLISECOND,
            max_retries: 200,
        }
    }

    /// Overrides the retransmission timeout.
    pub fn with_rto(mut self, rto: Nanos) -> Self {
        self.rto = rto;
        self
    }

    /// Overrides the retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }
}

/// How a fabric's links behave.
#[derive(Debug, Clone, Copy)]
pub enum LinkPolicy {
    /// Reliable, per-sender-ordered delivery; no protocol overhead.
    Reliable,
    /// Datagram semantics with seeded fault injection, recovered to
    /// exactly-once delivery by ack/retransmission/deduplication.
    Lossy {
        /// The injected fault schedule.
        faults: LossyConfig,
        /// The recovery protocol's tuning.
        recovery: ReliableConfig,
    },
}

/// Construction parameters for a [`Fabric`].
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Per-send software overhead.
    pub cost: SendCost,
    /// Link behaviour.
    pub policy: LinkPolicy,
    /// When true (the default), dropping a [`FabricEndpoint`] closes its
    /// node — subsequent sends to it fail, like datagrams to a crashed
    /// workstation. The threaded engine disables this because a retired
    /// worker's mailbox is adopted and must keep receiving.
    pub close_on_drop: bool,
}

impl FabricConfig {
    /// Reliable links, free sends.
    pub fn reliable() -> Self {
        Self {
            cost: SendCost::FREE,
            policy: LinkPolicy::Reliable,
            close_on_drop: true,
        }
    }

    /// Lossy links under `faults`, recovered with
    /// [`ReliableConfig::aggressive`].
    pub fn lossy(faults: LossyConfig) -> Self {
        Self {
            cost: SendCost::FREE,
            policy: LinkPolicy::Lossy {
                faults,
                recovery: ReliableConfig::aggressive(),
            },
            close_on_drop: true,
        }
    }

    /// Replaces the per-send cost model.
    pub fn with_cost(mut self, cost: SendCost) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the recovery tuning (no-op under [`LinkPolicy::Reliable`]).
    pub fn with_recovery(mut self, recovery: ReliableConfig) -> Self {
        if let LinkPolicy::Lossy { recovery: r, .. } = &mut self.policy {
            *r = recovery;
        }
        self
    }

    /// Keeps nodes open when their endpoint is dropped (mailbox-adoption
    /// semantics).
    pub fn keep_open_on_drop(mut self) -> Self {
        self.close_on_drop = false;
        self
    }

    fn faults(&self) -> Option<(LossyConfig, ReliableConfig)> {
        match self.policy {
            LinkPolicy::Reliable => None,
            LinkPolicy::Lossy { faults, recovery } => Some((faults, recovery)),
        }
    }
}

/// Wire payload: application data or a payload-free probe.
///
/// Probes replay a sequence number without a body; they are how the fault
/// injector exercises duplicate delivery for payloads that cannot be
/// cloned. A probe for a sequence the receiver has *seen* re-elicits the
/// (possibly lost) ack; a probe for an unseen sequence is discarded
/// unacknowledged — acking it would poison the dedup window and turn the
/// real datagram into a "duplicate".
#[derive(Debug)]
enum Payload<M> {
    Data(M),
    Probe,
}

/// Receiver-side exactly-once window for one `(src, dst)` flow.
///
/// Shared with the real-socket transport ([`crate::udp`]), which runs the
/// same deduplication protocol over actual datagrams.
#[derive(Debug)]
pub(crate) struct RecvFlow {
    /// All seq numbers below this have been delivered.
    cursor: u64,
    /// Delivered seqs at or above `cursor` (out-of-order arrivals).
    seen: HashSet<u64>,
}

impl Default for RecvFlow {
    fn default() -> Self {
        // Sequence numbers start at 1, so everything below 1 is "delivered".
        Self {
            cursor: 1,
            seen: HashSet::new(),
        }
    }
}

impl RecvFlow {
    /// Returns true when `seq` is fresh, recording it as delivered.
    pub(crate) fn accept(&mut self, seq: u64) -> bool {
        if self.contains(seq) {
            return false;
        }
        self.seen.insert(seq);
        while self.seen.remove(&self.cursor) {
            self.cursor += 1;
        }
        true
    }

    /// True when `seq` has already been delivered.
    pub(crate) fn contains(&self, seq: u64) -> bool {
        seq < self.cursor || self.seen.contains(&seq)
    }
}

/// Shared per-node state: the inbound queue (drainable from any thread),
/// the ack return path, the receive-side dedup windows, and this node's
/// traffic counters.
struct NodeState<M> {
    inbound_tx: Sender<Envelope<Payload<M>>>,
    inbound_rx: Receiver<Envelope<Payload<M>>>,
    /// Acks addressed to this node's sender: `(acker, seq)`. Acks ride an
    /// in-process control path — losing them is already modelled by the
    /// send-side drop roll, which forces a retransmission the same way a
    /// lost ack would.
    acks: SegQueue<(NodeId, u64)>,
    /// Dedup windows for traffic *arriving at* this node, keyed by source.
    recv_flows: Mutex<HashMap<u32, RecvFlow>>,
    metrics: NetMetrics,
    closed: AtomicBool,
    /// Bumped each time an endpoint is (re-)minted for this node, so a
    /// reclaimed endpoint draws a fresh fault schedule.
    incarnation: AtomicU64,
}

struct FabricShared<M> {
    cfg: FabricConfig,
    nodes: Vec<NodeState<M>>,
    /// Per-link data-message counters, src-major: `links[src * n + dst]`.
    link_msgs: Vec<AtomicU64>,
    /// Per-link sequence allocators, shared so a re-minted endpoint
    /// continues its predecessor's flows instead of colliding with the
    /// receiver's dedup window.
    next_seq: Vec<AtomicU64>,
}

impl<M: Send> FabricShared<M> {
    #[inline]
    fn n(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn link(&self, src: usize, dst: usize) -> usize {
        src * self.n() + dst
    }

    /// Runs the receive protocol for `node`'s queue: acks and dedups under
    /// the lossy policy, passes reliable traffic straight through. Returns
    /// the next fresh application message, if any is queued.
    fn try_recv_at(&self, node: usize) -> Option<Envelope<M>> {
        loop {
            let env = self.nodes[node].inbound_rx.try_recv().ok()?;
            if let Some(out) = self.process(node, env) {
                return Some(out);
            }
        }
    }

    /// Blocking variant of [`FabricShared::try_recv_at`].
    fn recv_timeout_at(&self, node: usize, timeout: Duration) -> Option<Envelope<M>> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let env = self.nodes[node].inbound_rx.recv_timeout(remaining).ok()?;
            if let Some(out) = self.process(node, env) {
                return Some(out);
            }
        }
    }

    /// Protocol step for one inbound frame. `None` when the frame was
    /// protocol-internal (duplicate data, probe).
    fn process(&self, node: usize, env: Envelope<Payload<M>>) -> Option<Envelope<M>> {
        let Envelope {
            src,
            dst,
            seq,
            body,
        } = env;
        match body {
            Payload::Data(m) if seq == 0 => {
                // Reliable-policy traffic: no protocol.
                self.nodes[node].metrics.record_delivery();
                Some(Envelope {
                    src,
                    dst,
                    seq,
                    body: m,
                })
            }
            Payload::Data(m) => {
                let fresh = {
                    let mut flows = self.nodes[node].recv_flows.lock().unwrap();
                    flows.entry(src.0).or_default().accept(seq)
                };
                // Always ack, even duplicates — the original ack may have
                // been lost (modelled by the sender's drop roll).
                self.nodes[src.index()].acks.push((dst, seq));
                if fresh {
                    self.nodes[node].metrics.record_delivery();
                    Some(Envelope {
                        src,
                        dst,
                        seq,
                        body: m,
                    })
                } else {
                    None
                }
            }
            Payload::Probe => {
                let seen = {
                    let flows = self.nodes[node].recv_flows.lock().unwrap();
                    flows.get(&src.0).is_some_and(|f| f.contains(seq))
                };
                if seen {
                    // A duplicate of something already delivered: re-ack.
                    self.nodes[src.index()].acks.push((dst, seq));
                }
                // An unseen probe is dropped *without* acking: the real
                // datagram is still on its way.
                None
            }
        }
    }

    fn total(&self) -> NetSnapshot {
        let mut sum = NetSnapshot::default();
        for node in &self.nodes {
            let s = node.metrics.snapshot();
            sum.messages_sent += s.messages_sent;
            sum.bytes_sent += s.bytes_sent;
            sum.messages_delivered += s.messages_delivered;
            sum.messages_dropped += s.messages_dropped;
            sum.messages_duplicated += s.messages_duplicated;
            sum.retransmissions += s.retransmissions;
        }
        sum
    }
}

/// A fully-connected network of `n` nodes under one [`FabricConfig`].
///
/// Build with [`Fabric::new`], split into per-node [`FabricEndpoint`]s
/// with [`Fabric::into_endpoints`], and keep a [`FabricHandle`] for
/// observation, cross-node receives, and slot reclamation.
pub struct Fabric<M> {
    shared: Arc<FabricShared<M>>,
}

impl<M: Send> Fabric<M> {
    /// Builds a fabric of `n` nodes.
    pub fn new(n: usize, cfg: FabricConfig) -> Self {
        let nodes = (0..n)
            .map(|_| {
                let (inbound_tx, inbound_rx) = unbounded();
                NodeState {
                    inbound_tx,
                    inbound_rx,
                    acks: SegQueue::new(),
                    recv_flows: Mutex::new(HashMap::new()),
                    metrics: NetMetrics::new(),
                    closed: AtomicBool::new(false),
                    incarnation: AtomicU64::new(0),
                }
            })
            .collect();
        let link_msgs = (0..n * n).map(|_| AtomicU64::new(0)).collect();
        let next_seq = (0..n * n).map(|_| AtomicU64::new(0)).collect();
        Self {
            shared: Arc::new(FabricShared {
                cfg,
                nodes,
                link_msgs,
                next_seq,
            }),
        }
    }

    /// An observation/receive handle onto the fabric.
    pub fn handle(&self) -> FabricHandle<M> {
        FabricHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Consumes the fabric, yielding one endpoint per node (index = id).
    pub fn into_endpoints(self) -> Vec<FabricEndpoint<M>> {
        let handle = self.handle();
        (0..self.shared.n()).map(|i| handle.endpoint(i)).collect()
    }
}

/// A clonable handle for observing a [`Fabric`] and receiving on behalf of
/// any node.
pub struct FabricHandle<M> {
    shared: Arc<FabricShared<M>>,
}

impl<M> Clone for FabricHandle<M> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M: Send> FabricHandle<M> {
    /// Number of nodes on the fabric.
    pub fn node_count(&self) -> usize {
        self.shared.n()
    }

    /// Receives the next fresh message addressed to `node`, from any
    /// thread. This is how an adopted mailbox keeps draining after its
    /// original owner retired.
    pub fn try_recv_at(&self, node: usize) -> Option<Envelope<M>> {
        self.shared.try_recv_at(node)
    }

    /// Messages queued at `node` (including undrained protocol frames).
    pub fn pending_at(&self, node: usize) -> usize {
        self.shared.nodes[node].inbound_rx.len()
    }

    /// Marks `node` closed: subsequent sends to it report failure, like
    /// datagrams to a crashed workstation.
    pub fn close(&self, node: usize) {
        self.shared.nodes[node]
            .closed
            .store(true, Ordering::Release);
    }

    /// True when `node` has been closed (explicitly or by endpoint drop).
    pub fn is_closed(&self, node: usize) -> bool {
        self.shared.nodes[node].closed.load(Ordering::Acquire)
    }

    /// (Re-)mints the sending endpoint for `node`, reopening it.
    ///
    /// At most one endpoint per node should be live at a time: endpoints
    /// share the node's inbound queue, so two would split its traffic.
    /// Reclaiming the slot of a departed holder is exactly the intended
    /// use (see the Clearinghouse's client-slot model).
    pub fn endpoint(&self, node: usize) -> FabricEndpoint<M> {
        let state = &self.shared.nodes[node];
        state.closed.store(false, Ordering::Release);
        let incarnation = state.incarnation.fetch_add(1, Ordering::AcqRel);
        let tx = self.shared.cfg.faults().map(|(faults, _)| {
            // Distinct nodes — and distinct incarnations of one node —
            // draw distinct fault schedules from one user seed, like
            // distinct hosts on a real LAN.
            let salt = 0x9E37_79B9_7F4A_7C15u64
                .wrapping_mul(node as u64 + 1)
                .wrapping_add(incarnation.wrapping_mul(0xA24B_AED4_963E_E407));
            TxLossy {
                rng: SmallRng::seed_from_u64(faults.seed ^ salt),
                unacked: HashMap::new(),
                holdback: Vec::new(),
                dead_peers: Vec::new(),
            }
        });
        FabricEndpoint {
            id: NodeId(node as u32),
            shared: Arc::clone(&self.shared),
            epoch: Instant::now(),
            tx,
        }
    }

    /// Traffic counters of one node (its sends, deliveries to it).
    pub fn metrics_of(&self, node: usize) -> NetSnapshot {
        self.shared.nodes[node].metrics.snapshot()
    }

    /// Messages sent by `node`, including retransmissions.
    pub fn messages_sent_by(&self, node: usize) -> u64 {
        self.metrics_of(node).messages_sent
    }

    /// Whole-fabric traffic counters (sum over nodes).
    pub fn total(&self) -> NetSnapshot {
        self.shared.total()
    }

    /// Data messages carried by the `src → dst` link, including
    /// retransmissions.
    pub fn link_messages(&self, src: usize, dst: usize) -> u64 {
        self.shared.link_msgs[self.shared.link(src, dst)].load(Ordering::Relaxed)
    }
}

/// A retained unacked datagram. `body: Some` means the send (or a
/// retransmission) was "lost on the wire" and the original body is held
/// for re-sending; `body: None` means a copy is physically in the
/// destination queue and only the ack is outstanding.
struct Retained<M> {
    body: Option<M>,
    bytes: usize,
    last_tx: Nanos,
    retries: u32,
}

/// Send-side protocol state, present only under [`LinkPolicy::Lossy`].
struct TxLossy<M> {
    rng: SmallRng,
    unacked: HashMap<(u32, u64), Retained<M>>,
    /// Messages held back by the reordering fault, transmitted after the
    /// next send or pump — pairwise reordering, as in a real LAN where a
    /// later datagram overtakes an earlier one.
    holdback: Vec<(NodeId, u64, M, usize)>,
    dead_peers: Vec<NodeId>,
}

/// One node's attachment to a [`Fabric`].
///
/// Sending never blocks; receiving is by non-blocking poll (matching the
/// split-phase style of the Phish runtime) plus a blocking variant for
/// daemon-style loops. Under the lossy policy, callers must
/// [`FabricEndpoint::pump_now`] periodically to collect acks and drive
/// retransmissions.
pub struct FabricEndpoint<M> {
    id: NodeId,
    shared: Arc<FabricShared<M>>,
    epoch: Instant,
    tx: Option<TxLossy<M>>,
}

impl<M: Send> FabricEndpoint<M> {
    /// This endpoint's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes on the fabric.
    pub fn node_count(&self) -> usize {
        self.shared.n()
    }

    /// An observation/receive handle onto the fabric.
    pub fn handle(&self) -> FabricHandle<M> {
        FabricHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// This node's traffic counters.
    pub fn metrics(&self) -> NetSnapshot {
        self.shared.nodes[self.id.index()].metrics.snapshot()
    }

    /// This endpoint's monotonic clock reading (nanoseconds since the
    /// endpoint was minted) — the timebase used by [`FabricEndpoint::send`]
    /// and [`FabricEndpoint::pump_now`].
    pub fn now(&self) -> Nanos {
        self.epoch.elapsed().as_nanos() as Nanos
    }

    /// Sends `body` to `dst`, paying the configured software overhead.
    ///
    /// Returns `false` if the destination node is closed (a "crashed
    /// workstation"): datagrams to dead hosts vanish silently, and callers
    /// that care layer recovery on top.
    pub fn send(&mut self, dst: NodeId, body: M) -> bool
    where
        M: WireSized,
    {
        let now = self.now();
        self.send_at(dst, body, now)
    }

    /// [`FabricEndpoint::send`] with an explicit clock reading, for
    /// deterministic tests driving virtual time. Callers must use either
    /// the real clock or a manual one consistently, never both.
    pub fn send_at(&mut self, dst: NodeId, body: M, now: Nanos) -> bool
    where
        M: WireSized,
    {
        let me = self.id;
        let shared = Arc::clone(&self.shared);
        shared.cfg.cost.pay();
        let bytes = body.wire_bytes();
        let node = &shared.nodes[me.index()];
        node.metrics.record_send(bytes);
        shared.link_msgs[shared.link(me.index(), dst.index())].fetch_add(1, Ordering::Relaxed);
        let open = !shared.nodes[dst.index()].closed.load(Ordering::Acquire);
        let Some(tx) = self.tx.as_mut() else {
            // Reliable policy: straight to the destination queue.
            if open {
                let _ = shared.nodes[dst.index()].inbound_tx.send(Envelope {
                    src: me,
                    dst,
                    seq: 0,
                    body: Payload::Data(body),
                });
            }
            return open;
        };
        let seq = shared.next_seq[shared.link(me.index(), dst.index())]
            .fetch_add(1, Ordering::Relaxed)
            + 1;
        let (faults, _) = shared.cfg.faults().expect("lossy tx implies lossy policy");
        if !open || tx.rng.gen_bool(faults.drop_prob) {
            // Lost on the wire (or addressed to a dead host): retain the
            // body for retransmission. The drop still unblocks anything
            // held for reordering, as a real later datagram would.
            node.metrics.record_drop();
            tx.unacked.insert(
                (dst.0, seq),
                Retained {
                    body: Some(body),
                    bytes,
                    last_tx: now,
                    retries: 0,
                },
            );
            Self::flush_holdback(&shared, me, tx, now);
            return true;
        }
        if tx.rng.gen_bool(faults.reorder_prob) {
            tx.holdback.push((dst, seq, body, bytes));
            return true;
        }
        let dup = tx.rng.gen_bool(faults.dup_prob);
        let _ = shared.nodes[dst.index()].inbound_tx.send(Envelope {
            src: me,
            dst,
            seq,
            body: Payload::Data(body),
        });
        if dup {
            node.metrics.record_duplicate();
            let _ = shared.nodes[dst.index()].inbound_tx.send(Envelope {
                src: me,
                dst,
                seq,
                body: Payload::Probe,
            });
        }
        tx.unacked.insert(
            (dst.0, seq),
            Retained {
                body: None,
                bytes,
                last_tx: now,
                retries: 0,
            },
        );
        Self::flush_holdback(&shared, me, tx, now);
        true
    }

    fn flush_holdback(shared: &FabricShared<M>, me: NodeId, tx: &mut TxLossy<M>, now: Nanos) {
        for (dst, seq, body, bytes) in std::mem::take(&mut tx.holdback) {
            if !shared.nodes[dst.index()].closed.load(Ordering::Acquire) {
                let _ = shared.nodes[dst.index()].inbound_tx.send(Envelope {
                    src: me,
                    dst,
                    seq,
                    body: Payload::Data(body),
                });
                tx.unacked.insert(
                    (dst.0, seq),
                    Retained {
                        body: None,
                        bytes,
                        last_tx: now,
                        retries: 0,
                    },
                );
            } else {
                tx.unacked.insert(
                    (dst.0, seq),
                    Retained {
                        body: Some(body),
                        bytes,
                        last_tx: now,
                        retries: 0,
                    },
                );
            }
        }
    }

    /// Non-blocking receive of the next fresh message for this node.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.shared.try_recv_at(self.id.index())
    }

    /// Blocking receive with a timeout; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        self.shared.recv_timeout_at(self.id.index(), timeout)
    }

    /// Messages queued for this node (including undrained protocol frames).
    pub fn pending(&self) -> usize {
        self.shared.nodes[self.id.index()].inbound_rx.len()
    }

    /// Collects acks and retransmits anything unacknowledged past the
    /// retransmission timeout, using the endpoint's own clock. A no-op
    /// under [`LinkPolicy::Reliable`].
    pub fn pump_now(&mut self) {
        if self.tx.is_some() {
            let now = self.now();
            self.pump_at(now);
        }
    }

    /// [`FabricEndpoint::pump_now`] with an explicit clock reading.
    pub fn pump_at(&mut self, now: Nanos) {
        let me = self.id;
        let shared = Arc::clone(&self.shared);
        let Some(tx) = self.tx.as_mut() else {
            return;
        };
        let (faults, recovery) = shared.cfg.faults().expect("lossy tx implies lossy policy");
        Self::flush_holdback(&shared, me, tx, now);
        // Acks first: they may clear entries that would otherwise expire.
        // The acker is the destination of the original datagram, so
        // `(acker, seq)` names the unacked entry exactly.
        while let Some((acker, seq)) = shared.nodes[me.index()].acks.pop() {
            tx.unacked.remove(&(acker.0, seq));
        }
        // Retransmissions.
        let mut expired: Vec<(u32, u64)> = Vec::new();
        for (&(dst, seq), out) in tx.unacked.iter_mut() {
            if now.saturating_sub(out.last_tx) < recovery.rto {
                continue;
            }
            if out.retries >= recovery.max_retries {
                expired.push((dst, seq));
                continue;
            }
            out.retries += 1;
            out.last_tx = now;
            let open = !shared.nodes[dst as usize].closed.load(Ordering::Acquire);
            // Every retransmitted copy — a full data body or a header-only
            // probe — is a datagram put on the wire, whether or not the
            // fault injector then loses it. Table 2's message and byte
            // figures must include them all, so they are counted here,
            // before the drop roll.
            let wire_bytes = if out.body.is_some() {
                out.bytes
            } else {
                crate::message::HEADER_BYTES
            };
            shared.nodes[me.index()].metrics.record_send(wire_bytes);
            shared.nodes[me.index()].metrics.record_retransmission();
            shared.link_msgs[shared.link(me.index(), dst as usize)].fetch_add(1, Ordering::Relaxed);
            if out.body.is_none() {
                // The datagram is physically queued at the receiver; only
                // the ack is outstanding. Re-probe so a receiver that saw
                // it re-acks; an unseen probe is harmless.
                if open {
                    let _ = shared.nodes[dst as usize].inbound_tx.send(Envelope {
                        src: me,
                        dst: NodeId(dst),
                        seq,
                        body: Payload::Probe,
                    });
                }
                continue;
            }
            if !open || tx.rng.gen_bool(faults.drop_prob) {
                // The retransmission was lost too; keep holding the body.
                shared.nodes[me.index()].metrics.record_drop();
                continue;
            }
            let body = out.body.take().expect("checked is_some");
            let _ = shared.nodes[dst as usize].inbound_tx.send(Envelope {
                src: me,
                dst: NodeId(dst),
                seq,
                body: Payload::Data(body),
            });
        }
        for key in expired {
            tx.unacked.remove(&key);
            let dead = NodeId(key.0);
            if !tx.dead_peers.contains(&dead) {
                tx.dead_peers.push(dead);
            }
        }
    }

    /// Datagrams sent but not yet acknowledged (zero under the reliable
    /// policy).
    pub fn in_flight(&self) -> usize {
        self.tx
            .as_ref()
            .map_or(0, |tx| tx.unacked.len() + tx.holdback.len())
    }

    /// Peers declared dead after exhausting retries. Cleared on read.
    pub fn take_dead_peers(&mut self) -> Vec<NodeId> {
        self.tx
            .as_mut()
            .map(|tx| std::mem::take(&mut tx.dead_peers))
            .unwrap_or_default()
    }

    /// Pumps until every send has been acknowledged or `timeout` elapses.
    /// Returns `true` on quiescence. Requires the receivers to keep
    /// draining their queues.
    pub fn quiesce(&mut self, timeout: Duration) -> bool {
        let start = Instant::now();
        loop {
            self.pump_now();
            if self.in_flight() == 0 {
                return true;
            }
            if start.elapsed() >= timeout {
                return false;
            }
            std::thread::yield_now();
        }
    }

    /// Closes this node: subsequent sends to it report failure.
    pub fn close(&self) {
        self.shared.nodes[self.id.index()]
            .closed
            .store(true, Ordering::Release);
    }
}

impl<M> Drop for FabricEndpoint<M> {
    fn drop(&mut self) {
        if self.shared.cfg.close_on_drop {
            self.shared.nodes[self.id.index()]
                .closed
                .store(true, Ordering::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// Virtual-time instantiation.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct VirtualInFlight<M> {
    deliver_at: Nanos,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for VirtualInFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl<M> Eq for VirtualInFlight<M> {}
impl<M> PartialOrd for VirtualInFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for VirtualInFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// The fabric's virtual-time instantiation: a single-owner network of `n`
/// nodes where every message takes a caller-supplied latency and arrives
/// exactly on time, in deterministic order (ties break by send order).
///
/// This is the transport under the discrete-event microsimulator: the
/// latencies come from the simulator's [`LinkModel`]s, and the per-node
/// send counters feed the same per-worker "messages sent" statistic the
/// threaded engines read from their [`Fabric`] metrics.
///
/// [`LinkModel`]: ../../phish_sim/netmodel/struct.LinkModel.html
#[derive(Debug)]
pub struct VirtualFabric<M> {
    nodes: usize,
    in_flight: BinaryHeap<Reverse<VirtualInFlight<M>>>,
    next_seq: u64,
    metrics: NetMetrics,
    sent_by: Vec<u64>,
}

impl<M> VirtualFabric<M> {
    /// An empty network of `n` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            in_flight: BinaryHeap::new(),
            next_seq: 0,
            metrics: NetMetrics::new(),
            sent_by: vec![0; nodes],
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Messages sent by `node`.
    pub fn messages_sent_by(&self, node: usize) -> u64 {
        self.sent_by[node]
    }

    /// Sends `body` from `src` to `dst` with an explicit wire size, to be
    /// delivered at `now + latency`.
    pub fn send_sized(
        &mut self,
        now: Nanos,
        latency: Nanos,
        src: NodeId,
        dst: NodeId,
        body: M,
        bytes: usize,
    ) {
        assert!(src.index() < self.nodes && dst.index() < self.nodes);
        self.metrics.record_send(bytes);
        self.sent_by[src.index()] += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight.push(Reverse(VirtualInFlight {
            deliver_at: now + latency,
            seq,
            env: Envelope {
                src,
                dst,
                seq: 0,
                body,
            },
        }));
    }

    /// Sends `body` from `src` to `dst`, to be delivered at
    /// `now + latency`.
    pub fn send(&mut self, now: Nanos, latency: Nanos, src: NodeId, dst: NodeId, body: M)
    where
        M: WireSized,
    {
        let bytes = body.wire_bytes();
        self.send_sized(now, latency, src, dst, body, bytes);
    }

    /// Delivers every message due at or before `now`, in delivery order.
    pub fn deliver_due(&mut self, now: Nanos) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > now {
                break;
            }
            let Reverse(m) = self.in_flight.pop().expect("peeked");
            self.metrics.record_delivery();
            out.push(m.env);
        }
        out
    }

    /// The time the next message becomes due, if any.
    pub fn next_due(&self) -> Option<Nanos> {
        self.in_flight.peek().map(|Reverse(m)| m.deliver_at)
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize, cfg: FabricConfig) -> (Vec<FabricEndpoint<u64>>, FabricHandle<u64>) {
        let fabric = Fabric::<u64>::new(n, cfg);
        let handle = fabric.handle();
        (fabric.into_endpoints(), handle)
    }

    // -- reliable policy ---------------------------------------------------

    #[test]
    fn point_to_point_delivery() {
        let (mut eps, _) = net(3, FabricConfig::reliable());
        assert!(eps[0].send(NodeId(2), 42));
        let env = eps[2].try_recv().expect("message should arrive");
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.dst, NodeId(2));
        assert_eq!(env.body, 42);
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn self_send_works() {
        let (mut eps, _) = net(1, FabricConfig::reliable());
        assert!(eps[0].send(NodeId(0), 7));
        assert_eq!(eps[0].try_recv().unwrap().body, 7);
    }

    #[test]
    fn per_sender_ordering_is_preserved() {
        let (mut eps, _) = net(2, FabricConfig::reliable());
        for i in 0..100 {
            eps[0].send(NodeId(1), i);
        }
        for i in 0..100 {
            assert_eq!(eps[1].try_recv().unwrap().body, i);
        }
    }

    #[test]
    fn metrics_count_sends_and_deliveries_per_node() {
        let (mut eps, handle) = net(2, FabricConfig::reliable());
        eps[0].send(NodeId(1), 1);
        eps[0].send(NodeId(1), 2);
        eps[1].try_recv();
        assert_eq!(handle.metrics_of(0).messages_sent, 2);
        assert_eq!(handle.metrics_of(1).messages_sent, 0);
        assert_eq!(handle.metrics_of(1).messages_delivered, 1);
        assert_eq!(handle.total().messages_sent, 2);
        assert_eq!(handle.link_messages(0, 1), 2);
        assert_eq!(handle.link_messages(1, 0), 0);
    }

    #[test]
    fn send_to_dropped_endpoint_reports_failure() {
        let (mut eps, _) = net(2, FabricConfig::reliable());
        let dead = eps.remove(1);
        drop(dead);
        assert!(!eps[0].send(NodeId(1), 5));
    }

    #[test]
    fn keep_open_on_drop_keeps_receiving() {
        let (mut eps, handle) = net(2, FabricConfig::reliable().keep_open_on_drop());
        let retired = eps.remove(1);
        drop(retired);
        // The survivor adopts node 1's mailbox: sends still succeed and the
        // handle can drain them from any thread.
        assert!(eps[0].send(NodeId(1), 5));
        assert_eq!(handle.try_recv_at(1).unwrap().body, 5);
    }

    #[test]
    fn overhead_slows_sends() {
        // 200µs of overhead across 20 sends must take at least 4ms total.
        let cfg = FabricConfig::reliable().with_cost(SendCost::with_overhead(200_000));
        let (mut eps, _) = net(2, cfg);
        let start = Instant::now();
        for i in 0..20 {
            eps[0].send(NodeId(1), i);
        }
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn cross_thread_send_receive() {
        let (eps, _) = net(2, FabricConfig::reliable());
        let mut it = eps.into_iter();
        let mut a = it.next().unwrap();
        let b = it.next().unwrap();
        let t = std::thread::spawn(move || {
            for i in 0..1000 {
                a.send(NodeId(1), i);
            }
        });
        let mut got = 0;
        while got < 1000 {
            if let Some(env) = b.recv_timeout(Duration::from_secs(5)) {
                assert_eq!(env.body, got);
                got += 1;
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn reclaimed_endpoint_reopens_node() {
        let (mut eps, handle) = net(2, FabricConfig::reliable());
        drop(eps.remove(1));
        assert!(!eps[0].send(NodeId(1), 1), "closed after drop");
        let fresh = handle.endpoint(1);
        assert!(eps[0].send(NodeId(1), 2), "reclaimed slot must reopen");
        assert_eq!(fresh.try_recv().unwrap().body, 2);
    }

    // -- lossy policy ------------------------------------------------------

    /// A payload that cannot be cloned, like the boxed `FnOnce` task
    /// bodies the engines migrate: proves the retransmission protocol
    /// never needs `Clone`.
    #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct NoClone(u64);

    impl WireSized for NoClone {
        fn wire_bytes(&self) -> usize {
            crate::message::HEADER_BYTES + 8
        }
    }

    fn lossy_pair(faults: LossyConfig) -> (Vec<FabricEndpoint<NoClone>>, FabricHandle<NoClone>) {
        let cfg = FabricConfig::lossy(faults).with_recovery(ReliableConfig {
            rto: 10,
            max_retries: 100_000,
        });
        let fabric = Fabric::<NoClone>::new(2, cfg);
        let handle = fabric.handle();
        (fabric.into_endpoints(), handle)
    }

    /// Drive both ends on a manual clock until quiescent, collecting
    /// deliveries everywhere.
    fn settle(eps: &mut [FabricEndpoint<NoClone>]) -> Vec<u64> {
        let mut got = Vec::new();
        let mut now = 0;
        for _ in 0..200_000 {
            now += 11; // always past the tiny RTO
            for ep in eps.iter_mut() {
                ep.pump_at(now);
            }
            for ep in eps.iter() {
                while let Some(env) = ep.try_recv() {
                    got.push(env.body.0);
                }
            }
            if eps.iter().all(|e| e.in_flight() == 0) {
                break;
            }
        }
        got
    }

    #[test]
    fn exactly_once_under_heavy_loss_without_clone() {
        let (mut eps, _) = lossy_pair(LossyConfig {
            drop_prob: 0.4,
            dup_prob: 0.2,
            reorder_prob: 0.2,
            seed: 42,
        });
        for i in 0..200 {
            eps[0].send_at(NodeId(1), NoClone(i), 0);
        }
        let mut got = settle(&mut eps);
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>(), "exactly-once violated");
    }

    #[test]
    fn bidirectional_traffic_under_faults() {
        let (mut eps, _) = lossy_pair(LossyConfig::nasty(7));
        for i in 0..50 {
            eps[0].send_at(NodeId(1), NoClone(i), 0);
            eps[1].send_at(NodeId(0), NoClone(1000 + i), 0);
        }
        let mut got = settle(&mut eps);
        got.sort_unstable();
        let mut expect: Vec<u64> = (0..50).chain(1000..1050).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn retransmissions_counted() {
        let (mut eps, handle) = lossy_pair(LossyConfig::dropping(0.5, 21));
        for i in 0..100 {
            eps[0].send_at(NodeId(1), NoClone(i), 0);
        }
        settle(&mut eps);
        let snap = handle.metrics_of(0);
        assert!(snap.retransmissions > 0, "50% loss must retransmit");
        assert!(snap.messages_dropped > 0);
    }

    #[test]
    fn retransmitted_copies_count_their_bytes() {
        // A link that loses everything: the original send and every
        // retransmitted copy go "on the wire" and are lost there, so each
        // one must be counted in messages_sent and bytes_sent — Table 2's
        // byte figures were silently omitting retransmitted copies.
        let cfg =
            FabricConfig::lossy(LossyConfig::dropping(1.0, 3)).with_recovery(ReliableConfig {
                rto: 10,
                max_retries: 100,
            });
        let fabric = Fabric::<NoClone>::new(2, cfg);
        let handle = fabric.handle();
        let mut eps = fabric.into_endpoints();
        eps[0].send_at(NodeId(1), NoClone(7), 0);
        let mut now = 0;
        for _ in 0..4 {
            now += 11;
            eps[0].pump_at(now);
        }
        let per_msg = NoClone(7).wire_bytes() as u64;
        let snap = handle.metrics_of(0);
        assert_eq!(snap.retransmissions, 4);
        assert_eq!(snap.messages_sent, 5, "original + 4 retransmissions");
        assert_eq!(snap.bytes_sent, 5 * per_msg, "every copy counts its bytes");
        assert_eq!(snap.messages_dropped, 5);
        assert_eq!(handle.link_messages(0, 1), 5);
    }

    #[test]
    fn raw_loss_rate_without_recovery() {
        // Before any pump, a 30% drop roll keeps ~30% of sends out of the
        // destination queue: the fault injector itself is honest.
        let (mut eps, _) = lossy_pair(LossyConfig::dropping(0.3, 9));
        for i in 0..2000 {
            eps[0].send_at(NodeId(1), NoClone(i), 0);
        }
        let mut n = 0;
        while eps[1].try_recv().is_some() {
            n += 1;
        }
        assert!((1200..=1600).contains(&n), "delivered {n}/2000 at 30% loss");
    }

    #[test]
    fn duplicates_are_injected_and_deduplicated() {
        let (mut eps, handle) = lossy_pair(LossyConfig {
            drop_prob: 0.0,
            dup_prob: 0.5,
            reorder_prob: 0.0,
            seed: 11,
        });
        for i in 0..200 {
            eps[0].send_at(NodeId(1), NoClone(i), 0);
        }
        let mut got = settle(&mut eps);
        assert!(
            handle.metrics_of(0).messages_duplicated > 40,
            "duplicates must be injected"
        );
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>(), "dedup failed");
    }

    #[test]
    fn reordering_inverts_neighbours() {
        let (mut eps, _) = lossy_pair(LossyConfig {
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.3,
            seed: 13,
        });
        for i in 0..500 {
            eps[0].send_at(NodeId(1), NoClone(i), 0);
        }
        eps[0].pump_at(0); // flush the final holdback
        let mut got = Vec::new();
        while let Some(env) = eps[1].try_recv() {
            got.push(env.body.0);
        }
        assert_eq!(got.len(), 500, "reordering must not lose messages");
        assert!(
            got.windows(2).any(|w| w[0] > w[1]),
            "at least one inversion expected at 30% reorder"
        );
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let run = || {
            let (mut eps, _) = lossy_pair(LossyConfig::nasty(99));
            for i in 0..300 {
                eps[0].send_at(NodeId(1), NoClone(i), 0);
            }
            eps[0].pump_at(0);
            let mut got = Vec::new();
            while let Some(env) = eps[1].try_recv() {
                got.push(env.body.0);
            }
            got
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dead_peer_detected_after_max_retries() {
        let cfg = FabricConfig::lossy(LossyConfig::perfect(1)).with_recovery(ReliableConfig {
            rto: 10,
            max_retries: 3,
        });
        let fabric = Fabric::<NoClone>::new(2, cfg);
        let mut eps = fabric.into_endpoints();
        drop(eps.remove(1)); // peer crashes
        let mut a = eps.remove(0);
        a.send_at(NodeId(1), NoClone(9), 0);
        let mut now = 0;
        for _ in 0..10 {
            now += 11;
            a.pump_at(now);
        }
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.take_dead_peers(), vec![NodeId(1)]);
        assert!(a.take_dead_peers().is_empty(), "cleared on read");
    }

    #[test]
    fn quiesce_settles_a_real_clock_flow() {
        let cfg = FabricConfig::lossy(LossyConfig::dropping(0.3, 5));
        let fabric = Fabric::<u64>::new(2, cfg);
        let eps = fabric.into_endpoints();
        let mut it = eps.into_iter();
        let mut a = it.next().unwrap();
        let b = it.next().unwrap();
        for i in 0..50 {
            a.send(NodeId(1), i);
        }
        let drainer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < 50 {
                if let Some(env) = b.recv_timeout(Duration::from_millis(5)) {
                    got.push(env.body);
                }
            }
            got
        });
        assert!(a.quiesce(Duration::from_secs(10)), "flow must quiesce");
        let mut got = drainer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    // -- virtual-time instantiation ---------------------------------------

    #[test]
    fn virtual_messages_arrive_exactly_on_time() {
        let mut net: VirtualFabric<u64> = VirtualFabric::new(2);
        net.send(0, 100, NodeId(0), NodeId(1), 7);
        assert!(net.deliver_due(99).is_empty());
        let due = net.deliver_due(100);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].body, 7);
        assert_eq!(due[0].src, NodeId(0));
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.messages_sent_by(0), 1);
        assert_eq!(net.messages_sent_by(1), 0);
    }

    #[test]
    fn virtual_delivery_order_is_by_time_then_send_order() {
        let mut net: VirtualFabric<u64> = VirtualFabric::new(2);
        net.send(0, 300, NodeId(0), NodeId(1), 1); // due 300
        net.send(0, 100, NodeId(0), NodeId(1), 2); // due 100
        net.send(0, 100, NodeId(1), NodeId(0), 3); // due 100, sent after
        let due = net.deliver_due(1000);
        let bodies: Vec<u64> = due.iter().map(|e| e.body).collect();
        assert_eq!(bodies, vec![2, 3, 1]);
    }

    #[test]
    fn virtual_next_due_drives_a_clock() {
        let mut net: VirtualFabric<u64> = VirtualFabric::new(2);
        net.send(0, 50, NodeId(0), NodeId(1), 1);
        net.send(0, 200, NodeId(0), NodeId(1), 2);
        let mut now = 0;
        let mut got = Vec::new();
        while let Some(due) = net.next_due() {
            now = due;
            got.extend(net.deliver_due(now).into_iter().map(|e| e.body));
        }
        assert_eq!(now, 200);
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    #[should_panic]
    fn virtual_out_of_range_node_rejected() {
        let mut net: VirtualFabric<u64> = VirtualFabric::new(1);
        net.send(0, 1, NodeId(0), NodeId(5), 9);
    }
}
