//! Application dispatch for the process runtime.
//!
//! The protocol carries tasks and results as opaque word vectors; this
//! module is where they regain their types. A job names its application by
//! [`AppKind`], and both driver and worker dispatch *once* at startup to
//! code monomorphised over the concrete [`SpecTask`] — no trait objects
//! cross the scheduler's hot path, mirroring the in-process engines.
//!
//! Only spec-form applications with `WordCodec` task and output encodings
//! can run multi-process (they are the re-creatable, serialisable task
//! form); fib and pfold are the two wired up here, matching the paper's
//! toy-vs-real pair.
//!
//! [`SpecTask`]: phish_core::SpecTask

use phish_apps::{FibSpec, PfoldSpec};
use phish_core::codec::WordCodec;
use phish_core::SpecTask;

use crate::proto::{from_words, to_words, JobDesc};

/// The applications the process runtime can host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// Doubly-recursive Fibonacci (Table 1's overhead stress test).
    Fib,
    /// Lattice polymer folding (the Table 2 / Figure 4 workload).
    Pfold,
}

impl AppKind {
    /// Parses a command-line name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "fib" => Some(Self::Fib),
            "pfold" => Some(Self::Pfold),
            _ => None,
        }
    }

    /// The wire id used in [`JobDesc::app`].
    pub fn as_u64(self) -> u64 {
        match self {
            Self::Fib => 1,
            Self::Pfold => 2,
        }
    }

    /// Decodes a wire id.
    pub fn from_u64(id: u64) -> Option<Self> {
        match id {
            1 => Some(Self::Fib),
            2 => Some(Self::Pfold),
            _ => None,
        }
    }

    /// The command-line name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Fib => "fib",
            Self::Pfold => "pfold",
        }
    }
}

/// A job's typed result, decoded from the driver's final merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppResult {
    /// fib(n).
    Fib(u64),
    /// The contact-count histogram.
    Pfold(phish_apps::Histogram),
}

impl AppResult {
    /// Decodes the result words for `app`.
    pub fn decode(app: AppKind, words: &[u64]) -> Option<Self> {
        match app {
            AppKind::Fib => from_words::<u64>(words).map(AppResult::Fib),
            AppKind::Pfold => from_words::<Vec<u64>>(words).map(AppResult::Pfold),
        }
    }

    /// A one-line human rendering (what `phishd` prints).
    pub fn display(&self) -> String {
        match self {
            AppResult::Fib(v) => format!("fib = {v}"),
            AppResult::Pfold(hist) => {
                format!(
                    "pfold walks = {}, histogram = {:?}",
                    phish_apps::count_walks(hist),
                    hist
                )
            }
        }
    }
}

/// Builds the encoded root task for a job description.
pub fn root_task_words(desc: &JobDesc) -> Option<Vec<u64>> {
    match AppKind::from_u64(desc.app)? {
        AppKind::Fib => Some(to_words(&FibSpec { n: desc.arg })),
        AppKind::Pfold => Some(to_words(&PfoldSpec::new(
            desc.arg as usize,
            desc.depth as usize,
        ))),
    }
}

/// What app dispatch hands its continuation: the spec type plus the
/// word-vector bridges the generic protocol needs.
pub trait WireApp: SpecTask + WordCodec
where
    Self::Output: WordCodec + PartialEq,
{
    /// Decodes a task from grant/spill words.
    fn task_from_words(words: &[u64]) -> Option<Self> {
        from_words(words)
    }

    /// Encodes a task for a grant/spill.
    fn task_to_words(&self) -> Vec<u64> {
        to_words(self)
    }

    /// Decodes an accumulator (falling back to the identity for an empty
    /// vector, which is what a worker that never executed reports).
    fn acc_from_words(words: &[u64]) -> Option<Self::Output> {
        from_words(words)
    }

    /// Encodes an accumulator.
    fn acc_to_words(acc: &Self::Output) -> Vec<u64> {
        to_words(acc)
    }
}

impl WireApp for FibSpec {}
impl WireApp for PfoldSpec {}

/// Runs `f` monomorphised for `app`'s spec type. This is the single
/// dispatch point for both driver and worker.
pub fn dispatch<R>(app: AppKind, f: impl AppCall<R>) -> R {
    match app {
        AppKind::Fib => f.call::<FibSpec>(),
        AppKind::Pfold => f.call::<PfoldSpec>(),
    }
}

/// A callback generic over the dispatched spec type (a hand-rolled
/// rank-2 closure: stable Rust cannot express `for<S: WireApp> FnOnce`).
pub trait AppCall<R> {
    /// Invokes the callback at spec type `S`.
    fn call<S: WireApp>(self) -> R
    where
        S::Output: WordCodec + PartialEq;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_ids_roundtrip() {
        for app in [AppKind::Fib, AppKind::Pfold] {
            assert_eq!(AppKind::from_u64(app.as_u64()), Some(app));
            assert_eq!(AppKind::from_name(app.name()), Some(app));
        }
        assert_eq!(AppKind::from_u64(0), None);
        assert_eq!(AppKind::from_name("raytrace"), None);
    }

    #[test]
    fn root_task_encodes_and_steps() {
        let desc = JobDesc {
            app: AppKind::Fib.as_u64(),
            arg: 10,
            depth: 0,
            seed: 0,
            nodes: 2,
        };
        let words = root_task_words(&desc).unwrap();
        let spec = FibSpec::task_from_words(&words).unwrap();
        assert_eq!(spec, FibSpec { n: 10 });
    }

    #[test]
    fn result_display_names_the_app() {
        assert_eq!(AppResult::Fib(55).display(), "fib = 55");
        let words = to_words(&55u64);
        assert_eq!(
            AppResult::decode(AppKind::Fib, &words),
            Some(AppResult::Fib(55))
        );
    }
}
