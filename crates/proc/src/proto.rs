//! The driver/worker wire protocol.
//!
//! Every datagram the process runtime exchanges is one [`ProcMsg`],
//! serialised through `phish-core::codec`'s [`WordCodec`] (a `u64` word
//! stream, little-endian on the wire) and carried by
//! `phish-net::udp`'s exactly-once transport. Bridging [`WordCodec`] to
//! the transport's byte-level [`WireCodec`] here — rather than inventing a
//! second serialisation — is what keeps the UDP wire format from drifting
//! away from the in-memory messages: a task crosses the network in exactly
//! the words its spec form encodes to.
//!
//! Tasks and partial results appear as *opaque word vectors* (`Vec<u64>`)
//! at this layer: the protocol is generic over the application, and each
//! side encodes/decodes the words with the concrete [`SpecTask`] type it
//! was dispatched for (see [`crate::app`]).
//!
//! [`SpecTask`]: phish_core::SpecTask

use phish_core::codec::{bytes_to_words, words_to_bytes, WordCodec, WordReader};
use phish_net::WireCodec;

/// One peer's identity and socket address as carried in rosters.
///
/// Addresses are IPv4 (the paper's 1994 LAN, and every loopback test);
/// the ip is the big-endian `u32` form of the dotted quad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerEntry {
    /// Node id (0 is always the driver).
    pub id: u64,
    /// IPv4 address octets as a big-endian u32.
    pub ip: u32,
    /// UDP port.
    pub port: u16,
}

impl PeerEntry {
    /// Builds an entry from a socket address; `None` for IPv6.
    pub fn from_addr(id: u64, addr: std::net::SocketAddr) -> Option<Self> {
        match addr {
            std::net::SocketAddr::V4(v4) => Some(Self {
                id,
                ip: u32::from(*v4.ip()),
                port: v4.port(),
            }),
            std::net::SocketAddr::V6(_) => None,
        }
    }

    /// The socket address this entry names.
    pub fn addr(&self) -> std::net::SocketAddr {
        std::net::SocketAddr::V4(std::net::SocketAddrV4::new(
            std::net::Ipv4Addr::from(self.ip),
            self.port,
        ))
    }
}

impl WordCodec for PeerEntry {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.id);
        out.push(u64::from(self.ip));
        out.push(u64::from(self.port));
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        Some(Self {
            id: r.word()?,
            ip: u32::try_from(r.word()?).ok()?,
            port: u16::try_from(r.word()?).ok()?,
        })
    }
}

/// The job a driver hands to joining workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobDesc {
    /// Application id (see [`crate::app::AppKind`]).
    pub app: u64,
    /// Application argument (fib's `n`, pfold's chain length).
    pub arg: u64,
    /// Application spawn depth (pfold; ignored by fib).
    pub depth: u64,
    /// Job seed: workers derive their victim-selection RNG streams from
    /// it exactly like the in-process engines (`worker_seed`).
    pub seed: u64,
    /// Total node count, driver included.
    pub nodes: u64,
}

impl WordCodec for JobDesc {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.app);
        out.push(self.arg);
        out.push(self.depth);
        out.push(self.seed);
        out.push(self.nodes);
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        Some(Self {
            app: r.word()?,
            arg: r.word()?,
            depth: r.word()?,
            seed: r.word()?,
            nodes: r.word()?,
        })
    }
}

/// A worker's scheduling state as reported to the driver: the cumulative
/// kernel counters plus instantaneous idleness. The driver's termination
/// detection rests on these (see `crate::driver`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// Tasks executed so far (cumulative).
    pub executed: u64,
    /// Tasks spawned so far (cumulative).
    pub spawned: u64,
    /// True when the local ready list is empty and nothing is running.
    pub idle: bool,
    /// Local ready-list length.
    pub queue_len: u64,
}

impl WordCodec for WorkerReport {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.executed);
        out.push(self.spawned);
        out.push(u64::from(self.idle));
        out.push(self.queue_len);
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        Some(Self {
            executed: r.word()?,
            spawned: r.word()?,
            idle: match r.word()? {
                0 => false,
                1 => true,
                _ => return None,
            },
            queue_len: r.word()?,
        })
    }
}

/// Every message the process runtime puts on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcMsg {
    /// Worker → driver: "I exist"; the driver learns the worker's address
    /// from the datagram source.
    Hello {
        /// The worker's self-assigned node id (from its command line).
        worker: u64,
    },
    /// Driver → worker: job parameters and the current roster.
    Welcome {
        /// The job to run.
        job: JobDesc,
        /// Everyone currently registered (including the driver, id 0).
        peers: Vec<PeerEntry>,
    },
    /// Driver → workers: membership changed; here is the new roster.
    Peers {
        /// Roster version (the Clearinghouse's, monotone).
        version: u64,
        /// Current peers.
        peers: Vec<PeerEntry>,
    },
    /// Worker → driver: liveness plus the cumulative scheduling counters.
    Heartbeat {
        /// Sender's node id.
        worker: u64,
        /// Scheduling state.
        report: WorkerReport,
    },
    /// Thief → victim: one steal attempt.
    StealRequest {
        /// The thief's node id (reply address comes from the roster).
        thief: u64,
    },
    /// Victim → thief: the oldest task from the victim's ready list
    /// (FIFO steal end), as the spec's encoded words.
    StealGrant {
        /// The task, `WordCodec`-encoded.
        task: Vec<u64>,
    },
    /// Victim → thief: nothing to steal.
    StealDeny,
    /// Driver → workers: termination-confirmation round `epoch`; reply
    /// with a fresh [`ProcMsg::ConfirmAck`].
    Confirm {
        /// Round number.
        epoch: u64,
    },
    /// Worker → driver: fresh counters plus the current partial result
    /// (used as the final result when the round confirms termination).
    ConfirmAck {
        /// Sender's node id.
        worker: u64,
        /// The round being answered.
        epoch: u64,
        /// Fresh scheduling state.
        report: WorkerReport,
        /// The worker's accumulated partial output, encoded.
        acc: Vec<u64>,
    },
    /// Worker → driver: graceful departure (SIGTERM). Carries the final
    /// counters, the partial result, and the *spilled ready list* so no
    /// task is lost; the driver re-admits the tasks to its pool.
    Goodbye {
        /// Sender's node id.
        worker: u64,
        /// Final counters.
        report: WorkerReport,
        /// Accumulated partial output, encoded.
        acc: Vec<u64>,
        /// The ready list, each task encoded.
        tasks: Vec<Vec<u64>>,
    },
    /// Driver → worker: departure acknowledged; the slot was reclaimed.
    GoodbyeAck,
    /// Worker → driver: a single task re-homed outside a [`ProcMsg::Goodbye`]
    /// (e.g. a steal grant that landed during shutdown).
    Spill {
        /// Sender's node id.
        worker: u64,
        /// The task, encoded.
        task: Vec<u64>,
    },
    /// Driver → workers: the job is complete; exit cleanly. Carries the
    /// final merged result for symmetric logging.
    Done {
        /// Final output, encoded.
        result: Vec<u64>,
    },
}

const TAG_HELLO: u64 = 1;
const TAG_WELCOME: u64 = 2;
const TAG_PEERS: u64 = 3;
const TAG_HEARTBEAT: u64 = 4;
const TAG_STEAL_REQUEST: u64 = 5;
const TAG_STEAL_GRANT: u64 = 6;
const TAG_STEAL_DENY: u64 = 7;
const TAG_CONFIRM: u64 = 8;
const TAG_CONFIRM_ACK: u64 = 9;
const TAG_GOODBYE: u64 = 10;
const TAG_GOODBYE_ACK: u64 = 11;
const TAG_SPILL: u64 = 12;
const TAG_DONE: u64 = 13;

impl WordCodec for ProcMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        match self {
            ProcMsg::Hello { worker } => {
                out.push(TAG_HELLO);
                out.push(*worker);
            }
            ProcMsg::Welcome { job, peers } => {
                out.push(TAG_WELCOME);
                job.encode(out);
                peers.encode(out);
            }
            ProcMsg::Peers { version, peers } => {
                out.push(TAG_PEERS);
                out.push(*version);
                peers.encode(out);
            }
            ProcMsg::Heartbeat { worker, report } => {
                out.push(TAG_HEARTBEAT);
                out.push(*worker);
                report.encode(out);
            }
            ProcMsg::StealRequest { thief } => {
                out.push(TAG_STEAL_REQUEST);
                out.push(*thief);
            }
            ProcMsg::StealGrant { task } => {
                out.push(TAG_STEAL_GRANT);
                task.encode(out);
            }
            ProcMsg::StealDeny => out.push(TAG_STEAL_DENY),
            ProcMsg::Confirm { epoch } => {
                out.push(TAG_CONFIRM);
                out.push(*epoch);
            }
            ProcMsg::ConfirmAck {
                worker,
                epoch,
                report,
                acc,
            } => {
                out.push(TAG_CONFIRM_ACK);
                out.push(*worker);
                out.push(*epoch);
                report.encode(out);
                acc.encode(out);
            }
            ProcMsg::Goodbye {
                worker,
                report,
                acc,
                tasks,
            } => {
                out.push(TAG_GOODBYE);
                out.push(*worker);
                report.encode(out);
                acc.encode(out);
                tasks.encode(out);
            }
            ProcMsg::GoodbyeAck => out.push(TAG_GOODBYE_ACK),
            ProcMsg::Spill { worker, task } => {
                out.push(TAG_SPILL);
                out.push(*worker);
                task.encode(out);
            }
            ProcMsg::Done { result } => {
                out.push(TAG_DONE);
                result.encode(out);
            }
        }
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        Some(match r.word()? {
            TAG_HELLO => ProcMsg::Hello { worker: r.word()? },
            TAG_WELCOME => ProcMsg::Welcome {
                job: JobDesc::decode(r)?,
                peers: Vec::decode(r)?,
            },
            TAG_PEERS => ProcMsg::Peers {
                version: r.word()?,
                peers: Vec::decode(r)?,
            },
            TAG_HEARTBEAT => ProcMsg::Heartbeat {
                worker: r.word()?,
                report: WorkerReport::decode(r)?,
            },
            TAG_STEAL_REQUEST => ProcMsg::StealRequest { thief: r.word()? },
            TAG_STEAL_GRANT => ProcMsg::StealGrant {
                task: Vec::decode(r)?,
            },
            TAG_STEAL_DENY => ProcMsg::StealDeny,
            TAG_CONFIRM => ProcMsg::Confirm { epoch: r.word()? },
            TAG_CONFIRM_ACK => ProcMsg::ConfirmAck {
                worker: r.word()?,
                epoch: r.word()?,
                report: WorkerReport::decode(r)?,
                acc: Vec::decode(r)?,
            },
            TAG_GOODBYE => ProcMsg::Goodbye {
                worker: r.word()?,
                report: WorkerReport::decode(r)?,
                acc: Vec::decode(r)?,
                tasks: Vec::decode(r)?,
            },
            TAG_GOODBYE_ACK => ProcMsg::GoodbyeAck,
            TAG_SPILL => ProcMsg::Spill {
                worker: r.word()?,
                task: Vec::decode(r)?,
            },
            TAG_DONE => ProcMsg::Done {
                result: Vec::decode(r)?,
            },
            _ => return None,
        })
    }
}

impl WireCodec for ProcMsg {
    fn encode_bytes(&self) -> Vec<u8> {
        let mut words = Vec::new();
        WordCodec::encode(self, &mut words);
        words_to_bytes(&words)
    }

    fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        let words = bytes_to_words(bytes)?;
        let mut r = WordReader::new(&words);
        let msg = WordCodec::decode(&mut r)?;
        // A frame must be exactly one message; trailing words mean
        // corruption or format drift.
        if !r.is_exhausted() {
            return None;
        }
        Some(msg)
    }
}

/// Encodes any `WordCodec` value to its word vector (the form tasks and
/// accumulators travel in inside [`ProcMsg`]).
pub fn to_words<T: WordCodec>(value: &T) -> Vec<u64> {
    let mut words = Vec::new();
    value.encode(&mut words);
    words
}

/// Decodes a value from a word vector produced by [`to_words`],
/// requiring the words to be exactly consumed.
pub fn from_words<T: WordCodec>(words: &[u64]) -> Option<T> {
    let mut r = WordReader::new(words);
    let value = T::decode(&mut r)?;
    if !r.is_exhausted() {
        return None;
    }
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip_is_word_codec_through_bytes() {
        let msg = ProcMsg::Heartbeat {
            worker: 3,
            report: WorkerReport {
                executed: 10,
                spawned: 9,
                idle: true,
                queue_len: 0,
            },
        };
        let bytes = msg.encode_bytes();
        assert_eq!(bytes.len() % 8, 0, "wire form is whole words");
        assert_eq!(ProcMsg::decode_bytes(&bytes), Some(msg));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = ProcMsg::StealDeny.encode_bytes();
        bytes.extend_from_slice(&[0u8; 8]);
        assert_eq!(ProcMsg::decode_bytes(&bytes), None);
    }

    #[test]
    fn unknown_tag_rejected() {
        let bytes = words_to_bytes(&[999]);
        assert_eq!(ProcMsg::decode_bytes(&bytes), None);
    }

    #[test]
    fn peer_entry_addr_roundtrip() {
        let addr: std::net::SocketAddr = "127.0.0.1:4242".parse().unwrap();
        let e = PeerEntry::from_addr(7, addr).unwrap();
        assert_eq!(e.addr(), addr);
    }
}
