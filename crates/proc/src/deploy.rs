//! Multi-process deployment harness.
//!
//! [`Deployment`] is the programmatic face of `phishd --spawn`: it binds a
//! driver endpoint in-process, launches N `phish-worker` **child
//! processes** pointed at it over loopback UDP, and supervises the run.
//! Tests and benchmarks use it to stand up a real 1-driver/N-worker
//! cluster in a couple of lines:
//!
//! ```no_run
//! use phish_proc::{AppKind, Deployment};
//!
//! let outcome = Deployment::local(AppKind::Fib, 20, 4).run().unwrap();
//! println!("{}", outcome.driver.result.display());
//! ```
//!
//! The harness finds the worker binary next to the current executable
//! (the layout `cargo` produces), or wherever `PHISH_WORKER_BIN` points.
//! [`Running::kill_worker`] delivers a real SIGTERM mid-run, which is how
//! the graceful-departure path is exercised end-to-end.

use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::app::AppKind;
use crate::driver::{Driver, DriverConfig, DriverOutcome};

/// Environment variable overriding where the worker binary lives.
pub const WORKER_BIN_ENV: &str = "PHISH_WORKER_BIN";

/// A described-but-not-yet-launched local cluster.
#[derive(Debug, Clone)]
pub struct Deployment {
    cfg: DriverConfig,
    worker_bin: Option<PathBuf>,
}

/// A launched cluster: driver thread plus worker child processes.
pub struct Running {
    addr: SocketAddr,
    driver: JoinHandle<Result<DriverOutcome, String>>,
    workers: Vec<Option<Child>>,
}

/// What a finished cluster reports.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The driver's result and service counters.
    pub driver: DriverOutcome,
    /// Exit codes of the worker processes, in spawn order (`None` when a
    /// worker was torn down without a reapable status).
    pub worker_exits: Vec<Option<i32>>,
}

impl Deployment {
    /// A loopback cluster of `workers` worker processes running `app(arg)`.
    pub fn local(app: AppKind, arg: u64, workers: usize) -> Self {
        Self {
            cfg: DriverConfig::local(app, arg, workers),
            worker_bin: None,
        }
    }

    /// Replaces the driver configuration wholesale (fault injection,
    /// timeouts, spawn depth).
    pub fn with_config(mut self, cfg: DriverConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Points the harness at a specific worker binary (tests use the
    /// `CARGO_BIN_EXE_phish-worker` path cargo hands them).
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(bin.into());
        self
    }

    /// The driver configuration this deployment will run.
    pub fn config(&self) -> &DriverConfig {
        &self.cfg
    }

    /// Locates the `phish-worker` binary.
    fn worker_bin(&self) -> io::Result<PathBuf> {
        if let Some(bin) = &self.worker_bin {
            return Ok(bin.clone());
        }
        if let Some(bin) = std::env::var_os(WORKER_BIN_ENV) {
            return Ok(PathBuf::from(bin));
        }
        let me = std::env::current_exe()?;
        let name = format!("phish-worker{}", std::env::consts::EXE_SUFFIX);
        let mut dirs: Vec<&Path> = Vec::new();
        if let Some(dir) = me.parent() {
            dirs.push(dir);
            // Test binaries live in target/<profile>/deps; the bins one up.
            if let Some(up) = dir.parent() {
                dirs.push(up);
            }
        }
        for dir in dirs {
            let candidate = dir.join(&name);
            if candidate.is_file() {
                return Ok(candidate);
            }
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{name} not found next to {} (set {WORKER_BIN_ENV})",
                me.display()
            ),
        ))
    }

    /// Binds the driver, spawns the worker processes, returns the handle.
    pub fn launch(self) -> io::Result<Running> {
        let bin = if self.cfg.workers > 0 {
            Some(self.worker_bin()?)
        } else {
            None
        };
        let driver = Driver::bind(self.cfg)?;
        let addr = driver.local_addr();
        let mut workers = Vec::with_capacity(self.cfg.workers);
        for id in 1..=self.cfg.workers {
            let mut cmd = Command::new(bin.as_ref().expect("workers>0 implies bin"));
            cmd.arg("--driver")
                .arg(addr.to_string())
                .arg("--id")
                .arg(id.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null());
            if let Some(faults) = self.cfg.udp.faults {
                cmd.arg("--drop").arg(faults.drop_prob.to_string());
                cmd.arg("--dup").arg(faults.dup_prob.to_string());
                cmd.arg("--fault-seed").arg(faults.seed.to_string());
            }
            match cmd.spawn() {
                Ok(child) => workers.push(Some(child)),
                Err(e) => {
                    // Unwind what we already started.
                    for child in workers.iter_mut().flatten() {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    return Err(e);
                }
            }
        }
        let driver = std::thread::Builder::new()
            .name("phishd-driver".into())
            .spawn(move || driver.run())?;
        Ok(Running {
            addr,
            driver,
            workers,
        })
    }

    /// `launch()` + `wait()`: runs the cluster to completion.
    pub fn run(self) -> Result<Outcome, String> {
        self.launch().map_err(|e| e.to_string())?.wait()
    }
}

impl Running {
    /// The driver's address (what extra out-of-harness workers would join).
    pub fn driver_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of worker processes this harness launched.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Sends SIGTERM to worker `index` (0-based spawn order), triggering
    /// its graceful spill-and-depart path. The process is reaped in
    /// [`wait`](Self::wait).
    pub fn kill_worker(&mut self, index: usize) -> io::Result<()> {
        let child = self
            .workers
            .get_mut(index)
            .and_then(Option::as_mut)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such worker"))?;
        let status = Command::new("kill")
            .arg("-TERM")
            .arg(child.id().to_string())
            .status()?;
        if !status.success() {
            return Err(io::Error::other("kill -TERM failed"));
        }
        Ok(())
    }

    /// Waits for the driver to declare the job done, then reaps every
    /// worker. On driver failure the workers are killed, not leaked.
    pub fn wait(mut self) -> Result<Outcome, String> {
        let driver = match self.driver.join() {
            Ok(result) => result,
            Err(_) => Err("driver thread panicked".to_string()),
        };
        let mut worker_exits = Vec::with_capacity(self.workers.len());
        for child in &mut self.workers {
            let Some(mut child) = child.take() else {
                worker_exits.push(None);
                continue;
            };
            if driver.is_err() {
                let _ = child.kill();
            } else {
                // The driver broadcast `Done`; give laggards a moment
                // before resorting to SIGKILL.
                let deadline = std::time::Instant::now() + Duration::from_secs(10);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if std::time::Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        _ => {
                            let _ = child.kill();
                            break;
                        }
                    }
                }
            }
            worker_exits.push(child.wait().ok().and_then(|s| s.code()));
        }
        driver.map(|driver| Outcome {
            driver,
            worker_exits,
        })
    }
}
