//! Minimal SIGTERM/SIGINT latch.
//!
//! The worker binary must turn SIGTERM into a *graceful* departure — spill
//! the ready list, send `Goodbye`, let the driver reclaim the slot — which
//! means the handler can only set a flag for the scheduling loop to notice
//! between tasks. The workspace vendors no `libc`, so the registration is
//! a direct FFI call to `signal(2)`, the one C function this needs; the
//! handler itself is a single relaxed store, trivially async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERM_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERM_REQUESTED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
            signal(SIGINT, on_term as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix builds run without signal-triggered shutdown (the driver
    /// heartbeat path still provides orderly exit).
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handler. Idempotent.
pub fn install_term_handler() {
    imp::install();
}

/// True once SIGTERM/SIGINT has been received.
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::Relaxed)
}

/// Sets the termination flag programmatically (tests, driver-initiated
/// local shutdown).
pub fn request_term() {
    TERM_REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_flag() {
        install_term_handler();
        request_term();
        assert!(term_requested());
    }
}
