//! # phish-proc — the multi-process runtime
//!
//! Everything below this crate runs the paper's scheduler inside one
//! address space; this crate runs it across **real operating-system
//! processes talking UDP**, the deployment shape the paper actually
//! describes (a driver plus workers scattered over a network of
//! workstations).
//!
//! Three layers:
//!
//! * [`proto`] — the wire protocol: join, roster, steal request/grant,
//!   heartbeats, termination confirmation, graceful departure. Every
//!   message round-trips through `phish-core::codec` words and the
//!   `phish-net` byte framing.
//! * [`driver`] / [`worker`] — the two process roles. The driver hosts
//!   the macro-level services (JobQ, Clearinghouse) and detects
//!   termination; workers run the same [`SchedulerCore`] kernel as the
//!   in-process engines over a UDP [`Substrate`].
//! * [`deploy`] — a harness that launches and supervises a local
//!   1-driver/N-worker cluster for tests, benches, and examples.
//!
//! The binaries `phishd` and `phish-worker` are thin CLI shells over
//! these layers.
//!
//! [`SchedulerCore`]: phish_core::kernel::SchedulerCore
//! [`Substrate`]: phish_core::kernel::Substrate

pub mod app;
pub mod deploy;
pub mod driver;
pub mod proto;
pub mod signal;
pub mod worker;

pub use app::{AppKind, AppResult};
pub use deploy::{Deployment, Outcome, Running, WORKER_BIN_ENV};
pub use driver::{Driver, DriverConfig, DriverOutcome, DRIVER_NODE};
pub use proto::{JobDesc, PeerEntry, ProcMsg, WorkerReport};
pub use worker::{run_worker, WorkerConfig, WorkerExit};
