//! The job driver: JobQ + Clearinghouse host, task pool, and distributed
//! termination detection.
//!
//! `phishd` is node 0 of a job. It hosts the two macro-level services the
//! paper centralises — the **PhishJobQ** (job pool accounting) and the
//! **Clearinghouse** (participant roster, heartbeats, crash detection,
//! buffered I/O) — as plain structs behind its one UDP endpoint, and adds
//! the pieces a multi-process job needs from its hub:
//!
//! * **The spill pool.** The driver seeds the pool with the job's root
//!   task and re-admits every task that comes back — a departing worker's
//!   spilled ready list ([`ProcMsg::Goodbye`]), stray grants re-homed
//!   during shutdown ([`ProcMsg::Spill`]), and dead letters (grants whose
//!   destination died before acknowledging). Workers steal from the pool
//!   exactly as they steal from each other: the driver answers
//!   [`ProcMsg::StealRequest`] from the pool's FIFO end.
//!
//! * **Termination detection.** No shared memory means no global
//!   outstanding-task counter. Instead the driver runs a double-confirm
//!   count scheme (Mattern's four-counter method shaped to this
//!   protocol): every report carries cumulative `executed` and `spawned`
//!   counters, and the job is over exactly when every task spawned has
//!   been executed — `Σ executed == Σ spawned` with the root counted as
//!   the driver's one spawn. Heartbeat snapshots are asynchronous, so a
//!   balanced-looking sum can be stale; the driver therefore confirms
//!   with fresh [`ProcMsg::Confirm`]/[`ProcMsg::ConfirmAck`] rounds and
//!   only terminates after **two consecutive rounds with identical,
//!   balanced, all-idle counts** — any task in flight between rounds
//!   perturbs the counters and voids the pair.
//!
//! * **Slot reclamation.** A worker leaving (gracefully or by crash
//!   timeout) has its Clearinghouse slot deregistered and its JobQ
//!   participation released via [`reclaim_slot`](DriverState::reclaim_slot),
//!   and the shrunken roster is broadcast so nobody keeps picking the
//!   ghost as a victim.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use phish_core::codec::WordCodec;
use phish_core::SpecStep;
use phish_macro::{
    AssignPolicy, Clearinghouse, ClearinghouseStats, JobId, JobQ, JobQStats, JobSpec,
};
use phish_net::{Clock, NetSnapshot, NodeId, RealClock, UdpConfig, UdpEndpoint};

use crate::app::{dispatch, AppCall, AppKind, AppResult, WireApp};
use crate::proto::{JobDesc, PeerEntry, ProcMsg, WorkerReport};

/// Node id 0 is the driver, always.
pub const DRIVER_NODE: u64 = 0;

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// The application to run.
    pub app: AppKind,
    /// Application argument.
    pub arg: u64,
    /// Application spawn depth (pfold).
    pub depth: u64,
    /// Job seed (worker victim-RNG streams derive from it).
    pub seed: u64,
    /// Expected worker count (0 runs the job serially in the driver).
    pub workers: usize,
    /// UDP transport configuration (recovery timers, injected faults).
    pub udp: UdpConfig,
    /// Heartbeat silence after which a worker is declared crashed.
    pub crash_deadline: Duration,
    /// Overall job timeout; `None` waits forever.
    pub job_timeout: Option<Duration>,
}

impl DriverConfig {
    /// A loopback configuration for `workers` workers running `app(arg)`.
    pub fn local(app: AppKind, arg: u64, workers: usize) -> Self {
        Self {
            app,
            arg,
            depth: 4,
            seed: 0x5EED,
            workers,
            udp: UdpConfig::lan(),
            crash_deadline: Duration::from_secs(2),
            job_timeout: Some(Duration::from_secs(120)),
        }
    }

    /// Overrides the pfold spawn depth.
    pub fn with_depth(mut self, depth: u64) -> Self {
        self.depth = depth;
        self
    }

    /// Overrides the UDP transport configuration.
    pub fn with_udp(mut self, udp: UdpConfig) -> Self {
        self.udp = udp;
        self
    }

    /// The job description sent to workers.
    pub fn job_desc(&self) -> JobDesc {
        JobDesc {
            app: self.app.as_u64(),
            arg: self.arg,
            depth: self.depth,
            seed: self.seed,
            nodes: self.workers as u64 + 1,
        }
    }
}

/// What a finished driver reports.
#[derive(Debug, Clone)]
pub struct DriverOutcome {
    /// The job's merged result.
    pub result: AppResult,
    /// The driver endpoint's traffic counters (retransmissions under
    /// loss show up here).
    pub net: NetSnapshot,
    /// Clearinghouse service counters.
    pub clearinghouse: ClearinghouseStats,
    /// JobQ service counters.
    pub jobq: JobQStats,
    /// Worker log lines relayed through the Clearinghouse's buffered I/O.
    pub log: Vec<String>,
    /// Confirmation rounds run before termination was declared.
    pub confirm_rounds: u64,
    /// Workers that departed gracefully mid-run.
    pub departed: u64,
}

/// A bound driver, ready to run.
pub struct Driver {
    ep: UdpEndpoint<ProcMsg>,
    cfg: DriverConfig,
}

impl Driver {
    /// Binds the driver's endpoint on an ephemeral loopback port.
    pub fn bind(cfg: DriverConfig) -> io::Result<Self> {
        Self::bind_addr(cfg, "127.0.0.1:0".parse().expect("loopback"))
    }

    /// Binds on a specific address (a fixed port for LAN deployments).
    pub fn bind_addr(cfg: DriverConfig, addr: SocketAddr) -> io::Result<Self> {
        let ep = UdpEndpoint::bind_addr(NodeId(DRIVER_NODE as u32), addr, cfg.udp)?;
        Ok(Self { ep, cfg })
    }

    /// The address workers must be pointed at.
    pub fn local_addr(&self) -> SocketAddr {
        self.ep.local_addr()
    }

    /// Runs the job to completion (blocking the calling thread).
    pub fn run(self) -> Result<DriverOutcome, String> {
        struct Run {
            ep: UdpEndpoint<ProcMsg>,
            cfg: DriverConfig,
        }
        impl AppCall<Result<DriverOutcome, String>> for Run {
            fn call<S: WireApp>(self) -> Result<DriverOutcome, String>
            where
                S::Output: WordCodec + PartialEq,
            {
                DriverState::<S>::new(self.ep, self.cfg).run()
            }
        }
        let app = self.cfg.app;
        dispatch(
            app,
            Run {
                ep: self.ep,
                cfg: self.cfg,
            },
        )
    }
}

/// Live bookkeeping for one registered worker.
#[derive(Debug, Default)]
struct WorkerSlot {
    /// Latest counters (heartbeat or confirm ack, whichever is newer).
    report: WorkerReport,
}

/// An in-progress confirmation round.
struct ConfirmRound {
    epoch: u64,
    /// worker → (fresh report, fresh encoded accumulator).
    acks: HashMap<u64, (WorkerReport, Vec<u64>)>,
}

struct DriverState<S: WireApp>
where
    S::Output: WordCodec + PartialEq,
{
    ep: UdpEndpoint<ProcMsg>,
    cfg: DriverConfig,
    clock: RealClock,
    jobq: JobQ,
    job: JobId,
    clearinghouse: Clearinghouse,
    live: BTreeMap<u64, WorkerSlot>,
    pool: VecDeque<S>,
    acc: S::Output,
    driver_exec: u64,
    driver_spawn: u64,
    departed_exec: u64,
    departed_spawn: u64,
    departed: u64,
    any_joined: bool,
    epoch: u64,
    round: Option<ConfirmRound>,
    /// The previous round's per-worker (executed, spawned) counts; a new
    /// round matching these exactly confirms termination.
    prev_counts: Option<BTreeMap<u64, (u64, u64)>>,
}

impl<S: WireApp> DriverState<S>
where
    S::Output: WordCodec + PartialEq,
{
    fn new(ep: UdpEndpoint<ProcMsg>, cfg: DriverConfig) -> Self {
        let mut jobq = JobQ::with_policy(AssignPolicy::RoundRobin);
        let job = jobq.submit(JobSpec::named(cfg.app.name()));
        let desc = cfg.job_desc();
        let root_words = crate::app::root_task_words(&desc).expect("valid app id");
        let root: S = S::task_from_words(&root_words).expect("root roundtrips");
        let mut pool = VecDeque::new();
        pool.push_back(root);
        Self {
            ep,
            cfg,
            clock: RealClock::new(),
            jobq,
            job,
            clearinghouse: Clearinghouse::new(),
            live: BTreeMap::new(),
            pool,
            acc: S::identity(),
            driver_exec: 0,
            // The root is the one task nobody's `spawned` counter covers;
            // counting it as the driver's spawn makes the termination
            // invariant exactly Σ executed == Σ spawned.
            driver_spawn: 1,
            departed_exec: 0,
            departed_spawn: 0,
            departed: 0,
            any_joined: false,
            epoch: 0,
            round: None,
            prev_counts: None,
        }
    }

    fn run(mut self) -> Result<DriverOutcome, String> {
        let deadline = self.cfg.job_timeout.map(|t| Instant::now() + t);
        let mut last_crash_scan = Instant::now();
        loop {
            if let Some(d) = deadline {
                if Instant::now() > d {
                    return Err(format!(
                        "job timed out ({} live workers, {} pooled tasks)",
                        self.live.len(),
                        self.pool.len()
                    ));
                }
            }
            // Drain everything pending, then block briefly for more.
            while let Some((src, msg)) = self.ep.try_recv() {
                self.handle(src, msg);
            }
            // Serial fallback: with no workers (none requested, or all
            // departed) the driver steps pooled tasks itself so the job
            // still finishes.
            if (self.any_joined || self.cfg.workers == 0) && self.live.is_empty() {
                if let Some(task) = self.pool.pop_front() {
                    self.driver_exec += 1;
                    match task.step() {
                        SpecStep::Leaf(out) => {
                            self.acc =
                                S::merge(std::mem::replace(&mut self.acc, S::identity()), out);
                        }
                        SpecStep::Expand { children, partial } => {
                            self.acc =
                                S::merge(std::mem::replace(&mut self.acc, S::identity()), partial);
                            self.driver_spawn += children.len() as u64;
                            self.pool.extend(children);
                        }
                    }
                    continue;
                }
            }
            self.recover_lost_frames();
            if last_crash_scan.elapsed() >= Duration::from_millis(100) {
                last_crash_scan = Instant::now();
                let now = self.clock.now();
                let crash_deadline = self.cfg.crash_deadline.as_nanos() as u64;
                for node in self.clearinghouse.detect_crashes_with(now, crash_deadline) {
                    self.reclaim_slot(u64::from(node.0), "crash-detected");
                }
            }
            if let Some(done) = self.check_termination() {
                return Ok(done);
            }
            if let Some((src, msg)) = self.ep.recv_timeout(Duration::from_millis(2)) {
                self.handle(src, msg);
            }
        }
    }

    /// Re-admits dead letters (grants whose destination died unacking)
    /// and reclaims peers the transport declared dead.
    fn recover_lost_frames(&mut self) {
        for (dst, msg) in self.ep.take_dead_letters() {
            if let ProcMsg::StealGrant { task } = msg {
                self.clearinghouse
                    .write_line(NodeId(dst.0), "dead-letter grant re-admitted");
                if let Some(spec) = S::task_from_words(&task) {
                    self.pool.push_back(spec);
                    self.void_round();
                }
            }
        }
        for dst in self.ep.take_dead_peers() {
            let id = u64::from(dst.0);
            if self.live.contains_key(&id) {
                self.reclaim_slot(id, "transport-dead");
            }
        }
    }

    fn handle(&mut self, src: NodeId, msg: ProcMsg) {
        match msg {
            ProcMsg::Hello { worker } => self.on_hello(src, worker),
            ProcMsg::Heartbeat { worker, report } => self.on_heartbeat(src, worker, report),
            ProcMsg::StealRequest { thief } => {
                let reply = match self.pool.pop_front() {
                    Some(task) => {
                        self.void_round();
                        ProcMsg::StealGrant {
                            task: task.task_to_words(),
                        }
                    }
                    None => ProcMsg::StealDeny,
                };
                let _ = thief; // the datagram source is authoritative
                self.ep.send(src, &reply);
            }
            ProcMsg::ConfirmAck {
                worker,
                epoch,
                report,
                acc,
            } => {
                self.clearinghouse
                    .heartbeat(NodeId(worker as u32), self.clock.now());
                if let Some(slot) = self.live.get_mut(&worker) {
                    slot.report = report;
                }
                if let Some(round) = self.round.as_mut() {
                    if round.epoch == epoch {
                        round.acks.insert(worker, (report, acc));
                    }
                }
            }
            ProcMsg::Goodbye {
                worker,
                report,
                acc,
                tasks,
            } => self.on_goodbye(src, worker, report, acc, tasks),
            ProcMsg::Spill { worker, task } => {
                let _ = worker;
                if let Some(spec) = S::task_from_words(&task) {
                    self.pool.push_back(spec);
                    self.void_round();
                }
            }
            // Messages only workers receive; stale or misrouted here.
            ProcMsg::Welcome { .. }
            | ProcMsg::Peers { .. }
            | ProcMsg::StealGrant { .. }
            | ProcMsg::StealDeny
            | ProcMsg::Confirm { .. }
            | ProcMsg::GoodbyeAck
            | ProcMsg::Done { .. } => {}
        }
    }

    fn on_hello(&mut self, src: NodeId, worker: u64) {
        if worker == DRIVER_NODE || u64::from(src.0) != worker {
            return; // malformed join
        }
        let now = self.clock.now();
        let newcomer = !self.live.contains_key(&worker);
        self.clearinghouse.register(src, now);
        if newcomer {
            // Participation accounting: each worker slot requests the job
            // from the pool, the paper's macro-level handshake.
            let _ = self.jobq.request();
            self.live.insert(worker, WorkerSlot::default());
            self.any_joined = true;
            self.void_round();
        }
        let welcome = ProcMsg::Welcome {
            job: self.cfg.job_desc(),
            peers: self.roster(),
        };
        self.ep.send(src, &welcome);
        if newcomer {
            self.broadcast_peers();
        }
    }

    fn on_heartbeat(&mut self, src: NodeId, worker: u64, report: WorkerReport) {
        let now = self.clock.now();
        if let Some(slot) = self.live.get_mut(&worker) {
            slot.report = report;
            self.clearinghouse.heartbeat(src, now);
        } else {
            // A worker we crash-detected but which is actually alive:
            // re-register it (self-healing; its counters were never
            // folded into the departed totals, so the sums stay right).
            self.clearinghouse.register(src, now);
            self.live.insert(worker, WorkerSlot { report });
            self.void_round();
            self.broadcast_peers();
        }
    }

    fn on_goodbye(
        &mut self,
        src: NodeId,
        worker: u64,
        report: WorkerReport,
        acc: Vec<u64>,
        tasks: Vec<Vec<u64>>,
    ) {
        if self.live.contains_key(&worker) {
            self.departed_exec += report.executed;
            self.departed_spawn += report.spawned;
            self.departed += 1;
            if let Some(partial) = S::acc_from_words(&acc) {
                self.acc = S::merge(std::mem::replace(&mut self.acc, S::identity()), partial);
            }
            for task in tasks {
                if let Some(spec) = S::task_from_words(&task) {
                    self.pool.push_back(spec);
                }
            }
            self.reclaim_slot(worker, "goodbye");
        }
        self.ep.send(src, &ProcMsg::GoodbyeAck);
    }

    /// Deregisters a departed worker's Clearinghouse slot, releases its
    /// JobQ participation, and broadcasts the shrunken roster — the slot
    /// is then free for a newcomer instead of leaking.
    fn reclaim_slot(&mut self, worker: u64, reason: &str) {
        if self.live.remove(&worker).is_none() {
            return;
        }
        let node = NodeId(worker as u32);
        self.clearinghouse
            .write_line(node, format!("slot reclaimed: {reason}"));
        self.clearinghouse.unregister(node);
        self.jobq.release(self.job);
        self.void_round();
        self.broadcast_peers();
    }

    /// Membership or task placement changed: any in-progress confirmation
    /// evidence is stale.
    fn void_round(&mut self) {
        self.round = None;
        self.prev_counts = None;
    }

    fn roster(&self) -> Vec<PeerEntry> {
        let mut peers = Vec::with_capacity(self.live.len() + 1);
        if let Some(me) = PeerEntry::from_addr(DRIVER_NODE, self.ep.local_addr()) {
            peers.push(me);
        }
        for id in self.live.keys() {
            if let Some(addr) = self.ep.peer_addr(NodeId(*id as u32)) {
                if let Some(entry) = PeerEntry::from_addr(*id, addr) {
                    peers.push(entry);
                }
            }
        }
        peers
    }

    fn broadcast_peers(&mut self) {
        let msg = ProcMsg::Peers {
            version: self.clearinghouse.version(),
            peers: self.roster(),
        };
        for id in self.live.keys().copied().collect::<Vec<_>>() {
            self.ep.send(NodeId(id as u32), &msg);
        }
    }

    /// Cumulative totals from the given per-worker reports.
    fn totals<'a>(&self, reports: impl Iterator<Item = &'a WorkerReport>) -> (u64, u64) {
        let mut exec = self.driver_exec + self.departed_exec;
        let mut spawn = self.driver_spawn + self.departed_spawn;
        for r in reports {
            exec += r.executed;
            spawn += r.spawned;
        }
        (exec, spawn)
    }

    /// Drives the double-confirm termination protocol; returns the
    /// outcome once two consecutive rounds agree the job is over.
    fn check_termination(&mut self) -> Option<DriverOutcome> {
        if !self.pool.is_empty() {
            return None;
        }
        // With nobody left, the counters alone decide (there is no one to
        // confirm with, and no one who could still hold a task).
        if self.live.is_empty() {
            if !(self.any_joined || self.cfg.workers == 0) {
                return None; // still waiting for the fleet to join
            }
            let (exec, spawn) = self.totals(std::iter::empty());
            if exec == spawn {
                return Some(self.finish(Vec::new()));
            }
            return None;
        }
        // Evaluate a completed round.
        if let Some(round) = &self.round {
            if round.acks.len() == self.live.len() {
                let round = self.round.take().expect("just checked");
                let all_idle = round.acks.values().all(|(r, _)| r.idle && r.queue_len == 0);
                let (exec, spawn) = self.totals(round.acks.values().map(|(r, _)| r));
                let balanced = exec == spawn;
                if all_idle && balanced && self.pool.is_empty() {
                    let counts: BTreeMap<u64, (u64, u64)> = round
                        .acks
                        .iter()
                        .map(|(w, (r, _))| (*w, (r.executed, r.spawned)))
                        .collect();
                    if self.prev_counts.as_ref() == Some(&counts) {
                        let accs: Vec<Vec<u64>> =
                            round.acks.into_values().map(|(_, acc)| acc).collect();
                        return Some(self.finish(accs));
                    }
                    self.prev_counts = Some(counts);
                    self.start_round();
                } else {
                    self.prev_counts = None;
                }
            }
            return None;
        }
        // Start a round when the heartbeat picture looks finished.
        let all_idle = self
            .live
            .values()
            .all(|s| s.report.idle && s.report.queue_len == 0);
        if !all_idle || self.ep.in_flight() > 0 {
            return None;
        }
        let (exec, spawn) = self.totals(self.live.values().map(|s| &s.report));
        if exec != spawn {
            return None;
        }
        self.start_round();
        None
    }

    fn start_round(&mut self) {
        self.epoch += 1;
        let msg = ProcMsg::Confirm { epoch: self.epoch };
        for id in self.live.keys().copied().collect::<Vec<_>>() {
            self.ep.send(NodeId(id as u32), &msg);
        }
        self.round = Some(ConfirmRound {
            epoch: self.epoch,
            acks: HashMap::new(),
        });
    }

    fn finish(&mut self, final_accs: Vec<Vec<u64>>) -> DriverOutcome {
        let mut result = std::mem::replace(&mut self.acc, S::identity());
        for words in final_accs {
            if let Some(partial) = S::acc_from_words(&words) {
                result = S::merge(result, partial);
            }
        }
        let result_words = S::acc_to_words(&result);
        let done = ProcMsg::Done {
            result: result_words.clone(),
        };
        for id in self.live.keys().copied().collect::<Vec<_>>() {
            self.ep.send(NodeId(id as u32), &done);
        }
        self.ep.quiesce(Duration::from_secs(2));
        self.jobq.complete(self.job);
        self.clearinghouse.flush_io();
        DriverOutcome {
            result: AppResult::decode(self.cfg.app, &result_words).expect("self-encoded result"),
            net: self.ep.metrics(),
            clearinghouse: self.clearinghouse.stats(),
            jobq: self.jobq.stats(),
            log: self.clearinghouse.output().to_vec(),
            confirm_rounds: self.epoch,
            departed: self.departed,
        }
    }
}
