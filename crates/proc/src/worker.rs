//! The worker process: the work-stealing kernel over a UDP substrate.
//!
//! `phish-worker` joins a driver, registers (Hello → Welcome), and then
//! runs the **same scheduling kernel as every in-process engine** —
//! [`SchedulerCore::run`] over a [`Substrate`] — so the paper's discipline
//! (LIFO execution, FIFO steals, uniformly random victims, seeded by
//! `worker_seed`) is not re-implemented, just re-plumbed:
//!
//! * local work is a `VecDeque` of spec tasks (push/pop front = LIFO
//!   execution; grants pop from the back = FIFO steal end);
//! * `try_steal` is the paper's split-phase request/grant/deny exchange
//!   over real datagrams. The thief keeps servicing its own inbound
//!   protocol while the request is in flight (answering other thieves
//!   with denials — which is what makes simultaneous mutual steals
//!   deadlock-free) and gives up after a timeout;
//! * `drain` is the housekeeping hook: heartbeats, roster updates,
//!   termination-confirmation acks, and the two shutdown paths.
//!
//! Shutdown is where a real process differs from a thread. On SIGTERM the
//! worker finishes the task in hand, waits out any steal it has in
//! flight, then sends [`ProcMsg::Goodbye`] carrying its counters, partial
//! result, and **entire spilled ready list** — the driver re-admits the
//! tasks and reclaims the Clearinghouse slot, so a departing worker costs
//! the job nothing but time. If the *driver* disappears (its datagrams go
//! unacknowledged past the retry budget), the worker exits on its own:
//! there is nobody left to give work back to.

use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

use phish_core::codec::WordCodec;
use phish_core::kernel::{
    KernelCtl, SchedulerCore, SpecSink, SpecWorkload, StealAttempt, Substrate,
};
use phish_core::{SpecTask, VictimPolicy, WorkerId};
use phish_net::{NodeId, UdpConfig, UdpEndpoint};

use crate::app::{dispatch, AppCall, AppKind, WireApp};
use crate::driver::DRIVER_NODE;
use crate::proto::{JobDesc, PeerEntry, ProcMsg, WorkerReport};

/// Worker configuration (everything a `phish-worker` process needs).
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// This worker's node id (1-based; 0 is the driver).
    pub id: u64,
    /// The driver's address.
    pub driver: SocketAddr,
    /// UDP transport configuration.
    pub udp: UdpConfig,
    /// Heartbeat period.
    pub heartbeat_interval: Duration,
    /// How long one steal request waits for its grant/denial.
    pub steal_timeout: Duration,
    /// How long to keep retrying the initial Hello before giving up.
    pub join_timeout: Duration,
}

impl WorkerConfig {
    /// Defaults for a loopback worker.
    pub fn new(id: u64, driver: SocketAddr) -> Self {
        Self {
            id,
            driver,
            udp: UdpConfig::lan(),
            heartbeat_interval: Duration::from_millis(25),
            steal_timeout: Duration::from_millis(50),
            join_timeout: Duration::from_secs(15),
        }
    }

    /// Overrides the UDP transport configuration.
    pub fn with_udp(mut self, udp: UdpConfig) -> Self {
        self.udp = udp;
        self
    }
}

/// Why the worker stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The driver declared the job complete.
    JobDone,
    /// SIGTERM: departed gracefully, ready list spilled to the driver.
    Terminated,
    /// The driver stopped acknowledging; nothing left to participate in.
    DriverGone,
    /// The driver never answered the join handshake.
    JoinFailed,
}

impl WorkerExit {
    /// A process exit code: clean exits are 0.
    pub fn code(self) -> i32 {
        match self {
            WorkerExit::JobDone | WorkerExit::Terminated => 0,
            WorkerExit::DriverGone => 3,
            WorkerExit::JoinFailed => 4,
        }
    }
}

/// Joins the driver and runs the work-stealing kernel to completion.
pub fn run_worker(cfg: WorkerConfig) -> io::Result<WorkerExit> {
    let ep = UdpEndpoint::<ProcMsg>::bind(NodeId(cfg.id as u32), cfg.udp)?;
    ep.add_peer(NodeId(DRIVER_NODE as u32), cfg.driver);
    // Join handshake: Hello until Welcome (the transport retransmits,
    // but a driver that starts *after* us needs a fresh Hello).
    let join_deadline = Instant::now() + cfg.join_timeout;
    let mut welcome: Option<(JobDesc, Vec<PeerEntry>)> = None;
    while welcome.is_none() {
        if Instant::now() > join_deadline {
            return Ok(WorkerExit::JoinFailed);
        }
        ep.send(
            NodeId(DRIVER_NODE as u32),
            &ProcMsg::Hello { worker: cfg.id },
        );
        let wait = Instant::now() + Duration::from_millis(500);
        while Instant::now() < wait {
            match ep.recv_timeout(Duration::from_millis(50)) {
                Some((_, ProcMsg::Welcome { job, peers })) => {
                    welcome = Some((job, peers));
                    break;
                }
                Some(_) => {}
                None => {}
            }
            if !ep.take_dead_peers().is_empty() {
                return Ok(WorkerExit::JoinFailed);
            }
        }
    }
    let (job, peers) = welcome.expect("joined");
    let Some(app) = AppKind::from_u64(job.app) else {
        return Ok(WorkerExit::JoinFailed);
    };

    struct Run {
        ep: UdpEndpoint<ProcMsg>,
        cfg: WorkerConfig,
        job: JobDesc,
        peers: Vec<PeerEntry>,
    }
    impl AppCall<WorkerExit> for Run {
        fn call<S: WireApp>(self) -> WorkerExit
        where
            S::Output: WordCodec + PartialEq,
        {
            let mut sub = ProcSubstrate::<S>::new(self.ep, self.cfg, &self.job, &self.peers);
            SchedulerCore::new().run(&mut sub);
            sub.exit
        }
    }
    Ok(dispatch(
        app,
        Run {
            ep,
            cfg,
            job,
            peers,
        },
    ))
}

/// The UDP substrate the kernel schedules over.
struct ProcSubstrate<S: WireApp>
where
    S::Output: WordCodec + PartialEq,
{
    ep: UdpEndpoint<ProcMsg>,
    cfg: WorkerConfig,
    ctl: KernelCtl,
    queue: VecDeque<S>,
    acc: S::Output,
    /// Live peer ids (driver included, self excluded), from the roster.
    peers: Vec<u64>,
    roster_version: u64,
    last_heartbeat: Instant,
    exit: WorkerExit,
    done: bool,
}

/// Routes one stepped task's effects into the local queue/accumulator.
struct LocalSink<'a, S: SpecTask> {
    queue: &'a mut VecDeque<S>,
    acc: &'a mut S::Output,
    spawned: u64,
}

impl<S: SpecTask> SpecSink<S> for LocalSink<'_, S> {
    fn merge(&mut self, out: S::Output) {
        *self.acc = S::merge(std::mem::replace(self.acc, S::identity()), out);
    }

    fn spawn(&mut self, children: Vec<S>) {
        self.spawned += children.len() as u64;
        // Newest at the head: LIFO execution order.
        for c in children {
            self.queue.push_front(c);
        }
    }

    fn finished(&mut self) {}
}

impl<S: WireApp> ProcSubstrate<S>
where
    S::Output: WordCodec + PartialEq,
{
    fn new(
        ep: UdpEndpoint<ProcMsg>,
        cfg: WorkerConfig,
        job: &JobDesc,
        peers: &[PeerEntry],
    ) -> Self {
        let mut sub = Self {
            ep,
            cfg,
            ctl: KernelCtl::new(
                cfg.id as WorkerId,
                job.nodes as usize,
                VictimPolicy::UniformRandom,
                job.seed,
            ),
            queue: VecDeque::new(),
            acc: S::identity(),
            peers: Vec::new(),
            roster_version: 0,
            last_heartbeat: Instant::now(),
            exit: WorkerExit::JobDone,
            done: false,
        };
        sub.apply_roster(0, peers);
        sub
    }

    fn report(&self) -> WorkerReport {
        WorkerReport {
            executed: self.ctl.stats.tasks_executed,
            spawned: self.ctl.stats.tasks_spawned,
            idle: self.queue.is_empty(),
            queue_len: self.queue.len() as u64,
        }
    }

    fn driver(&self) -> NodeId {
        NodeId(DRIVER_NODE as u32)
    }

    fn apply_roster(&mut self, version: u64, peers: &[PeerEntry]) {
        if version < self.roster_version {
            return; // stale broadcast
        }
        self.roster_version = version;
        self.peers.clear();
        for p in peers {
            if p.id != self.cfg.id {
                self.ep.add_peer(NodeId(p.id as u32), p.addr());
                self.peers.push(p.id);
            }
        }
    }

    fn heartbeat_if_due(&mut self) {
        if self.last_heartbeat.elapsed() >= self.cfg.heartbeat_interval {
            self.last_heartbeat = Instant::now();
            let msg = ProcMsg::Heartbeat {
                worker: self.cfg.id,
                report: self.report(),
            };
            self.ep.send(self.driver(), &msg);
        }
    }

    /// Handles one inbound message. Returns the grant/denial verdict when
    /// the message resolves a steal this worker has in flight.
    fn on_msg(&mut self, src: NodeId, msg: ProcMsg) -> Option<StealAttempt<S>> {
        match msg {
            ProcMsg::StealRequest { thief: _ } => {
                // FIFO steal end: the oldest task sits at the back.
                let reply = match self.queue.pop_back() {
                    Some(task) => ProcMsg::StealGrant {
                        task: task.task_to_words(),
                    },
                    None => ProcMsg::StealDeny,
                };
                self.ep.send(src, &reply);
                None
            }
            ProcMsg::StealGrant { task } => match S::task_from_words(&task) {
                Some(spec) => Some(StealAttempt::Got(spec)),
                None => Some(StealAttempt::Empty),
            },
            ProcMsg::StealDeny => Some(StealAttempt::Empty),
            ProcMsg::Peers { version, peers } => {
                self.apply_roster(version, &peers);
                None
            }
            ProcMsg::Confirm { epoch } => {
                let ack = ProcMsg::ConfirmAck {
                    worker: self.cfg.id,
                    epoch,
                    report: self.report(),
                    acc: S::acc_to_words(&self.acc),
                };
                self.ep.send(self.driver(), &ack);
                None
            }
            ProcMsg::Done { .. } => {
                self.done = true;
                self.exit = WorkerExit::JobDone;
                None
            }
            ProcMsg::Welcome { .. } => None, // duplicate join reply
            // Driver-bound messages; nothing for a worker to do.
            ProcMsg::Hello { .. }
            | ProcMsg::Heartbeat { .. }
            | ProcMsg::ConfirmAck { .. }
            | ProcMsg::Goodbye { .. }
            | ProcMsg::GoodbyeAck
            | ProcMsg::Spill { .. } => None,
        }
    }

    /// True when the driver has stopped acknowledging us.
    fn driver_gone(&mut self) -> bool {
        self.ep
            .take_dead_peers()
            .contains(&NodeId(DRIVER_NODE as u32))
    }

    /// The graceful SIGTERM path: resolve in-flight steals, spill the
    /// ready list to the driver, wait for the slot to be reclaimed.
    fn depart(&mut self) {
        // A grant could be racing toward us from an earlier request;
        // give it one steal-timeout to land so it is spilled, not lost.
        let grace = Instant::now() + self.cfg.steal_timeout;
        while Instant::now() < grace {
            if let Some((src, msg)) = self.ep.recv_timeout(Duration::from_millis(5)) {
                if let Some(StealAttempt::Got(spec)) = self.on_msg(src, msg) {
                    self.queue.push_front(spec);
                }
            }
        }
        let goodbye = ProcMsg::Goodbye {
            worker: self.cfg.id,
            report: self.report(),
            acc: S::acc_to_words(&self.acc),
            tasks: self.queue.drain(..).map(|t| t.task_to_words()).collect(),
        };
        self.ep.send(self.driver(), &goodbye);
        // Wait for the reclaim acknowledgement, still re-homing any task
        // that slips in (straggler grants) via individual spills.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            match self.ep.recv_timeout(Duration::from_millis(5)) {
                Some((_, ProcMsg::GoodbyeAck)) => break,
                Some((src, msg)) => {
                    if let Some(StealAttempt::Got(spec)) = self.on_msg(src, msg) {
                        let spill = ProcMsg::Spill {
                            worker: self.cfg.id,
                            task: spec.task_to_words(),
                        };
                        self.ep.send(self.driver(), &spill);
                    }
                }
                None => {}
            }
            if self.driver_gone() {
                break;
            }
        }
        self.ep.quiesce(Duration::from_secs(2));
        self.exit = WorkerExit::Terminated;
    }
}

impl<S: WireApp> Substrate for ProcSubstrate<S>
where
    S::Output: WordCodec + PartialEq,
{
    type Load = SpecWorkload<S>;

    fn ctl(&mut self) -> &mut KernelCtl {
        &mut self.ctl
    }

    fn done(&self) -> bool {
        self.done
    }

    fn drain(&mut self) -> ControlFlow<()> {
        while let Some((src, msg)) = self.ep.try_recv() {
            // A grant arriving outside `try_steal` is a straggler from a
            // timed-out attempt: the task is real, admit it.
            if let Some(StealAttempt::Got(spec)) = self.on_msg(src, msg) {
                self.queue.push_front(spec);
            }
        }
        if crate::signal::term_requested() {
            self.depart();
            return ControlFlow::Break(());
        }
        if self.driver_gone() {
            self.exit = WorkerExit::DriverGone;
            return ControlFlow::Break(());
        }
        self.heartbeat_if_due();
        ControlFlow::Continue(())
    }

    fn pop_local(&mut self) -> Option<S> {
        self.queue.pop_front()
    }

    fn victim_candidates(&mut self, buf: &mut Vec<WorkerId>) {
        buf.extend(self.peers.iter().map(|id| *id as WorkerId));
    }

    fn try_steal(&mut self, victim: WorkerId) -> StealAttempt<S> {
        let victim_node = NodeId(victim as u32);
        if !self
            .ep
            .send(victim_node, &ProcMsg::StealRequest { thief: self.cfg.id })
        {
            return StealAttempt::Empty; // no address for the victim
        }
        let deadline = Instant::now() + self.cfg.steal_timeout;
        while Instant::now() < deadline {
            if self.done || crate::signal::term_requested() {
                return StealAttempt::Empty;
            }
            if let Some((src, msg)) = self.ep.recv_timeout(Duration::from_millis(2)) {
                if let Some(verdict) = self.on_msg(src, msg) {
                    return verdict;
                }
            }
            self.heartbeat_if_due();
        }
        StealAttempt::Empty
    }

    fn admit(&mut self, loot: S) {
        self.queue.push_front(loot);
    }

    fn execute(&mut self, work: S) -> ControlFlow<()> {
        self.ctl.note_exec();
        let spawned = {
            let mut sink = LocalSink {
                queue: &mut self.queue,
                acc: &mut self.acc,
                spawned: 0,
            };
            <SpecWorkload<S> as phish_core::kernel::Workload>::execute(work, &mut sink);
            sink.spawned
        };
        self.ctl.note_spawn(spawned);
        ControlFlow::Continue(())
    }

    fn idle(&mut self) {
        // Real sockets: blocking in recv *is* the idle wait; a short
        // sleep here only bounds the retry rate when everyone is empty.
        std::thread::sleep(Duration::from_micros(500));
    }
}
