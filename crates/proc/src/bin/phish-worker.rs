//! `phish-worker` — one scheduling node of a multi-process job.
//!
//! Joins the driver at `--driver`, registers as node `--id`, and runs the
//! work-stealing kernel until the driver declares the job done (exit 0),
//! SIGTERM asks it to depart gracefully (exit 0), or the driver vanishes
//! (exit 3).
//!
//! ```text
//! phish-worker --driver 127.0.0.1:4242 --id 1
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;

use phish_net::{LossyConfig, UdpConfig};
use phish_proc::{run_worker, WorkerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: phish-worker --driver HOST:PORT --id N [--drop P] [--dup P] [--fault-seed S]"
    );
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        usage()
    })
}

fn main() -> ExitCode {
    let mut driver: Option<SocketAddr> = None;
    let mut id: Option<u64> = None;
    let mut drop_prob = 0.0f64;
    let mut dup_prob = 0.0f64;
    let mut fault_seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--driver" => driver = Some(parse(&value("--driver"), "--driver")),
            "--id" => id = Some(parse(&value("--id"), "--id")),
            "--drop" => drop_prob = parse(&value("--drop"), "--drop"),
            "--dup" => dup_prob = parse(&value("--dup"), "--dup"),
            "--fault-seed" => fault_seed = parse(&value("--fault-seed"), "--fault-seed"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    let (Some(driver), Some(id)) = (driver, id) else {
        eprintln!("--driver and --id are required");
        usage()
    };
    if id == 0 {
        eprintln!("--id 0 is the driver; workers are 1-based");
        return ExitCode::from(2);
    }
    phish_proc::signal::install_term_handler();
    let mut udp = UdpConfig::lan();
    if drop_prob > 0.0 || dup_prob > 0.0 {
        let mut faults = LossyConfig::dropping(drop_prob, fault_seed ^ id);
        faults.dup_prob = dup_prob;
        udp = udp.with_faults(faults);
    }
    let cfg = WorkerConfig::new(id, driver).with_udp(udp);
    match run_worker(cfg) {
        Ok(exit) => {
            eprintln!("phish-worker {id}: {exit:?}");
            ExitCode::from(exit.code() as u8)
        }
        Err(e) => {
            eprintln!("phish-worker {id}: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
