//! `phishd` — the job driver daemon.
//!
//! Binds a UDP endpoint, waits for `--workers` workers to join (or, with
//! `--spawn`, launches them itself), runs the job, prints the result.
//!
//! ```text
//! phishd --app fib --arg 20 --workers 4 --spawn
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use phish_net::{LossyConfig, UdpConfig};
use phish_proc::{AppKind, Deployment, Driver, DriverConfig};

struct Args {
    app: AppKind,
    arg: u64,
    depth: u64,
    workers: usize,
    spawn: bool,
    port: u16,
    seed: u64,
    drop_prob: f64,
    fault_seed: u64,
    timeout_secs: u64,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: phishd --app fib|pfold --arg N [--depth D] [--workers N] [--spawn]\n\
         \x20             [--port P] [--seed S] [--drop P] [--fault-seed S]\n\
         \x20             [--timeout SECS] [--verbose]\n\
         \n\
         \x20 --spawn      launch the workers locally (otherwise start\n\
         \x20              `phish-worker --driver <addr> --id <1..N>` yourself)\n\
         \x20 --port 0     ephemeral port (the bound address is printed)\n\
         \x20 --drop       per-datagram drop probability injected at the driver"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut out = Args {
        app: AppKind::Fib,
        arg: 20,
        depth: 4,
        workers: 4,
        spawn: false,
        port: 0,
        seed: 0x5EED,
        drop_prob: 0.0,
        fault_seed: 7,
        timeout_secs: 120,
        verbose: false,
    };
    let mut args = std::env::args().skip(1);
    let mut app_set = false;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--app" => {
                let name = value("--app");
                out.app = AppKind::from_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown app {name:?} (want fib or pfold)");
                    usage()
                });
                app_set = true;
            }
            "--arg" => out.arg = parse(&value("--arg"), "--arg"),
            "--depth" => out.depth = parse(&value("--depth"), "--depth"),
            "--workers" => out.workers = parse(&value("--workers"), "--workers"),
            "--spawn" => out.spawn = true,
            "--port" => out.port = parse(&value("--port"), "--port"),
            "--seed" => out.seed = parse(&value("--seed"), "--seed"),
            "--drop" => out.drop_prob = parse(&value("--drop"), "--drop"),
            "--fault-seed" => out.fault_seed = parse(&value("--fault-seed"), "--fault-seed"),
            "--timeout" => out.timeout_secs = parse(&value("--timeout"), "--timeout"),
            "--verbose" => out.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if !app_set {
        eprintln!("--app is required");
        usage();
    }
    out
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {flag}");
        usage()
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut udp = UdpConfig::lan();
    if args.drop_prob > 0.0 {
        udp = udp.with_faults(LossyConfig::dropping(args.drop_prob, args.fault_seed));
    }
    let cfg = DriverConfig {
        app: args.app,
        arg: args.arg,
        depth: args.depth,
        seed: args.seed,
        workers: args.workers,
        udp,
        crash_deadline: Duration::from_secs(2),
        job_timeout: Some(Duration::from_secs(args.timeout_secs)),
    };
    let outcome = if args.spawn {
        let running = match Deployment::local(args.app, args.arg, args.workers)
            .with_config(cfg)
            .launch()
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("phishd: launch failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "phishd: driver on {} with {} spawned workers",
            running.driver_addr(),
            running.worker_count()
        );
        match running.wait() {
            Ok(outcome) => outcome.driver,
            Err(e) => {
                eprintln!("phishd: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let addr: SocketAddr = SocketAddr::from(([127, 0, 0, 1], args.port));
        let driver = match Driver::bind_addr(cfg, addr) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("phishd: bind failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "phishd: waiting for {} workers on {}",
            args.workers,
            driver.local_addr()
        );
        match driver.run() {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("phishd: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!("{}", outcome.result.display());
    if args.verbose {
        eprintln!(
            "phishd: net: sent={} delivered={} retransmissions={} dropped={}",
            outcome.net.messages_sent,
            outcome.net.messages_delivered,
            outcome.net.retransmissions,
            outcome.net.messages_dropped
        );
        eprintln!(
            "phishd: clearinghouse: registrations={} unregistrations={} heartbeats={}",
            outcome.clearinghouse.registrations,
            outcome.clearinghouse.unregistrations,
            outcome.clearinghouse.heartbeats
        );
        eprintln!(
            "phishd: confirm_rounds={} departed={}",
            outcome.confirm_rounds, outcome.departed
        );
        for line in &outcome.log {
            eprintln!("phishd: log: {line}");
        }
    }
    ExitCode::SUCCESS
}
