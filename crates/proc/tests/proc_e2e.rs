//! End-to-end tests: a real driver plus real `phish-worker` OS processes
//! exchanging real datagrams over loopback UDP.
//!
//! These are the acceptance tests for the process runtime: results must
//! be **bit-identical** to the in-process engines, injected datagram loss
//! must be absorbed by the transport (visible only as retransmission
//! counters), and a SIGTERM'd worker must depart without losing a task.

use std::time::Duration;

use phish_apps::{FibSpec, PfoldSpec};
use phish_core::{run_serial, SchedulerConfig, SpecEngine};
use phish_net::{LossyConfig, UdpConfig};
use phish_proc::{AppKind, AppResult, Deployment, DriverConfig};

/// The worker binary cargo built alongside this test.
const WORKER_BIN: &str = env!("CARGO_BIN_EXE_phish-worker");

fn local(app: AppKind, arg: u64, workers: usize) -> Deployment {
    Deployment::local(app, arg, workers).with_worker_bin(WORKER_BIN)
}

#[test]
fn fib_across_five_processes_matches_in_process_engines() {
    let n = 18;
    let outcome = local(AppKind::Fib, n, 4).run().expect("cluster run");
    let serial = run_serial(FibSpec { n });
    let (engine, _) = SpecEngine::run(SchedulerConfig::paper(4), FibSpec { n });
    assert_eq!(outcome.driver.result, AppResult::Fib(serial));
    assert_eq!(outcome.driver.result, AppResult::Fib(engine));
    // Every worker that ran exited cleanly after the driver's Done.
    for (i, code) in outcome.worker_exits.iter().enumerate() {
        assert_eq!(*code, Some(0), "worker {} exit", i + 1);
    }
    // The macro services saw the whole fleet come and go.
    assert_eq!(outcome.driver.clearinghouse.registrations, 4);
    assert!(outcome.driver.confirm_rounds >= 2, "double-confirm ran");
}

#[test]
fn pfold_across_five_processes_matches_serial_histogram() {
    let depth = 6;
    let outcome = local(AppKind::Pfold, 12, 4)
        .with_config(DriverConfig::local(AppKind::Pfold, 12, 4).with_depth(depth))
        .run()
        .expect("cluster run");
    let serial = run_serial(PfoldSpec::new(12, depth as usize));
    assert_eq!(outcome.driver.result, AppResult::Pfold(serial));
}

#[test]
fn injected_loss_is_absorbed_exactly_once() {
    // ~8% of every datagram (both directions: the driver's faults are
    // mirrored into the workers' command lines by the harness) dropped at
    // send time; the run must still produce the exact answer, with the
    // loss visible only as retransmissions.
    let n = 16;
    let cfg = DriverConfig::local(AppKind::Fib, n, 4)
        .with_udp(UdpConfig::lan().with_faults(LossyConfig::dropping(0.08, 0xBAD)));
    let outcome = local(AppKind::Fib, n, 4)
        .with_config(cfg)
        .run()
        .expect("lossy cluster run");
    assert_eq!(
        outcome.driver.result,
        AppResult::Fib(run_serial(FibSpec { n }))
    );
    let net = outcome.driver.net;
    assert!(net.messages_dropped > 0, "faults actually fired: {net:?}");
    assert!(
        net.retransmissions > 0,
        "loss shows up as retransmissions: {net:?}"
    );
}

#[test]
fn sigterm_mid_run_departs_gracefully_without_losing_tasks() {
    // A job big enough (a few million tree nodes) to still be in flight
    // when the signal lands.
    let n = 31;
    let mut running = local(AppKind::Fib, n, 4).launch().expect("launch");
    std::thread::sleep(Duration::from_millis(120));
    running.kill_worker(2).expect("SIGTERM worker 3");
    let outcome = running.wait().expect("run completes without worker 3");
    // Exactly-once despite the departure: the spilled ready list was
    // re-admitted, nothing double-counted.
    assert_eq!(
        outcome.driver.result,
        AppResult::Fib(run_serial(FibSpec { n }))
    );
    // The departed worker's Clearinghouse slot was reclaimed.
    assert!(
        outcome.driver.departed >= 1,
        "worker departed mid-run: {:?}",
        outcome.driver
    );
    assert!(
        outcome.driver.clearinghouse.unregistrations >= 1,
        "slot reclaimed: {:?}",
        outcome.driver.clearinghouse
    );
    // SIGTERM is a *clean* exit for a worker.
    assert_eq!(outcome.worker_exits[2], Some(0));
}

#[test]
fn zero_workers_falls_back_to_serial_driver() {
    let n = 12;
    let outcome = local(AppKind::Fib, n, 0).run().expect("serial fallback");
    assert_eq!(
        outcome.driver.result,
        AppResult::Fib(run_serial(FibSpec { n }))
    );
    assert!(outcome.worker_exits.is_empty());
}
