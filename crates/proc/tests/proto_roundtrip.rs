//! Property tests: every [`ProcMsg`] variant round-trips through the
//! `phish-core::codec` word stream and the byte framing the UDP
//! transport actually puts on the wire.

use phish_net::WireCodec;
use phish_proc::proto::{from_words, to_words, JobDesc, PeerEntry, ProcMsg, WorkerReport};
use proptest::prelude::*;

fn words() -> BoxedStrategy<Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..8).boxed()
}

fn peer() -> BoxedStrategy<PeerEntry> {
    (any::<u64>(), any::<u32>(), any::<u16>())
        .prop_map(|(id, ip, port)| PeerEntry { id, ip, port })
        .boxed()
}

fn peers() -> BoxedStrategy<Vec<PeerEntry>> {
    prop::collection::vec(peer(), 0..6).boxed()
}

fn job() -> BoxedStrategy<JobDesc> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(app, arg, depth, seed, nodes)| JobDesc {
            app,
            arg,
            depth,
            seed,
            nodes,
        })
        .boxed()
}

fn report() -> BoxedStrategy<WorkerReport> {
    (any::<u64>(), any::<u64>(), any::<bool>(), any::<u64>())
        .prop_map(|(executed, spawned, idle, queue_len)| WorkerReport {
            executed,
            spawned,
            idle,
            queue_len,
        })
        .boxed()
}

/// A strategy producing all thirteen protocol variants.
fn msg() -> BoxedStrategy<ProcMsg> {
    prop_oneof![
        any::<u64>().prop_map(|worker| ProcMsg::Hello { worker }),
        (job(), peers()).prop_map(|(job, peers)| ProcMsg::Welcome { job, peers }),
        (any::<u64>(), peers()).prop_map(|(version, peers)| ProcMsg::Peers { version, peers }),
        (any::<u64>(), report()).prop_map(|(worker, report)| ProcMsg::Heartbeat { worker, report }),
        any::<u64>().prop_map(|thief| ProcMsg::StealRequest { thief }),
        words().prop_map(|task| ProcMsg::StealGrant { task }),
        Just(ProcMsg::StealDeny),
        any::<u64>().prop_map(|epoch| ProcMsg::Confirm { epoch }),
        (any::<u64>(), any::<u64>(), report(), words()).prop_map(|(worker, epoch, report, acc)| {
            ProcMsg::ConfirmAck {
                worker,
                epoch,
                report,
                acc,
            }
        }),
        (
            any::<u64>(),
            report(),
            words(),
            prop::collection::vec(words(), 0..4)
        )
            .prop_map(|(worker, report, acc, tasks)| ProcMsg::Goodbye {
                worker,
                report,
                acc,
                tasks,
            }),
        Just(ProcMsg::GoodbyeAck),
        (any::<u64>(), words()).prop_map(|(worker, task)| ProcMsg::Spill { worker, task }),
        words().prop_map(|result| ProcMsg::Done { result }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_message_roundtrips_through_wire_bytes(m in msg()) {
        let bytes = m.encode_bytes();
        prop_assert_eq!(bytes.len() % 8, 0, "wire frames are whole little-endian words");
        prop_assert_eq!(ProcMsg::decode_bytes(&bytes), Some(m));
    }

    #[test]
    fn every_message_roundtrips_through_codec_words(m in msg()) {
        let words = to_words(&m);
        prop_assert_eq!(from_words::<ProcMsg>(&words), Some(m));
    }

    #[test]
    fn truncated_frames_never_decode_to_a_message(m in msg()) {
        let bytes = m.encode_bytes();
        // Chopping any non-zero number of trailing bytes must fail the
        // decode (either the length check or an exhausted reader), never
        // silently yield a different message.
        for cut in 1..bytes.len().min(24) {
            let truncated = &bytes[..bytes.len() - cut];
            prop_assert!(
                ProcMsg::decode_bytes(truncated).is_none(),
                "truncated frame decoded"
            );
        }
    }

    #[test]
    fn report_and_job_structs_roundtrip(r in report(), j in job(), p in peer()) {
        prop_assert_eq!(from_words::<WorkerReport>(&to_words(&r)), Some(r));
        prop_assert_eq!(from_words::<JobDesc>(&to_words(&j)), Some(j));
        prop_assert_eq!(from_words::<PeerEntry>(&to_words(&p)), Some(p));
    }
}

/// Pins one deterministic exemplar of every variant so a strategy change
/// can never silently stop covering one of them.
#[test]
fn all_thirteen_variants_roundtrip() {
    let report = WorkerReport {
        executed: 5,
        spawned: 5,
        idle: true,
        queue_len: 0,
    };
    let job = JobDesc {
        app: 1,
        arg: 20,
        depth: 4,
        seed: 0x5EED,
        nodes: 5,
    };
    let peer = PeerEntry {
        id: 1,
        ip: 0x7F00_0001,
        port: 4242,
    };
    let exemplars = vec![
        ProcMsg::Hello { worker: 1 },
        ProcMsg::Welcome {
            job,
            peers: vec![peer],
        },
        ProcMsg::Peers {
            version: 3,
            peers: vec![peer],
        },
        ProcMsg::Heartbeat { worker: 1, report },
        ProcMsg::StealRequest { thief: 2 },
        ProcMsg::StealGrant { task: vec![9, 9] },
        ProcMsg::StealDeny,
        ProcMsg::Confirm { epoch: 7 },
        ProcMsg::ConfirmAck {
            worker: 1,
            epoch: 7,
            report,
            acc: vec![55],
        },
        ProcMsg::Goodbye {
            worker: 1,
            report,
            acc: vec![55],
            tasks: vec![vec![9], vec![8]],
        },
        ProcMsg::GoodbyeAck,
        ProcMsg::Spill {
            worker: 1,
            task: vec![9],
        },
        ProcMsg::Done { result: vec![6765] },
    ];
    assert_eq!(exemplars.len(), 13, "one exemplar per variant");
    for m in exemplars {
        let bytes = m.encode_bytes();
        assert_eq!(ProcMsg::decode_bytes(&bytes), Some(m));
    }
}
