//! The `nqueens` application.
//!
//! "The nqueens application counts by backtrack search the number of ways
//! of arranging n queens on an n × n chess board such that no queen can
//! capture any other." (§4)
//!
//! Backtrack search is the canonical dynamic-parallelism workload (the
//! paper credits DIB, a distributed backtracking system, as the inspiration
//! for idle-initiated scheduling). Unlike fib, each node does real work
//! (conflict checks), so the serial slowdown is small — 1.12 in Table 1.

use phish_core::{Cont, SpecStep, SpecTask, TaskFn, WordCodec, WordReader, Worker};

/// Search state at one row: column/diagonal occupancy as bitmasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Board {
    n: u32,
    row: u32,
    cols: u32,
    diag_l: u32,
    diag_r: u32,
}

impl Board {
    fn fresh(n: u32) -> Self {
        Self {
            n,
            row: 0,
            cols: 0,
            diag_l: 0,
            diag_r: 0,
        }
    }

    /// Bitmask of columns where a queen can be placed in the current row.
    #[inline]
    fn free(&self) -> u32 {
        !(self.cols | self.diag_l | self.diag_r) & ((1 << self.n) - 1)
    }

    /// The board after placing a queen on column-bit `bit`.
    #[inline]
    fn place(&self, bit: u32) -> Board {
        Board {
            n: self.n,
            row: self.row + 1,
            cols: self.cols | bit,
            diag_l: (self.diag_l | bit) << 1,
            diag_r: (self.diag_r | bit) >> 1,
        }
    }
}

fn count_from(b: Board) -> u64 {
    if b.row == b.n {
        return 1;
    }
    let mut free = b.free();
    let mut count = 0;
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        count += count_from(b.place(bit));
    }
    count
}

/// The best serial implementation: bitmask backtracking.
pub fn nqueens_serial(n: u32) -> u64 {
    assert!(n <= 30, "board too large for 32-bit masks");
    count_from(Board::fresh(n))
}

/// Default spawn depth: rows above this depth become parallel tasks, the
/// subtree below is searched serially. The paper's 1.12 slowdown implies a
/// grain far coarser than one task per node.
pub const DEFAULT_SPAWN_DEPTH: u32 = 3;

/// Parallel nqueens in continuation-passing style. Nodes at depth
/// < `spawn_depth` spawn one task per child placement and join their
/// counts; deeper nodes run the serial search.
pub fn nqueens_task(n: u32, spawn_depth: u32, out: Cont) -> TaskFn<u64> {
    board_task(Board::fresh(n), spawn_depth, out)
}

fn board_task(b: Board, spawn_depth: u32, out: Cont) -> TaskFn<u64> {
    Box::new(move |w: &mut Worker<u64>| {
        if b.row >= spawn_depth || b.row == b.n {
            w.post(out, count_from(b));
            return;
        }
        let mut free = b.free();
        if free == 0 {
            w.post(out, 0);
            return;
        }
        let mut bits = Vec::new();
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            bits.push(bit);
        }
        let cell = w.join(bits.len(), move |vals, w| {
            w.post(out, vals.into_iter().sum());
        });
        for (i, bit) in bits.into_iter().enumerate() {
            let cont = Cont::slot(cell, i as u32);
            let child = b.place(bit);
            w.spawn(move |w| board_task(child, spawn_depth, cont)(w));
        }
    })
}

/// Spec form of nqueens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NQueensSpec {
    board: Board,
    spawn_depth: u32,
}

impl NQueensSpec {
    /// The root spec for an `n × n` board with the given spawn depth.
    pub fn new(n: u32, spawn_depth: u32) -> Self {
        assert!(n <= 30, "board too large for 32-bit masks");
        Self {
            board: Board::fresh(n),
            spawn_depth,
        }
    }
}

impl SpecTask for NQueensSpec {
    type Output = u64;

    fn step(self) -> SpecStep<Self> {
        let b = self.board;
        if b.row >= self.spawn_depth || b.row == b.n {
            return SpecStep::Leaf(count_from(b));
        }
        let mut free = b.free();
        let mut children = Vec::new();
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            children.push(NQueensSpec {
                board: b.place(bit),
                spawn_depth: self.spawn_depth,
            });
        }
        SpecStep::Expand {
            children,
            partial: 0,
        }
    }

    fn identity() -> u64 {
        0
    }

    fn merge(a: u64, b: u64) -> u64 {
        a + b
    }

    fn virtual_cost(&self) -> u64 {
        // Leaves search a subtree serially; interior nodes just fan out.
        if self.board.row >= self.spawn_depth {
            // Subtree work shrinks with depth; rough calibration.
            50_000
        } else {
            500
        }
    }
}

impl WordCodec for NQueensSpec {
    fn encode(&self, out: &mut Vec<u64>) {
        let b = self.board;
        for w in [b.n, b.row, b.cols, b.diag_l, b.diag_r, self.spawn_depth] {
            out.push(u64::from(w));
        }
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        let mut next = || r.word().and_then(|w| u32::try_from(w).ok());
        let (n, row, cols, diag_l, diag_r, spawn_depth) =
            (next()?, next()?, next()?, next()?, next()?, next()?);
        if n > 30 || row > n {
            return None;
        }
        Some(NQueensSpec {
            board: Board {
                n,
                row,
                cols,
                diag_l,
                diag_r,
            },
            spawn_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phish_core::{run_serial, Engine, SchedulerConfig, SpecEngine};

    /// Known solution counts for n = 0..=12.
    const SOLUTIONS: [u64; 13] = [1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200];

    #[test]
    fn serial_matches_known_counts() {
        for (n, &expect) in SOLUTIONS.iter().enumerate() {
            assert_eq!(nqueens_serial(n as u32), expect, "n = {n}");
        }
    }

    #[test]
    fn cps_matches_serial() {
        for workers in [1, 4] {
            let (v, _) = Engine::run(
                SchedulerConfig::paper(workers),
                nqueens_task(9, DEFAULT_SPAWN_DEPTH, Cont::ROOT),
            );
            assert_eq!(v, SOLUTIONS[9]);
        }
    }

    #[test]
    fn cps_spawn_depth_zero_is_fully_serial() {
        let (v, stats) = Engine::run(SchedulerConfig::paper(1), nqueens_task(8, 0, Cont::ROOT));
        assert_eq!(v, SOLUTIONS[8]);
        assert_eq!(stats.tasks_executed, 1, "depth 0 must not spawn");
    }

    #[test]
    fn deeper_spawning_creates_more_tasks() {
        let (_, shallow) = Engine::run(SchedulerConfig::paper(1), nqueens_task(8, 1, Cont::ROOT));
        let (_, deep) = Engine::run(SchedulerConfig::paper(1), nqueens_task(8, 3, Cont::ROOT));
        assert!(deep.tasks_executed > shallow.tasks_executed * 5);
    }

    #[test]
    fn spec_matches_serial() {
        let spec = NQueensSpec::new(9, DEFAULT_SPAWN_DEPTH);
        assert_eq!(run_serial(spec), SOLUTIONS[9]);
        let (v, stats) = SpecEngine::run(SchedulerConfig::paper(4), spec);
        assert_eq!(v, SOLUTIONS[9]);
        assert!(stats.tasks_executed > 100);
    }

    #[test]
    fn spec_codec_roundtrips_mid_search() {
        // Encode a spec part-way down the tree, not just the root.
        let root = NQueensSpec::new(8, 3);
        let SpecStep::Expand { children, .. } = root.step() else {
            panic!("root must expand");
        };
        for spec in children {
            let mut words = Vec::new();
            spec.encode(&mut words);
            let mut r = WordReader::new(&words);
            assert_eq!(NQueensSpec::decode(&mut r), Some(spec));
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn spec_codec_rejects_garbage() {
        let words = [99u64, 0, 0, 0, 0, 3]; // n = 99 > 30
        let mut r = WordReader::new(&words);
        assert_eq!(NQueensSpec::decode(&mut r), None);
    }

    #[test]
    fn board_free_mask_excludes_attacks() {
        let b = Board::fresh(4);
        assert_eq!(b.free(), 0b1111);
        // Queen at column 1, row 0. Row 1: column 1 blocked (file),
        // columns 0 and 2 blocked (diagonals); only column 3 free.
        let b = b.place(0b0010);
        assert_eq!(b.free(), 0b1000);
    }
}
