#![warn(missing_docs)]

//! # phish-apps — the paper's four applications
//!
//! §4 of Blumofe & Park evaluates Phish with "2 toy applications and 2 real
//! applications":
//!
//! * [`fib`] — naive doubly-recursive Fibonacci; tiny grain, the scheduling
//!   overhead stress test (serial slowdown 5.90 in Table 1).
//! * [`nqueens`] — backtrack search counting queen placements (1.12).
//! * [`pfold`] — lattice polymer folding with an energy histogram; the
//!   10-million-task workload behind Figures 4–5 and Table 2.
//! * [`ray`] — a Whitted ray tracer; coarse grain, near-zero slowdown
//!   (1.04).
//!
//! Every application comes in three forms with identical semantics:
//! a **best-serial** implementation (plain recursion — the Table 1
//! denominator), a **continuation-passing parallel** implementation for
//! [`phish_core::Engine`], and a **spec** form ([`phish_core::SpecTask`])
//! for the fault-tolerant engine and the discrete-event simulator. Tests in
//! each module assert all three agree.

pub mod fib;
pub mod nqueens;
pub mod pfold;
pub mod pfold3d;
pub mod ray;

pub use fib::{fib_serial, fib_task, FibSpec};
pub use nqueens::{nqueens_serial, nqueens_task, NQueensSpec};
pub use pfold::{
    count_walks, merge_histograms, parse_hp, pfold_hp_serial, pfold_serial, pfold_task, Histogram,
    Monomer, PfoldHpSpec, PfoldSpec, Walk,
};
pub use pfold3d::{pfold3d_serial, pfold3d_task, Pfold3dSpec, Walk3};
pub use ray::{benchmark_scene, render_serial, render_task, RaySpec};
