//! Minimal 3-vector algebra for the ray tracer.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component vector of `f64` (also used for RGB colors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x / red.
    pub x: f64,
    /// y / green.
    pub y: f64,
    /// z / blue.
    pub z: f64,
}

/// Construction shorthand.
pub const fn v3(x: f64, y: f64, z: f64) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = v3(0.0, 0.0, 0.0);
    /// The all-ones vector (white).
    pub const ONE: Vec3 = v3(1.0, 1.0, 1.0);

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        v3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction. Panics on the zero vector in debug
    /// builds (NaN otherwise).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 0.0, "normalizing zero vector");
        self / len
    }

    /// Componentwise product (color modulation).
    #[inline]
    pub fn hadamard(self, o: Vec3) -> Vec3 {
        v3(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Reflection of `self` about unit normal `n`.
    #[inline]
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// Componentwise clamp to `[0, 1]`.
    #[inline]
    pub fn clamp01(self) -> Vec3 {
        v3(
            self.x.clamp(0.0, 1.0),
            self.y.clamp(0.0, 1.0),
            self.z.clamp(0.0, 1.0),
        )
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        v3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        v3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        v3(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        v3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        v3(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Vec3, b: Vec3) -> bool {
        (a - b).length() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = v3(1.0, 2.0, 3.0);
        let b = v3(4.0, 5.0, 6.0);
        assert!(close(a + b, v3(5.0, 7.0, 9.0)));
        assert!(close(b - a, v3(3.0, 3.0, 3.0)));
        assert!(close(a * 2.0, v3(2.0, 4.0, 6.0)));
        assert!(close(a / 2.0, v3(0.5, 1.0, 1.5)));
        assert!(close(-a, v3(-1.0, -2.0, -3.0)));
    }

    #[test]
    fn dot_and_cross() {
        let x = v3(1.0, 0.0, 0.0);
        let y = v3(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert!(close(x.cross(y), v3(0.0, 0.0, 1.0)));
        assert_eq!(v3(1.0, 2.0, 3.0).dot(v3(4.0, 5.0, 6.0)), 32.0);
    }

    #[test]
    fn normalize_gives_unit_length() {
        let n = v3(3.0, 4.0, 0.0).normalized();
        assert!((n.length() - 1.0).abs() < 1e-12);
        assert!(close(n, v3(0.6, 0.8, 0.0)));
    }

    #[test]
    fn reflection_about_normal() {
        // Incoming straight down onto a floor reflects straight up.
        let down = v3(0.0, -1.0, 0.0);
        let up = v3(0.0, 1.0, 0.0);
        assert!(close(down.reflect(up), up));
        // 45-degree bounce.
        let diag = v3(1.0, -1.0, 0.0).normalized();
        let out = diag.reflect(up);
        assert!(close(out, v3(1.0, 1.0, 0.0).normalized()));
    }

    #[test]
    fn clamp01_saturates() {
        assert!(close(v3(-0.5, 0.5, 1.5).clamp01(), v3(0.0, 0.5, 1.0)));
    }

    #[test]
    fn hadamard_modulates() {
        assert!(close(
            v3(0.5, 1.0, 0.0).hadamard(v3(1.0, 0.5, 9.0)),
            v3(0.5, 0.5, 0.0)
        ));
    }
}
