//! The `ray` application: a Whitted-style ray tracer.
//!
//! "The ray-tracing application renders images by tracing light rays around
//! a mathematical model of a scene." (§4) Its coarse grain — one task per
//! band of image rows, each tracing thousands of rays — is why Table 1
//! reports almost no serial slowdown for `ray` (1.04 under Phish).

pub mod geometry;
pub mod render;
pub mod scene;
pub mod vec3;

pub use geometry::{diffuse_at, white_light, Hit, Light, Material, Object, Ray, Shape};
pub use render::{
    assemble, closest_hit, render_rows, render_serial, render_task, trace, Band, Pixel, RaySpec,
};
pub use scene::{benchmark_scene, Camera, Scene};
pub use vec3::{v3, Vec3};
