//! Scene description and the standard benchmark scene.

use super::geometry::{white_light, Light, Material, Object, Shape};
use super::vec3::{v3, Vec3};

/// A renderable scene: objects, lights, background, camera.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Objects, intersected in order.
    pub objects: Vec<Object>,
    /// Point lights.
    pub lights: Vec<Light>,
    /// Color returned by rays that escape.
    pub background: Vec3,
    /// Constant ambient term.
    pub ambient: Vec3,
    /// Maximum reflection recursion depth.
    pub max_depth: u32,
}

/// A pinhole camera.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    /// Eye position.
    pub eye: Vec3,
    /// Basis: right, up, forward (orthonormal).
    right: Vec3,
    up: Vec3,
    forward: Vec3,
    /// Half-width of the image plane at unit distance.
    half_w: f64,
    /// Half-height of the image plane at unit distance.
    half_h: f64,
}

impl Camera {
    /// A camera at `eye` looking at `target` with the given vertical field
    /// of view (radians) and image aspect ratio (width/height).
    pub fn look_at(eye: Vec3, target: Vec3, fov_y: f64, aspect: f64) -> Self {
        let forward = (target - eye).normalized();
        let world_up = v3(0.0, 1.0, 0.0);
        let right = world_up.cross(forward).normalized();
        let up = forward.cross(right);
        let half_h = (fov_y / 2.0).tan();
        Self {
            eye,
            right,
            up,
            forward,
            half_w: half_h * aspect,
            half_h,
        }
    }

    /// The primary ray through pixel `(px, py)` of a `w × h` image
    /// (pixel centers; y grows downward).
    pub fn primary_ray(&self, px: u32, py: u32, w: u32, h: u32) -> super::geometry::Ray {
        let sx = ((px as f64 + 0.5) / w as f64) * 2.0 - 1.0;
        let sy = 1.0 - ((py as f64 + 0.5) / h as f64) * 2.0;
        let dir = (self.forward + self.right * (sx * self.half_w) + self.up * (sy * self.half_h))
            .normalized();
        super::geometry::Ray {
            origin: self.eye,
            dir,
        }
    }
}

/// The standard benchmark scene: a checkerboard floor, a 3×3 grid of shiny
/// spheres, one large mirror sphere, and two lights — the kind of scene the
/// paper's `ray my-scene` command would have rendered.
pub fn benchmark_scene() -> (Scene, Camera) {
    let mut objects = Vec::new();
    // Floor.
    objects.push(Object {
        shape: Shape::Plane {
            point: v3(0.0, 0.0, 0.0),
            normal: v3(0.0, 1.0, 0.0),
        },
        material: Material::matte(v3(0.9, 0.9, 0.9)),
        check: Some(v3(0.15, 0.15, 0.2)),
    });
    // Grid of small spheres with varying colors and reflectivity.
    for i in 0..3 {
        for j in 0..3 {
            let x = (i as f64 - 1.0) * 2.2;
            let z = 6.0 + (j as f64 - 1.0) * 2.2;
            let color = v3(
                0.3 + 0.3 * i as f64,
                0.9 - 0.25 * j as f64,
                0.4 + 0.2 * ((i + j) % 3) as f64,
            );
            objects.push(Object {
                shape: Shape::Sphere {
                    center: v3(x, 0.75, z),
                    radius: 0.75,
                },
                material: Material::shiny(color, 0.1 + 0.08 * ((i * 3 + j) as f64)),
                check: None,
            });
        }
    }
    // Big mirror sphere behind the grid.
    objects.push(Object {
        shape: Shape::Sphere {
            center: v3(0.0, 2.5, 11.0),
            radius: 2.5,
        },
        material: Material::shiny(v3(0.95, 0.95, 0.95), 0.8),
        check: None,
    });
    let scene = Scene {
        objects,
        lights: vec![
            white_light(v3(-6.0, 8.0, 0.0), 0.9),
            white_light(v3(5.0, 6.0, 2.0), 0.5),
        ],
        background: v3(0.25, 0.45, 0.75),
        ambient: v3(0.08, 0.08, 0.08),
        max_depth: 4,
    };
    let camera = Camera::look_at(v3(0.0, 2.5, -4.0), v3(0.0, 1.0, 6.0), 0.9, 1.0);
    (scene, camera)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_scene_is_well_formed() {
        let (scene, _) = benchmark_scene();
        assert_eq!(scene.objects.len(), 11, "floor + 9 spheres + mirror");
        assert_eq!(scene.lights.len(), 2);
        assert!(scene.max_depth >= 1);
    }

    #[test]
    fn camera_center_ray_points_forward() {
        let cam = Camera::look_at(Vec3::ZERO, v3(0.0, 0.0, 10.0), 0.9, 1.0);
        let r = cam.primary_ray(50, 50, 101, 101);
        assert!((r.dir - v3(0.0, 0.0, 1.0)).length() < 1e-9);
    }

    #[test]
    fn camera_corner_rays_diverge() {
        let cam = Camera::look_at(Vec3::ZERO, v3(0.0, 0.0, 10.0), 0.9, 1.0);
        let tl = cam.primary_ray(0, 0, 100, 100);
        let br = cam.primary_ray(99, 99, 100, 100);
        assert!(tl.dir.x < 0.0 && tl.dir.y > 0.0);
        assert!(br.dir.x > 0.0 && br.dir.y < 0.0);
    }

    #[test]
    fn camera_basis_is_orthonormal() {
        let cam = Camera::look_at(v3(1.0, 2.0, 3.0), v3(-2.0, 0.5, 9.0), 1.1, 1.5);
        assert!(cam.right.dot(cam.up).abs() < 1e-12);
        assert!(cam.right.dot(cam.forward).abs() < 1e-12);
        assert!((cam.right.length() - 1.0).abs() < 1e-12);
        assert!((cam.up.length() - 1.0).abs() < 1e-12);
    }
}
