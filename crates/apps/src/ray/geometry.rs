//! Rays, surfaces, and intersection tests.

use super::vec3::{v3, Vec3};

/// A half-line: origin plus unit direction.
#[derive(Debug, Clone, Copy)]
pub struct Ray {
    /// Starting point.
    pub origin: Vec3,
    /// Unit direction.
    pub dir: Vec3,
}

impl Ray {
    /// The point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }
}

/// Surface material.
#[derive(Debug, Clone, Copy)]
pub struct Material {
    /// Diffuse (Lambertian) color.
    pub diffuse: Vec3,
    /// Specular highlight strength.
    pub specular: f64,
    /// Phong exponent.
    pub shininess: f64,
    /// Mirror reflectivity in `[0, 1]`.
    pub reflectivity: f64,
}

impl Material {
    /// A matte material of the given color.
    pub fn matte(color: Vec3) -> Self {
        Self {
            diffuse: color,
            specular: 0.0,
            shininess: 1.0,
            reflectivity: 0.0,
        }
    }

    /// A shiny, partially mirrored material.
    pub fn shiny(color: Vec3, reflectivity: f64) -> Self {
        Self {
            diffuse: color,
            specular: 0.6,
            shininess: 50.0,
            reflectivity,
        }
    }
}

/// A renderable object.
#[derive(Debug, Clone, Copy)]
pub enum Shape {
    /// A sphere: center and radius.
    Sphere {
        /// Center.
        center: Vec3,
        /// Radius (> 0).
        radius: f64,
    },
    /// An infinite plane: a point on it and the unit normal.
    Plane {
        /// Any point on the plane.
        point: Vec3,
        /// Unit normal.
        normal: Vec3,
    },
}

/// An object in the scene: shape plus material. Checkerboard planes are
/// common in 1990s ray-tracer demos, so planes support a two-color check.
#[derive(Debug, Clone, Copy)]
pub struct Object {
    /// Geometry.
    pub shape: Shape,
    /// Surface material.
    pub material: Material,
    /// Optional second diffuse color for a checkerboard pattern.
    pub check: Option<Vec3>,
}

/// A ray-surface intersection.
#[derive(Debug, Clone, Copy)]
pub struct Hit {
    /// Ray parameter of the hit point.
    pub t: f64,
    /// World-space hit point.
    pub point: Vec3,
    /// Unit surface normal at the hit, facing the ray origin.
    pub normal: Vec3,
    /// Index of the object hit.
    pub object: usize,
}

/// Minimum ray parameter; avoids surface acne on secondary rays.
pub const T_MIN: f64 = 1e-9;

impl Shape {
    /// Nearest intersection with `ray` at parameter > `t_min`, if any.
    pub fn intersect(&self, ray: &Ray, t_min: f64) -> Option<f64> {
        match *self {
            Shape::Sphere { center, radius } => {
                let oc = ray.origin - center;
                let b = oc.dot(ray.dir);
                let c = oc.dot(oc) - radius * radius;
                let disc = b * b - c;
                if disc < 0.0 {
                    return None;
                }
                let sq = disc.sqrt();
                let t1 = -b - sq;
                if t1 > t_min {
                    return Some(t1);
                }
                let t2 = -b + sq;
                if t2 > t_min {
                    return Some(t2);
                }
                None
            }
            Shape::Plane { point, normal } => {
                let denom = ray.dir.dot(normal);
                if denom.abs() < 1e-12 {
                    return None;
                }
                let t = (point - ray.origin).dot(normal) / denom;
                if t > t_min {
                    Some(t)
                } else {
                    None
                }
            }
        }
    }

    /// Outward unit normal at `p` (assumed on the surface).
    pub fn normal_at(&self, p: Vec3) -> Vec3 {
        match *self {
            Shape::Sphere { center, .. } => (p - center).normalized(),
            Shape::Plane { normal, .. } => normal,
        }
    }
}

/// Effective diffuse color at a point (applies the checkerboard).
pub fn diffuse_at(obj: &Object, p: Vec3) -> Vec3 {
    match obj.check {
        None => obj.material.diffuse,
        Some(alt) => {
            let cell = (p.x.floor() as i64 + p.z.floor() as i64).rem_euclid(2);
            if cell == 0 {
                obj.material.diffuse
            } else {
                alt
            }
        }
    }
}

/// A point light source.
#[derive(Debug, Clone, Copy)]
pub struct Light {
    /// Position.
    pub position: Vec3,
    /// Emitted color/intensity.
    pub color: Vec3,
}

/// Convenience: a white light at `position`.
pub fn white_light(position: Vec3, intensity: f64) -> Light {
    Light {
        position,
        color: v3(intensity, intensity, intensity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ray(origin: Vec3, toward: Vec3) -> Ray {
        Ray {
            origin,
            dir: (toward - origin).normalized(),
        }
    }

    #[test]
    fn sphere_hit_front() {
        let s = Shape::Sphere {
            center: v3(0.0, 0.0, 5.0),
            radius: 1.0,
        };
        let r = ray(Vec3::ZERO, v3(0.0, 0.0, 5.0));
        let t = s.intersect(&r, T_MIN).expect("must hit");
        assert!((t - 4.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn sphere_miss() {
        let s = Shape::Sphere {
            center: v3(0.0, 0.0, 5.0),
            radius: 1.0,
        };
        let r = Ray {
            origin: Vec3::ZERO,
            dir: v3(0.0, 1.0, 0.0),
        };
        assert!(s.intersect(&r, T_MIN).is_none());
    }

    #[test]
    fn sphere_from_inside_hits_far_wall() {
        let s = Shape::Sphere {
            center: Vec3::ZERO,
            radius: 2.0,
        };
        let r = Ray {
            origin: Vec3::ZERO,
            dir: v3(1.0, 0.0, 0.0),
        };
        let t = s.intersect(&r, T_MIN).unwrap();
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sphere_behind_ray_missed() {
        let s = Shape::Sphere {
            center: v3(0.0, 0.0, -5.0),
            radius: 1.0,
        };
        let r = Ray {
            origin: Vec3::ZERO,
            dir: v3(0.0, 0.0, 1.0),
        };
        assert!(s.intersect(&r, T_MIN).is_none());
    }

    #[test]
    fn plane_hit_and_parallel_miss() {
        let floor = Shape::Plane {
            point: v3(0.0, -1.0, 0.0),
            normal: v3(0.0, 1.0, 0.0),
        };
        let down = Ray {
            origin: Vec3::ZERO,
            dir: v3(0.0, -1.0, 0.0),
        };
        assert!((floor.intersect(&down, T_MIN).unwrap() - 1.0).abs() < 1e-12);
        let level = Ray {
            origin: Vec3::ZERO,
            dir: v3(1.0, 0.0, 0.0),
        };
        assert!(floor.intersect(&level, T_MIN).is_none());
    }

    #[test]
    fn normals_point_outward() {
        let s = Shape::Sphere {
            center: Vec3::ZERO,
            radius: 2.0,
        };
        let n = s.normal_at(v3(2.0, 0.0, 0.0));
        assert!((n - v3(1.0, 0.0, 0.0)).length() < 1e-12);
    }

    #[test]
    fn checkerboard_alternates() {
        let obj = Object {
            shape: Shape::Plane {
                point: Vec3::ZERO,
                normal: v3(0.0, 1.0, 0.0),
            },
            material: Material::matte(Vec3::ONE),
            check: Some(Vec3::ZERO),
        };
        let a = diffuse_at(&obj, v3(0.5, 0.0, 0.5));
        let b = diffuse_at(&obj, v3(1.5, 0.0, 0.5));
        assert_ne!(a, b, "adjacent cells must differ");
        let c = diffuse_at(&obj, v3(2.5, 0.0, 0.5));
        assert_eq!(a, c, "cells two apart must match");
    }
}
