//! Whitted-style recursive ray tracing plus serial/parallel render drivers.
//!
//! The parallel decomposition is by horizontal bands of rows — the coarse
//! grain that gives `ray` its near-1.0 serial slowdown in Table 1 (1.04 on
//! the SparcStation 10): tens of tasks, each tracing thousands of rays.

use phish_core::{Cont, SpecStep, SpecTask, TaskFn, Worker};

use super::geometry::{diffuse_at, Hit, Ray, T_MIN};
use super::scene::{Camera, Scene};
use super::vec3::Vec3;

/// One rendered pixel, linear RGB in `[0, 1]`.
pub type Pixel = [f32; 3];

/// A horizontal band of rendered rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Band {
    /// First row of the band.
    pub start_row: u32,
    /// Pixels, row-major, `rows × width`.
    pub pixels: Vec<Pixel>,
}

/// Nearest hit of `ray` against the scene.
pub fn closest_hit(scene: &Scene, ray: &Ray, t_min: f64) -> Option<Hit> {
    let mut best: Option<Hit> = None;
    for (idx, obj) in scene.objects.iter().enumerate() {
        if let Some(t) = obj.shape.intersect(ray, t_min) {
            if best.is_none_or(|b| t < b.t) {
                let point = ray.at(t);
                let mut normal = obj.shape.normal_at(point);
                if normal.dot(ray.dir) > 0.0 {
                    normal = -normal;
                }
                best = Some(Hit {
                    t,
                    point,
                    normal,
                    object: idx,
                });
            }
        }
    }
    best
}

/// True if the straight path from `point` to the light is blocked.
fn in_shadow(scene: &Scene, point: Vec3, light_pos: Vec3) -> bool {
    let to_light = light_pos - point;
    let dist = to_light.length();
    let ray = Ray {
        origin: point,
        dir: to_light / dist,
    };
    for obj in &scene.objects {
        if let Some(t) = obj.shape.intersect(&ray, 1e-6) {
            if t < dist {
                return true;
            }
        }
    }
    false
}

/// Traces one ray to a color (Whitted: Phong shading + shadows + mirror
/// reflection up to `scene.max_depth`).
pub fn trace(scene: &Scene, ray: &Ray, depth: u32) -> Vec3 {
    let Some(hit) = closest_hit(scene, ray, T_MIN) else {
        return scene.background;
    };
    let obj = &scene.objects[hit.object];
    let mat = obj.material;
    let base = diffuse_at(obj, hit.point);
    let mut color = scene.ambient.hadamard(base);
    for light in &scene.lights {
        if in_shadow(scene, hit.point, light.position) {
            continue;
        }
        let to_light = (light.position - hit.point).normalized();
        let ndotl = hit.normal.dot(to_light).max(0.0);
        color = color + base.hadamard(light.color) * ndotl;
        if mat.specular > 0.0 {
            let refl = (-to_light).reflect(hit.normal);
            let rdotv = refl.dot(ray.dir).max(0.0);
            color = color + light.color * (mat.specular * rdotv.powf(mat.shininess));
        }
    }
    if mat.reflectivity > 0.0 && depth < scene.max_depth {
        let refl_ray = Ray {
            origin: hit.point,
            dir: ray.dir.reflect(hit.normal).normalized(),
        };
        let reflected = trace(scene, &refl_ray, depth + 1);
        color = color * (1.0 - mat.reflectivity) + reflected * mat.reflectivity;
    }
    color.clamp01()
}

/// Renders rows `[start, end)` of a `w × h` image.
pub fn render_rows(scene: &Scene, camera: &Camera, w: u32, h: u32, start: u32, end: u32) -> Band {
    let mut pixels = Vec::with_capacity(((end - start) * w) as usize);
    for y in start..end {
        for x in 0..w {
            let ray = camera.primary_ray(x, y, w, h);
            let c = trace(scene, &ray, 0);
            pixels.push([c.x as f32, c.y as f32, c.z as f32]);
        }
    }
    Band {
        start_row: start,
        pixels,
    }
}

/// The best serial implementation: render every row in order.
pub fn render_serial(scene: &Scene, camera: &Camera, w: u32, h: u32) -> Vec<Pixel> {
    render_rows(scene, camera, w, h, 0, h).pixels
}

/// Assembles bands (any order) into a full image. Panics if the bands do
/// not tile `w × h` exactly.
pub fn assemble(mut bands: Vec<Band>, w: u32, h: u32) -> Vec<Pixel> {
    bands.sort_by_key(|b| b.start_row);
    let mut image = Vec::with_capacity((w * h) as usize);
    let mut next_row = 0;
    for band in bands {
        assert_eq!(band.start_row, next_row, "bands must tile the image");
        assert_eq!(band.pixels.len() % w as usize, 0);
        next_row += (band.pixels.len() / w as usize) as u32;
        image.extend(band.pixels);
    }
    assert_eq!(next_row, h, "bands must cover the image");
    image
}

/// Parallel render in continuation-passing style: one task per band of
/// `rows_per_band` rows, joined into the assembled image.
///
/// The scene is read-shared via `Arc`, standing in for the read-only scene
/// file every 1994 worker loaded at startup.
pub fn render_task(
    scene: std::sync::Arc<Scene>,
    camera: Camera,
    w: u32,
    h: u32,
    rows_per_band: u32,
    out: Cont,
) -> TaskFn<Band> {
    assert!(rows_per_band > 0);
    Box::new(move |wk: &mut Worker<Band>| {
        let n_bands = h.div_ceil(rows_per_band);
        let cell = wk.join(n_bands as usize, move |bands, wk| {
            let image = assemble(bands, w, h);
            wk.post(
                out,
                Band {
                    start_row: 0,
                    pixels: image,
                },
            );
        });
        for b in 0..n_bands {
            let cont = Cont::slot(cell, b);
            let scene = std::sync::Arc::clone(&scene);
            let start = b * rows_per_band;
            let end = (start + rows_per_band).min(h);
            wk.spawn(move |wk| {
                let band = render_rows(&scene, &camera, w, h, start, end);
                wk.post(cont, band);
            });
        }
    })
}

/// Spec form of the renderer: output is the multiset of bands.
#[derive(Clone)]
pub struct RaySpec {
    /// Shared scene.
    pub scene: std::sync::Arc<Scene>,
    /// Camera.
    pub camera: Camera,
    /// Image width.
    pub w: u32,
    /// Image height.
    pub h: u32,
    /// Band granularity.
    pub rows_per_band: u32,
    /// This spec's band, or `None` for the root (which fans out).
    pub band: Option<u32>,
}

impl std::fmt::Debug for RaySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaySpec")
            .field("w", &self.w)
            .field("h", &self.h)
            .field("band", &self.band)
            .finish()
    }
}

impl SpecTask for RaySpec {
    type Output = Vec<Band>;

    fn step(self) -> SpecStep<Self> {
        match self.band {
            None => {
                let n_bands = self.h.div_ceil(self.rows_per_band);
                let children = (0..n_bands)
                    .map(|b| RaySpec {
                        band: Some(b),
                        scene: std::sync::Arc::clone(&self.scene),
                        ..self
                    })
                    .collect();
                SpecStep::Expand {
                    children,
                    partial: Vec::new(),
                }
            }
            Some(b) => {
                let start = b * self.rows_per_band;
                let end = (start + self.rows_per_band).min(self.h);
                SpecStep::Leaf(vec![render_rows(
                    &self.scene,
                    &self.camera,
                    self.w,
                    self.h,
                    start,
                    end,
                )])
            }
        }
    }

    fn identity() -> Vec<Band> {
        Vec::new()
    }

    fn merge(mut a: Vec<Band>, b: Vec<Band>) -> Vec<Band> {
        a.extend(b);
        a
    }

    fn virtual_cost(&self) -> u64 {
        match self.band {
            // ~2µs per pixel of real tracing cost, calibrated loosely.
            Some(_) => 2_000 * u64::from(self.w) * u64::from(self.rows_per_band),
            None => 1_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::scene::benchmark_scene;
    use super::*;
    use phish_core::{Engine, SchedulerConfig, SpecEngine};
    use std::sync::Arc;

    const W: u32 = 32;
    const H: u32 = 32;

    #[test]
    fn serial_render_produces_full_image() {
        let (scene, cam) = benchmark_scene();
        let img = render_serial(&scene, &cam, W, H);
        assert_eq!(img.len(), (W * H) as usize);
        // The image must not be monochrome (scene actually renders).
        let first = img[0];
        assert!(img.iter().any(|p| *p != first), "image is monochrome");
    }

    #[test]
    fn background_rays_hit_background() {
        let (scene, _) = benchmark_scene();
        let up = Ray {
            origin: Vec3::ZERO,
            dir: super::super::vec3::v3(0.0, 1.0, 0.0),
        };
        // Straight up from the origin: no object covers the sky there.
        let c = trace(&scene, &up, 0);
        assert_eq!(c, scene.background.clamp01());
    }

    #[test]
    fn shadows_darken() {
        let (scene, cam) = benchmark_scene();
        // Render a strip below the central sphere; some pixels must be in
        // shadow, so the minimum luminance must be well below the maximum.
        let band = render_rows(&scene, &cam, 64, 64, 40, 48);
        let lum = |p: &Pixel| 0.2126 * p[0] + 0.7152 * p[1] + 0.0722 * p[2];
        let min = band.pixels.iter().map(&lum).fold(f64::MAX as f32, f32::min);
        let max = band.pixels.iter().map(lum).fold(0.0f32, f32::max);
        assert!(max > min * 2.0, "expected contrast, got {min}..{max}");
    }

    #[test]
    fn parallel_render_matches_serial_exactly() {
        let (scene, cam) = benchmark_scene();
        let expect = render_serial(&scene, &cam, W, H);
        let scene = Arc::new(scene);
        for workers in [1, 3] {
            let (band, _) = Engine::run(
                SchedulerConfig::paper(workers),
                render_task(Arc::clone(&scene), cam, W, H, 4, Cont::ROOT),
            );
            assert_eq!(band.start_row, 0);
            assert_eq!(band.pixels, expect, "workers = {workers}");
        }
    }

    #[test]
    fn spec_render_matches_serial() {
        let (scene, cam) = benchmark_scene();
        let expect = render_serial(&scene, &cam, W, H);
        let spec = RaySpec {
            scene: Arc::new(scene),
            camera: cam,
            w: W,
            h: H,
            rows_per_band: 5,
            band: None,
        };
        let (bands, _) = SpecEngine::run(SchedulerConfig::paper(2), spec);
        assert_eq!(assemble(bands, W, H), expect);
    }

    #[test]
    fn uneven_band_split_covers_image() {
        let (scene, cam) = benchmark_scene();
        // 32 rows, 5-row bands → last band has 2 rows.
        let mut bands = Vec::new();
        let mut start = 0;
        while start < H {
            let end = (start + 5).min(H);
            bands.push(render_rows(&scene, &cam, W, H, start, end));
            start = end;
        }
        let img = assemble(bands, W, H);
        assert_eq!(img, render_serial(&scene, &cam, W, H));
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn assemble_rejects_gaps() {
        let (scene, cam) = benchmark_scene();
        let b0 = render_rows(&scene, &cam, W, H, 0, 4);
        let b2 = render_rows(&scene, &cam, W, H, 8, 12);
        assemble(vec![b0, b2], W, H);
    }
}
