//! The `pfold` application: lattice polymer folding.
//!
//! "The protein-folding application finds all possible foldings of a
//! polymer into a lattice and computes a histogram of the energy values."
//! (§4; developed by Chris Joerg and Vijay Pande). The original source is
//! not available, so this is a from-scratch implementation of the same
//! computation: enumerate every self-avoiding walk of an `n`-monomer chain
//! on the 2D square lattice and histogram the *topological contacts* —
//! pairs of monomers that are lattice neighbours but not chain neighbours.
//! Each contact contributes one unit of (negative) energy, so the histogram
//! over contact counts is the energy histogram.
//!
//! The computational shape is what matters for the reproduction: an
//! enormous, irregular backtracking tree (the paper's runs executed
//! 10,390,216 tasks) with almost no data per task — exactly the workload
//! behind Figure 4, Figure 5, and Table 2.

use phish_core::{Cont, SpecStep, SpecTask, TaskFn, WordCodec, WordReader, Worker};

/// Maximum chain length supported by the fixed-size walk representation.
pub const MAX_CHAIN: usize = 27;

/// The energy histogram: `hist[k]` counts foldings with exactly `k`
/// contacts (energy `-k`).
pub type Histogram = Vec<u64>;

/// Merges two histograms (pointwise sum, growing as needed).
pub fn merge_histograms(mut a: Histogram, b: Histogram) -> Histogram {
    if b.len() > a.len() {
        a.resize(b.len(), 0);
    }
    for (i, v) in b.into_iter().enumerate() {
        a[i] += v;
    }
    a
}

/// A partial self-avoiding walk on the square lattice, stored inline so
/// cloning a task is a memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Walk {
    len: u8,
    xs: [i8; MAX_CHAIN],
    ys: [i8; MAX_CHAIN],
}

impl Walk {
    /// A walk consisting of the single origin monomer.
    pub fn origin() -> Self {
        Self {
            len: 1,
            xs: [0; MAX_CHAIN],
            ys: [0; MAX_CHAIN],
        }
    }

    /// Number of placed monomers.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if only the origin is placed.
    pub fn is_empty(&self) -> bool {
        self.len <= 1
    }

    #[inline]
    fn occupied(&self, x: i8, y: i8) -> bool {
        let n = self.len as usize;
        for i in 0..n {
            if self.xs[i] == x && self.ys[i] == y {
                return true;
            }
        }
        false
    }

    #[inline]
    fn head(&self) -> (i8, i8) {
        let i = (self.len - 1) as usize;
        (self.xs[i], self.ys[i])
    }

    /// Extends the walk by one monomer; `None` if the site is occupied.
    #[inline]
    pub fn extend_to(&self, x: i8, y: i8) -> Option<Walk> {
        if self.occupied(x, y) {
            return None;
        }
        let mut w = *self;
        w.xs[w.len as usize] = x;
        w.ys[w.len as usize] = y;
        w.len += 1;
        Some(w)
    }

    /// The number of topological contacts of a complete fold: lattice
    /// neighbours that are not adjacent along the chain.
    pub fn contacts(&self) -> usize {
        let n = self.len as usize;
        let mut c = 0;
        for i in 0..n {
            for j in (i + 2)..n {
                let dx = (self.xs[i] - self.xs[j]).abs();
                let dy = (self.ys[i] - self.ys[j]).abs();
                if dx + dy == 1 {
                    c += 1;
                }
            }
        }
        c
    }
}

const DIRS: [(i8, i8); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];

/// The upper bound on contacts for an `n`-monomer chain (used to size
/// histograms): each monomer has ≤ 4 lattice neighbours, two of which are
/// chain neighbours for interior monomers.
pub fn max_contacts(n: usize) -> usize {
    n.saturating_sub(2) + 2
}

fn fold_recurse(walk: &Walk, n: usize, hist: &mut Histogram) {
    if walk.len() == n {
        let c = walk.contacts();
        if c >= hist.len() {
            hist.resize(c + 1, 0);
        }
        hist[c] += 1;
        return;
    }
    let (hx, hy) = walk.head();
    for (dx, dy) in DIRS {
        if let Some(next) = walk.extend_to(hx + dx, hy + dy) {
            fold_recurse(&next, n, hist);
        }
    }
}

/// The best serial implementation: depth-first enumeration of all
/// self-avoiding walks of `n` monomers, histogramming contacts.
pub fn pfold_serial(n: usize) -> Histogram {
    assert!((1..=MAX_CHAIN).contains(&n), "chain length out of range");
    let mut hist = vec![0u64; 1];
    fold_recurse(&Walk::origin(), n, &mut hist);
    hist
}

/// Total number of self-avoiding walks of `n` monomers (Σ histogram).
pub fn count_walks(hist: &Histogram) -> u64 {
    hist.iter().sum()
}

/// Monomer species for the HP (hydrophobic/polar) heteropolymer model —
/// the lattice-protein abstraction Pande's group used: only H–H contacts
/// are energetically favourable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monomer {
    /// Hydrophobic: contributes to contact energy.
    H,
    /// Polar: energetically neutral.
    P,
}

/// Parses an HP sequence string like `"HPHPPHHP"`.
pub fn parse_hp(seq: &str) -> Option<Vec<Monomer>> {
    seq.chars()
        .map(|c| match c.to_ascii_uppercase() {
            'H' => Some(Monomer::H),
            'P' => Some(Monomer::P),
            _ => None,
        })
        .collect()
}

impl Walk {
    /// H–H topological contacts of a complete fold under `seq` (which must
    /// be at least as long as the walk).
    pub fn hp_contacts(&self, seq: &[Monomer]) -> usize {
        let n = self.len();
        assert!(seq.len() >= n, "sequence shorter than the walk");
        let mut c = 0;
        for i in 0..n {
            if seq[i] != Monomer::H {
                continue;
            }
            for (j, m) in seq.iter().enumerate().take(n).skip(i + 2) {
                if *m != Monomer::H {
                    continue;
                }
                let dx = (self.xs[i] - self.xs[j]).abs();
                let dy = (self.ys[i] - self.ys[j]).abs();
                if dx + dy == 1 {
                    c += 1;
                }
            }
        }
        c
    }
}

fn hp_fold_recurse(walk: &Walk, seq: &[Monomer], hist: &mut Histogram) {
    if walk.len() == seq.len() {
        let c = walk.hp_contacts(seq);
        if c >= hist.len() {
            hist.resize(c + 1, 0);
        }
        hist[c] += 1;
        return;
    }
    let (hx, hy) = walk.head();
    for (dx, dy) in DIRS {
        if let Some(next) = walk.extend_to(hx + dx, hy + dy) {
            hp_fold_recurse(&next, seq, hist);
        }
    }
}

/// Serial HP-model folding: histogram of H–H contact counts over all
/// self-avoiding conformations of `seq`.
pub fn pfold_hp_serial(seq: &[Monomer]) -> Histogram {
    assert!(
        (1..=MAX_CHAIN).contains(&seq.len()),
        "sequence length out of range"
    );
    let mut hist = vec![0u64; 1];
    hp_fold_recurse(&Walk::origin(), seq, &mut hist);
    hist
}

/// Spec form of the HP folder. The sequence travels with the spec (shared
/// via `Arc` so clones are cheap).
#[derive(Debug, Clone)]
pub struct PfoldHpSpec {
    walk: Walk,
    seq: std::sync::Arc<Vec<Monomer>>,
    spawn_depth: usize,
}

impl PfoldHpSpec {
    /// Root spec for `seq`.
    pub fn new(seq: Vec<Monomer>, spawn_depth: usize) -> Self {
        assert!((1..=MAX_CHAIN).contains(&seq.len()));
        Self {
            walk: Walk::origin(),
            seq: std::sync::Arc::new(seq),
            spawn_depth,
        }
    }
}

impl SpecTask for PfoldHpSpec {
    type Output = Histogram;

    fn step(self) -> SpecStep<Self> {
        let n = self.seq.len();
        if self.walk.len() >= self.spawn_depth.min(n) || self.walk.len() == n {
            let mut hist = vec![0u64; 1];
            hp_fold_recurse(&self.walk, &self.seq, &mut hist);
            return SpecStep::Leaf(hist);
        }
        let (hx, hy) = self.walk.head();
        let children: Vec<PfoldHpSpec> = DIRS
            .iter()
            .filter_map(|&(dx, dy)| self.walk.extend_to(hx + dx, hy + dy))
            .map(|walk| PfoldHpSpec {
                walk,
                seq: std::sync::Arc::clone(&self.seq),
                spawn_depth: self.spawn_depth,
            })
            .collect();
        SpecStep::Expand {
            children,
            partial: vec![0u64; 1],
        }
    }

    fn identity() -> Histogram {
        vec![0u64; 1]
    }

    fn merge(a: Histogram, b: Histogram) -> Histogram {
        merge_histograms(a, b)
    }
}

/// Default spawn depth: walks shorter than this are parallel tasks; the
/// subtree below each is enumerated serially.
pub const DEFAULT_SPAWN_DEPTH: usize = 6;

/// Parallel pfold in continuation-passing style. One task per search-tree
/// node down to `spawn_depth`; the value flowing through join cells is the
/// (small) partial histogram.
pub fn pfold_task(n: usize, spawn_depth: usize, out: Cont) -> TaskFn<Histogram> {
    walk_task(Walk::origin(), n, spawn_depth, out)
}

fn walk_task(walk: Walk, n: usize, spawn_depth: usize, out: Cont) -> TaskFn<Histogram> {
    Box::new(move |w: &mut Worker<Histogram>| {
        if walk.len() >= spawn_depth.min(n) || walk.len() == n {
            // Serial subtree.
            let mut hist = vec![0u64; 1];
            fold_recurse(&walk, n, &mut hist);
            w.post(out, hist);
            return;
        }
        let (hx, hy) = walk.head();
        let children: Vec<Walk> = DIRS
            .iter()
            .filter_map(|&(dx, dy)| walk.extend_to(hx + dx, hy + dy))
            .collect();
        if children.is_empty() {
            // Dead end before reaching full length: contributes nothing.
            w.post(out, vec![0u64; 1]);
            return;
        }
        let cell = w.join(children.len(), move |vals, w| {
            let merged = vals.into_iter().fold(vec![0u64; 1], merge_histograms);
            w.post(out, merged);
        });
        for (i, child) in children.into_iter().enumerate() {
            let cont = Cont::slot(cell, i as u32);
            w.spawn(move |w| walk_task(child, n, spawn_depth, cont)(w));
        }
    })
}

/// Spec form of pfold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfoldSpec {
    walk: Walk,
    n: usize,
    spawn_depth: usize,
}

impl PfoldSpec {
    /// The root spec for an `n`-monomer chain.
    pub fn new(n: usize, spawn_depth: usize) -> Self {
        assert!((1..=MAX_CHAIN).contains(&n), "chain length out of range");
        Self {
            walk: Walk::origin(),
            n,
            spawn_depth,
        }
    }

    /// Chain length.
    pub fn chain_len(&self) -> usize {
        self.n
    }
}

impl SpecTask for PfoldSpec {
    type Output = Histogram;

    fn step(self) -> SpecStep<Self> {
        if self.walk.len() >= self.spawn_depth.min(self.n) || self.walk.len() == self.n {
            let mut hist = vec![0u64; 1];
            fold_recurse(&self.walk, self.n, &mut hist);
            return SpecStep::Leaf(hist);
        }
        let (hx, hy) = self.walk.head();
        let children: Vec<PfoldSpec> = DIRS
            .iter()
            .filter_map(|&(dx, dy)| self.walk.extend_to(hx + dx, hy + dy))
            .map(|walk| PfoldSpec { walk, ..self })
            .collect();
        SpecStep::Expand {
            children,
            partial: vec![0u64; 1],
        }
    }

    fn identity() -> Histogram {
        vec![0u64; 1]
    }

    fn merge(a: Histogram, b: Histogram) -> Histogram {
        merge_histograms(a, b)
    }

    fn virtual_cost(&self) -> u64 {
        if self.walk.len() >= self.spawn_depth.min(self.n) {
            // Serial subtree of ~2.64^(n - depth) nodes at ~30ns each.
            let remaining = self.n.saturating_sub(self.walk.len()) as u32;
            (30.0 * 2.64f64.powi(remaining as i32)) as u64 + 50
        } else {
            300
        }
    }
}

impl WordCodec for PfoldSpec {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.n as u64);
        out.push(self.spawn_depth as u64);
        out.push(u64::from(self.walk.len));
        for i in 0..self.walk.len() {
            // Pack one lattice coordinate pair per word with a +128 bias.
            let x = (i16::from(self.walk.xs[i]) + 128) as u64;
            let y = (i16::from(self.walk.ys[i]) + 128) as u64;
            out.push((x << 8) | y);
        }
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        let n = r.word()? as usize;
        let spawn_depth = r.word()? as usize;
        let len = r.word()?;
        if !(1..=MAX_CHAIN).contains(&n) || len == 0 || len as usize > n {
            return None;
        }
        let mut walk = Walk::origin();
        walk.len = len as u8;
        for i in 0..len as usize {
            let w = r.word()?;
            let x = ((w >> 8) & 0x1FF) as i16 - 128;
            let y = (w & 0xFF) as i16 - 128;
            if !(-128..=127).contains(&x) || !(-128..=127).contains(&y) {
                return None;
            }
            walk.xs[i] = x as i8;
            walk.ys[i] = y as i8;
        }
        // The first monomer must be the origin (all walks start there).
        if walk.xs[0] != 0 || walk.ys[0] != 0 {
            return None;
        }
        Some(PfoldSpec {
            walk,
            n,
            spawn_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phish_core::{run_serial, Engine, SchedulerConfig, SpecEngine};

    /// Known counts of self-avoiding walks on Z² with n *steps* = n+1
    /// monomers: 4, 12, 36, 100, 284, 780, 2172, 5916, ... (OEIS A001411).
    const SAW_COUNTS: [u64; 9] = [1, 4, 12, 36, 100, 284, 780, 2172, 5916];

    #[test]
    fn walk_counts_match_oeis() {
        for (steps, &expect) in SAW_COUNTS.iter().enumerate() {
            let hist = pfold_serial(steps + 1);
            assert_eq!(count_walks(&hist), expect, "steps = {steps}");
        }
    }

    #[test]
    fn tiny_chain_has_no_contacts() {
        // 3 monomers cannot form a non-chain contact on Z².
        let hist = pfold_serial(3);
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0], 12);
    }

    #[test]
    fn four_monomer_chain_contacts() {
        // 4 monomers: the three-step walks; exactly the "U" shapes have one
        // contact (ends adjacent). 36 walks total, 8 U-shapes.
        let hist = pfold_serial(4);
        assert_eq!(count_walks(&hist), 36);
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[1], 8);
        assert_eq!(hist[0], 28);
    }

    #[test]
    fn cps_matches_serial() {
        let expect = pfold_serial(10);
        for workers in [1, 4] {
            let (hist, _) = Engine::run(
                SchedulerConfig::paper(workers),
                pfold_task(10, DEFAULT_SPAWN_DEPTH, Cont::ROOT),
            );
            assert_eq!(hist, expect, "workers = {workers}");
        }
    }

    #[test]
    fn spec_matches_serial() {
        let expect = pfold_serial(11);
        let spec = PfoldSpec::new(11, DEFAULT_SPAWN_DEPTH);
        assert_eq!(run_serial(spec), expect);
        let (hist, _) = SpecEngine::run(SchedulerConfig::paper(3), spec);
        assert_eq!(hist, expect);
    }

    #[test]
    fn spawn_depth_does_not_change_the_answer() {
        let expect = pfold_serial(9);
        for depth in [1, 3, 5, 9, 20] {
            let (hist, _) =
                Engine::run(SchedulerConfig::paper(2), pfold_task(9, depth, Cont::ROOT));
            assert_eq!(hist, expect, "spawn_depth = {depth}");
        }
    }

    #[test]
    fn spec_codec_roundtrips_mid_search() {
        let root = PfoldSpec::new(8, 4);
        let SpecStep::Expand { children, .. } = root.step() else {
            panic!("root must expand");
        };
        // Go two levels down so walks have negative coordinates too.
        for child in children {
            let SpecStep::Expand { children, .. } = child.step() else {
                continue;
            };
            for spec in children {
                let mut words = Vec::new();
                spec.encode(&mut words);
                let mut r = WordReader::new(&words);
                assert_eq!(PfoldSpec::decode(&mut r), Some(spec));
                assert!(r.is_exhausted());
            }
        }
    }

    #[test]
    fn spec_codec_rejects_garbage() {
        // Chain length 0.
        let mut r = WordReader::new(&[0, 4, 1, 0x8080]);
        assert_eq!(PfoldSpec::decode(&mut r), None);
        // Walk longer than the chain.
        let mut r = WordReader::new(&[2, 4, 3, 0x8080, 0x8180, 0x8181]);
        assert_eq!(PfoldSpec::decode(&mut r), None);
        // First monomer off origin.
        let mut r = WordReader::new(&[4, 4, 1, 0x8180]);
        assert_eq!(PfoldSpec::decode(&mut r), None);
    }

    #[test]
    fn hp_all_h_equals_homopolymer() {
        // An all-H sequence is exactly the homopolymer model.
        let seq = vec![Monomer::H; 9];
        assert_eq!(pfold_hp_serial(&seq), pfold_serial(9));
    }

    #[test]
    fn hp_all_p_has_zero_energy_everywhere() {
        let seq = vec![Monomer::P; 8];
        let hist = pfold_hp_serial(&seq);
        assert_eq!(hist.len(), 1, "no H–H contacts possible");
        assert_eq!(hist[0], count_walks(&pfold_serial(8)));
    }

    #[test]
    fn hp_mixed_sequence_is_bounded_by_homopolymer() {
        let seq = parse_hp("HPHPPHHPH").expect("valid");
        let hp = pfold_hp_serial(&seq);
        let homo = pfold_serial(seq.len());
        assert_eq!(count_walks(&hp), count_walks(&homo), "same conformations");
        assert!(hp.len() <= homo.len(), "HP energies bounded by all-H");
        // Some conformation of this sequence has at least one H–H contact.
        assert!(hp.len() > 1);
    }

    #[test]
    fn hp_parse_rejects_garbage() {
        assert!(parse_hp("HPX").is_none());
        assert_eq!(parse_hp("hph").unwrap().len(), 3);
    }

    #[test]
    fn hp_spec_matches_serial() {
        let seq = parse_hp("HPPHHPHPH").expect("valid");
        let expect = pfold_hp_serial(&seq);
        let spec = PfoldHpSpec::new(seq, 5);
        assert_eq!(run_serial(spec.clone()), expect);
        let (hist, _) = SpecEngine::run(SchedulerConfig::paper(3), spec);
        assert_eq!(hist, expect);
    }

    #[test]
    fn walk_extend_rejects_occupied() {
        let w = Walk::origin();
        let w = w.extend_to(1, 0).unwrap();
        assert!(w.extend_to(0, 0).is_none(), "origin occupied");
        assert!(w.extend_to(2, 0).is_some());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn contacts_of_a_square() {
        // 0,0 → 1,0 → 1,1 → 0,1: ends are lattice neighbours → 1 contact.
        let w = Walk::origin()
            .extend_to(1, 0)
            .unwrap()
            .extend_to(1, 1)
            .unwrap()
            .extend_to(0, 1)
            .unwrap();
        assert_eq!(w.contacts(), 1);
    }

    #[test]
    fn merge_histograms_pads() {
        let a = vec![1, 2];
        let b = vec![1, 1, 1];
        assert_eq!(merge_histograms(a, b), vec![2, 3, 1]);
    }

    #[test]
    fn max_contacts_bounds_observed() {
        let hist = pfold_serial(12);
        assert!(hist.len() - 1 <= max_contacts(12));
    }
}
