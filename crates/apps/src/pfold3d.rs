//! pfold on the 3D cubic lattice.
//!
//! The paper says only "finds all possible foldings of a polymer into a
//! lattice"; Pande's lattice-protein work used both square (2D) and cubic
//! (3D) lattices. The 3D variant has a much higher branching factor
//! (5 effective extensions instead of 3), so the same chain length yields
//! a vastly bigger, bushier search tree — a second data point for every
//! scheduling experiment.

use phish_core::{Cont, SpecStep, SpecTask, TaskFn, WordCodec, WordReader, Worker};

use crate::pfold::{merge_histograms, Histogram};

/// Maximum chain length for the inline 3D walk representation.
pub const MAX_CHAIN_3D: usize = 21;

/// A partial self-avoiding walk on the cubic lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Walk3 {
    len: u8,
    xs: [i8; MAX_CHAIN_3D],
    ys: [i8; MAX_CHAIN_3D],
    zs: [i8; MAX_CHAIN_3D],
}

const DIRS3: [(i8, i8, i8); 6] = [
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
];

impl Walk3 {
    /// The single-monomer walk at the origin.
    pub fn origin() -> Self {
        Self {
            len: 1,
            xs: [0; MAX_CHAIN_3D],
            ys: [0; MAX_CHAIN_3D],
            zs: [0; MAX_CHAIN_3D],
        }
    }

    /// Number of placed monomers.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if only the origin is placed.
    pub fn is_empty(&self) -> bool {
        self.len <= 1
    }

    #[inline]
    fn occupied(&self, x: i8, y: i8, z: i8) -> bool {
        (0..self.len as usize).any(|i| self.xs[i] == x && self.ys[i] == y && self.zs[i] == z)
    }

    #[inline]
    fn head(&self) -> (i8, i8, i8) {
        let i = (self.len - 1) as usize;
        (self.xs[i], self.ys[i], self.zs[i])
    }

    /// Extends the walk; `None` if the site is occupied.
    #[inline]
    pub fn extend_to(&self, x: i8, y: i8, z: i8) -> Option<Walk3> {
        if self.occupied(x, y, z) {
            return None;
        }
        let mut w = *self;
        w.xs[w.len as usize] = x;
        w.ys[w.len as usize] = y;
        w.zs[w.len as usize] = z;
        w.len += 1;
        Some(w)
    }

    /// Topological contacts of a complete fold (lattice neighbours that
    /// are not chain neighbours).
    pub fn contacts(&self) -> usize {
        let n = self.len as usize;
        let mut c = 0;
        for i in 0..n {
            for j in (i + 2)..n {
                let dx = (self.xs[i] - self.xs[j]).abs();
                let dy = (self.ys[i] - self.ys[j]).abs();
                let dz = (self.zs[i] - self.zs[j]).abs();
                if dx + dy + dz == 1 {
                    c += 1;
                }
            }
        }
        c
    }
}

fn fold3_recurse(walk: &Walk3, n: usize, hist: &mut Histogram) {
    if walk.len() == n {
        let c = walk.contacts();
        if c >= hist.len() {
            hist.resize(c + 1, 0);
        }
        hist[c] += 1;
        return;
    }
    let (hx, hy, hz) = walk.head();
    for (dx, dy, dz) in DIRS3 {
        if let Some(next) = walk.extend_to(hx + dx, hy + dy, hz + dz) {
            fold3_recurse(&next, n, hist);
        }
    }
}

/// Serial 3D folding: energy histogram over all cubic-lattice
/// conformations of an `n`-monomer chain.
pub fn pfold3d_serial(n: usize) -> Histogram {
    assert!((1..=MAX_CHAIN_3D).contains(&n), "chain length out of range");
    let mut hist = vec![0u64; 1];
    fold3_recurse(&Walk3::origin(), n, &mut hist);
    hist
}

/// Parallel 3D folding in continuation-passing style (task per node above
/// `spawn_depth`, serial below).
pub fn pfold3d_task(n: usize, spawn_depth: usize, out: Cont) -> TaskFn<Histogram> {
    walk3_task(Walk3::origin(), n, spawn_depth, out)
}

fn walk3_task(walk: Walk3, n: usize, spawn_depth: usize, out: Cont) -> TaskFn<Histogram> {
    Box::new(move |w: &mut Worker<Histogram>| {
        if walk.len() >= spawn_depth.min(n) || walk.len() == n {
            let mut hist = vec![0u64; 1];
            fold3_recurse(&walk, n, &mut hist);
            w.post(out, hist);
            return;
        }
        let (hx, hy, hz) = walk.head();
        let children: Vec<Walk3> = DIRS3
            .iter()
            .filter_map(|&(dx, dy, dz)| walk.extend_to(hx + dx, hy + dy, hz + dz))
            .collect();
        if children.is_empty() {
            w.post(out, vec![0u64; 1]);
            return;
        }
        let cell = w.join(children.len(), move |vals, w| {
            let merged = vals.into_iter().fold(vec![0u64; 1], merge_histograms);
            w.post(out, merged);
        });
        for (i, child) in children.into_iter().enumerate() {
            let cont = Cont::slot(cell, i as u32);
            w.spawn(move |w| walk3_task(child, n, spawn_depth, cont)(w));
        }
    })
}

/// Spec form of the 3D folder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pfold3dSpec {
    walk: Walk3,
    n: usize,
    spawn_depth: usize,
}

impl Pfold3dSpec {
    /// Root spec for an `n`-monomer chain on the cubic lattice.
    pub fn new(n: usize, spawn_depth: usize) -> Self {
        assert!((1..=MAX_CHAIN_3D).contains(&n), "chain length out of range");
        Self {
            walk: Walk3::origin(),
            n,
            spawn_depth,
        }
    }
}

impl SpecTask for Pfold3dSpec {
    type Output = Histogram;

    fn step(self) -> SpecStep<Self> {
        if self.walk.len() >= self.spawn_depth.min(self.n) || self.walk.len() == self.n {
            let mut hist = vec![0u64; 1];
            fold3_recurse(&self.walk, self.n, &mut hist);
            return SpecStep::Leaf(hist);
        }
        let (hx, hy, hz) = self.walk.head();
        let children: Vec<Pfold3dSpec> = DIRS3
            .iter()
            .filter_map(|&(dx, dy, dz)| self.walk.extend_to(hx + dx, hy + dy, hz + dz))
            .map(|walk| Pfold3dSpec { walk, ..self })
            .collect();
        SpecStep::Expand {
            children,
            partial: vec![0u64; 1],
        }
    }

    fn identity() -> Histogram {
        vec![0u64; 1]
    }

    fn merge(a: Histogram, b: Histogram) -> Histogram {
        merge_histograms(a, b)
    }

    fn virtual_cost(&self) -> u64 {
        if self.walk.len() >= self.spawn_depth.min(self.n) {
            let remaining = self.n.saturating_sub(self.walk.len()) as i32;
            (40.0 * 4.68f64.powi(remaining)) as u64 + 50
        } else {
            350
        }
    }
}

impl WordCodec for Pfold3dSpec {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.n as u64);
        out.push(self.spawn_depth as u64);
        out.push(u64::from(self.walk.len));
        for i in 0..self.walk.len() {
            let x = (i16::from(self.walk.xs[i]) + 128) as u64;
            let y = (i16::from(self.walk.ys[i]) + 128) as u64;
            let z = (i16::from(self.walk.zs[i]) + 128) as u64;
            out.push((x << 18) | (y << 9) | z);
        }
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        let n = r.word()? as usize;
        let spawn_depth = r.word()? as usize;
        let len = r.word()?;
        if !(1..=MAX_CHAIN_3D).contains(&n) || len == 0 || len as usize > n {
            return None;
        }
        let mut walk = Walk3::origin();
        walk.len = len as u8;
        for i in 0..len as usize {
            let w = r.word()?;
            let x = ((w >> 18) & 0x1FF) as i16 - 128;
            let y = ((w >> 9) & 0x1FF) as i16 - 128;
            let z = (w & 0x1FF) as i16 - 128;
            for v in [x, y, z] {
                if !(-128..=127).contains(&v) {
                    return None;
                }
            }
            walk.xs[i] = x as i8;
            walk.ys[i] = y as i8;
            walk.zs[i] = z as i8;
        }
        if walk.xs[0] != 0 || walk.ys[0] != 0 || walk.zs[0] != 0 {
            return None;
        }
        Some(Pfold3dSpec {
            walk,
            n,
            spawn_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfold::count_walks;
    use phish_core::{run_serial, Engine, SchedulerConfig, SpecEngine};

    /// Counts of self-avoiding walks on Z³ with n steps (OEIS A001412):
    /// 6, 30, 150, 726, 3534, 16926, 81390, ...
    const SAW3_COUNTS: [u64; 8] = [1, 6, 30, 150, 726, 3534, 16926, 81390];

    #[test]
    fn walk_counts_match_oeis_a001412() {
        for (steps, &expect) in SAW3_COUNTS.iter().enumerate() {
            let hist = pfold3d_serial(steps + 1);
            assert_eq!(count_walks(&hist), expect, "steps = {steps}");
        }
    }

    #[test]
    fn four_monomer_u_shapes_in_3d() {
        // 3-step walks: 150 total; U-shapes (ends adjacent) have 1 contact.
        // First dir 6 ways, perpendicular 4 ways, reverse 1 way = 24.
        let hist = pfold3d_serial(4);
        assert_eq!(count_walks(&hist), 150);
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[1], 24);
    }

    #[test]
    fn cps_matches_serial() {
        let expect = pfold3d_serial(8);
        for workers in [1, 3] {
            let (hist, _) = Engine::run(
                SchedulerConfig::paper(workers),
                pfold3d_task(8, 4, Cont::ROOT),
            );
            assert_eq!(hist, expect, "workers = {workers}");
        }
    }

    #[test]
    fn spec_matches_serial() {
        let expect = pfold3d_serial(8);
        let spec = Pfold3dSpec::new(8, 4);
        assert_eq!(run_serial(spec), expect);
        let (hist, _) = SpecEngine::run(SchedulerConfig::paper(2), spec);
        assert_eq!(hist, expect);
    }

    #[test]
    fn codec_roundtrips_mid_search() {
        let root = Pfold3dSpec::new(7, 4);
        let SpecStep::Expand { children, .. } = root.step() else {
            panic!("root must expand");
        };
        for child in children {
            let SpecStep::Expand { children, .. } = child.step() else {
                continue;
            };
            for spec in children {
                let mut words = Vec::new();
                spec.encode(&mut words);
                let mut r = WordReader::new(&words);
                assert_eq!(Pfold3dSpec::decode(&mut r), Some(spec));
                assert!(r.is_exhausted());
            }
        }
    }

    #[test]
    fn three_d_tree_is_bushier_than_two_d() {
        use phish_core::count_tasks;
        let t2 = count_tasks(crate::pfold::PfoldSpec::new(8, 8));
        let t3 = count_tasks(Pfold3dSpec::new(8, 8));
        assert!(t3 > 10 * t2, "3D branching must dwarf 2D: {t3} vs {t2}");
    }
}
