//! The `fib` application.
//!
//! "The fib application is a naive, doubly-recursive program that computes
//! Fibonacci numbers. ... it does almost nothing but spawn parallel tasks,
//! which are simple procedure calls in the serial implementation." (§4)
//!
//! fib is the paper's stress test for scheduling overhead: its serial
//! slowdown (5.90 on a SparcStation 10 under Phish, Table 1) is almost
//! entirely the cost of packaging, scheduling, and synchronizing tasks.

use phish_core::{Cont, SpecStep, SpecTask, TaskFn, WordCodec, WordReader, Worker};

/// The best serial implementation: a plain doubly-recursive function, the
/// denominator of the Table 1 slowdown ratio.
pub fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

/// The parallel implementation in continuation-passing style: every
/// interior call allocates a join cell and spawns both sub-problems as
/// tasks, exactly as naive as the paper's version (no serial cutoff).
pub fn fib_task(n: u64, out: Cont) -> TaskFn<u64> {
    Box::new(move |w: &mut Worker<u64>| {
        if n < 2 {
            w.post(out, n);
            return;
        }
        let (ca, cb) = w.join2(move |a, b, w| w.post(out, a + b));
        w.spawn(move |w| fib_task(n - 1, ca)(w));
        w.spawn(move |w| fib_task(n - 2, cb)(w));
    })
}

/// Spec form of fib for the recovering engine and the simulator.
///
/// `step` performs one doubly-recursive expansion; the result monoid is
/// addition (fib(n) = Σ over leaves of the call tree of fib(leaf)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FibSpec {
    /// The argument.
    pub n: u64,
}

impl SpecTask for FibSpec {
    type Output = u64;

    fn step(self) -> SpecStep<Self> {
        if self.n < 2 {
            SpecStep::Leaf(self.n)
        } else {
            SpecStep::Expand {
                children: vec![FibSpec { n: self.n - 1 }, FibSpec { n: self.n - 2 }],
                partial: 0,
            }
        }
    }

    fn identity() -> u64 {
        0
    }

    fn merge(a: u64, b: u64) -> u64 {
        a + b
    }

    fn virtual_cost(&self) -> u64 {
        // A fib task does near-zero real work; the calibrated per-task
        // scheduling cost on modern hardware is ~100ns.
        100
    }
}

impl WordCodec for FibSpec {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.n);
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        Some(FibSpec { n: r.word()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phish_core::{run_serial, Engine, SchedulerConfig, SpecEngine};

    const FIBS: [u64; 16] = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610];

    #[test]
    fn serial_matches_table() {
        for (n, &expect) in FIBS.iter().enumerate() {
            assert_eq!(fib_serial(n as u64), expect);
        }
    }

    #[test]
    fn cps_single_worker_matches_serial() {
        let (v, stats) = Engine::run(SchedulerConfig::paper(1), fib_task(15, Cont::ROOT));
        assert_eq!(v, fib_serial(15));
        // Naive fib spawns the full call tree: tasks = calls + joins.
        assert!(stats.tasks_executed > 1000);
    }

    #[test]
    fn cps_multi_worker_matches_serial() {
        for workers in [2, 4] {
            let (v, _) = Engine::run(SchedulerConfig::paper(workers), fib_task(18, Cont::ROOT));
            assert_eq!(v, fib_serial(18));
        }
    }

    #[test]
    fn spec_matches_serial() {
        assert_eq!(run_serial(FibSpec { n: 20 }), fib_serial(20));
        let (v, _) = SpecEngine::run(SchedulerConfig::paper(3), FibSpec { n: 20 });
        assert_eq!(v, fib_serial(20));
    }

    #[test]
    fn spec_codec_roundtrips() {
        let spec = FibSpec { n: 31 };
        let mut words = Vec::new();
        spec.encode(&mut words);
        let mut r = WordReader::new(&words);
        assert_eq!(FibSpec::decode(&mut r), Some(spec));
        assert!(r.is_exhausted());
    }

    #[test]
    fn cps_working_set_stays_small() {
        // The Blumofe–Leiserson bound: space grows with depth, not with
        // the (exponential) task count.
        let (_, stats) = Engine::run(SchedulerConfig::paper(1), fib_task(20, Cont::ROOT));
        assert!(
            stats.max_tasks_in_use < 200,
            "working set {} should be O(depth), tasks were {}",
            stats.max_tasks_in_use,
            stats.tasks_executed
        );
    }
}
