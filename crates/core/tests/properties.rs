//! Property-based tests of phish-core's data structures and invariants.

use proptest::prelude::*;

use phish_core::codec::{bytes_to_words, words_to_bytes, WordCodec, WordReader};
use phish_core::{
    Cell, Cont, Engine, ExecOrder, ReadyDeque, SchedulerConfig, Slab, StealEnd, Worker,
};

// ---------------------------------------------------------------------
// Deque: any interleaving of owner ops and steals is a permutation — no
// element is lost or duplicated, and the order disciplines hold.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DequeOp {
    Push(u32),
    Pop,
    Steal,
}

fn deque_ops() -> impl Strategy<Value = Vec<DequeOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => any::<u32>().prop_map(DequeOp::Push),
            2 => Just(DequeOp::Pop),
            1 => Just(DequeOp::Steal),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn deque_is_a_permutation(ops in deque_ops()) {
        let d = ReadyDeque::new();
        let mut pushed = Vec::new();
        let mut removed = Vec::new();
        for op in ops {
            match op {
                DequeOp::Push(v) => {
                    d.push(v);
                    pushed.push(v);
                }
                DequeOp::Pop => {
                    if let Some((v, _)) = d.pop(ExecOrder::Lifo) {
                        removed.push(v);
                    }
                }
                DequeOp::Steal => {
                    if let Some(v) = d.steal(StealEnd::Tail) {
                        removed.push(v);
                    }
                }
            }
        }
        removed.extend(d.drain_all());
        pushed.sort_unstable();
        removed.sort_unstable();
        prop_assert_eq!(pushed, removed, "elements lost or duplicated");
    }

    #[test]
    fn lifo_pop_always_returns_most_recent_push(values in prop::collection::vec(any::<u32>(), 1..50)) {
        let d = ReadyDeque::new();
        for &v in &values {
            d.push(v);
        }
        // Popping LIFO returns the reverse of push order.
        let mut popped = Vec::new();
        while let Some((v, _)) = d.pop(ExecOrder::Lifo) {
            popped.push(v);
        }
        let mut expect = values.clone();
        expect.reverse();
        prop_assert_eq!(popped, expect);
    }

    #[test]
    fn tail_steals_return_oldest_first(values in prop::collection::vec(any::<u32>(), 1..50)) {
        let d = ReadyDeque::new();
        for &v in &values {
            d.push(v);
        }
        let mut stolen = Vec::new();
        while let Some(v) = d.steal(StealEnd::Tail) {
            stolen.push(v);
        }
        prop_assert_eq!(stolen, values, "FIFO steal order violated");
    }

    // -----------------------------------------------------------------
    // Slab: after any sequence of inserts and removes, live keys resolve
    // to their values, dead keys miss, and len is consistent.
    // -----------------------------------------------------------------

    #[test]
    fn slab_respects_liveness(ops in prop::collection::vec(any::<bool>(), 1..300), seed in any::<u64>()) {
        let mut slab = Slab::new();
        let mut live: Vec<(phish_core::SlabKey, u64)> = Vec::new();
        let mut dead: Vec<phish_core::SlabKey> = Vec::new();
        let mut next_value = seed;
        for insert in ops {
            if insert || live.is_empty() {
                next_value = next_value.wrapping_mul(6364136223846793005).wrapping_add(1);
                let key = slab.insert(next_value);
                live.push((key, next_value));
            } else {
                let idx = (next_value as usize) % live.len();
                let (key, value) = live.swap_remove(idx);
                prop_assert_eq!(slab.remove(key), Some(value));
                dead.push(key);
            }
        }
        prop_assert_eq!(slab.len(), live.len());
        for (key, value) in &live {
            prop_assert_eq!(slab.get(*key), Some(value));
        }
        for key in &dead {
            prop_assert!(slab.get(*key).is_none(), "stale key resolved");
        }
    }

    #[test]
    fn slab_migration_preserves_everything(n in 1usize..100, remove_mod in 2usize..5) {
        let mut src = Slab::new();
        let keys: Vec<_> = (0..n as u64).map(|i| src.insert(i)).collect();
        for (i, k) in keys.iter().enumerate() {
            if i % remove_mod == 0 {
                src.remove(*k);
            }
        }
        let expected_len = src.len();
        let dst = Slab::from_entries(src.drain_all());
        prop_assert_eq!(dst.len(), expected_len);
        for (i, k) in keys.iter().enumerate() {
            if i % remove_mod == 0 {
                prop_assert!(dst.get(*k).is_none());
            } else {
                prop_assert_eq!(dst.get(*k), Some(&(i as u64)));
            }
        }
    }

    // -----------------------------------------------------------------
    // Codec: arbitrary nested values roundtrip through words and bytes.
    // -----------------------------------------------------------------

    // -----------------------------------------------------------------
    // Join cells: for any post order, the cell fires exactly on the last
    // post; and through the engine, values always arrive in slot order.
    // -----------------------------------------------------------------

    #[test]
    fn cell_fires_exactly_on_last_post(order in prop::collection::vec(0usize..8, 1..8)) {
        // Build a permutation of 0..n from the raw vec.
        let n = order.len();
        let mut slots: Vec<usize> = (0..n).collect();
        for (i, r) in order.iter().enumerate() {
            slots.swap(i, r % n);
        }
        let mut cell: Cell<u64> = Cell::new(n, Box::new(|_, _| {}));
        for (k, slot) in slots.iter().enumerate() {
            let fired = cell.post(*slot as u32, *slot as u64);
            if k + 1 < n {
                prop_assert!(fired.is_none(), "fired early at post {k}");
            } else {
                prop_assert!(fired.is_some(), "failed to fire on last post");
            }
        }
    }

    #[test]
    fn join_values_arrive_in_slot_order_for_any_spawn_order(
        perm_seed in any::<u64>(),
        n in 2usize..10,
    ) {
        // Spawn children in a scrambled order; the continuation must still
        // see values by slot index.
        let mut slots: Vec<u64> = (0..n as u64).collect();
        let mut state = perm_seed;
        for i in (1..slots.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            slots.swap(i, (state as usize) % (i + 1));
        }
        let expected: u64 = (0..n as u64).fold(0, |acc, v| acc * 10 + v);
        let (v, _) = Engine::run_fn(SchedulerConfig::paper(2), move |w: &mut Worker<u64>| {
            let cell = w.join(n, move |vals, w| {
                let packed = vals.iter().fold(0, |acc, v| acc * 10 + v);
                w.post(Cont::ROOT, packed);
            });
            for s in slots {
                let cont = Cont::slot(cell, s as u32);
                w.spawn(move |w| w.post(cont, s));
            }
        });
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn codec_roundtrips_nested(v in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..10), 0..10)) {
        let mut words = Vec::new();
        v.encode(&mut words);
        let mut r = WordReader::new(&words);
        prop_assert_eq!(Vec::<Vec<u64>>::decode(&mut r), Some(v.clone()));
        prop_assert!(r.is_exhausted());
        // And through the byte layer.
        let bytes = words_to_bytes(&words);
        let back = bytes_to_words(&bytes).expect("length multiple of 8");
        prop_assert_eq!(back, words);
    }

    #[test]
    fn codec_never_panics_on_garbage(words in prop::collection::vec(any::<u64>(), 0..64)) {
        // Decoding arbitrary words must return, never panic or hang.
        let mut r = WordReader::new(&words);
        let _ = Vec::<Vec<u64>>::decode(&mut r);
        let mut r = WordReader::new(&words);
        let _ = <(u64, Vec<u32>)>::decode(&mut r);
    }
}
