//! The task and continuation model.
//!
//! Phish applications are written in continuation-passing style (the
//! "continuation-passing threads" model of Halbherr, Zhou, and Joerg that
//! the paper's applications use): a *task* is a run-to-completion closure
//! that may spawn child tasks and must eventually *post* its result to a
//! continuation. Synchronization requirements ("some tasks may need to wait
//! for other tasks") are expressed with join cells: a cell collects one
//! value per slot and, when the last slot is posted, its continuation
//! becomes a ready task on the worker hosting the cell.

use crate::cell::Cell;
use crate::slab::SlabKey;
use crate::worker::Worker;

/// Dense worker index within one parallel job.
pub type WorkerId = usize;

/// The closure type all tasks run. Receives the executing [`Worker`] so it
/// can spawn, allocate joins, and post results.
pub type TaskFn<T> = Box<dyn FnOnce(&mut Worker<T>) + Send>;

/// A schedulable unit of work.
pub struct Task<T> {
    /// The body.
    pub run: TaskFn<T>,
}

impl<T> Task<T> {
    /// Wraps a closure as a task.
    pub fn new(f: impl FnOnce(&mut Worker<T>) + Send + 'static) -> Self {
        Self { run: Box::new(f) }
    }
}

impl<T> std::fmt::Debug for Task<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Task")
    }
}

/// Names a join cell: the worker that allocated it ("original owner", which
/// is also the mailbox messages are routed to) plus its generational slab
/// key. If the owner retires, an adoptive worker takes over both the cells
/// and the mailbox, so a `CellRef` stays valid for the life of the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellRef {
    /// The worker that allocated the cell.
    pub owner: WorkerId,
    /// Slot within that worker's cell shard.
    pub key: SlabKey,
}

/// Where a posted value goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cont {
    target: Target,
    slot: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Slot `slot` of a join cell.
    Cell(CellRef),
    /// The job's final result (delivered to the engine / Clearinghouse).
    Root,
}

impl Cont {
    /// The job-result continuation. Posting here completes the job.
    pub const ROOT: Cont = Cont {
        target: Target::Root,
        slot: 0,
    };

    /// A continuation feeding slot `slot` of `cell`.
    pub fn slot(cell: CellRef, slot: u32) -> Self {
        Self {
            target: Target::Cell(cell),
            slot,
        }
    }

    /// The cell this continuation feeds, or `None` for the root.
    pub fn cell(&self) -> Option<CellRef> {
        match self.target {
            Target::Cell(c) => Some(c),
            Target::Root => None,
        }
    }

    /// The slot index within the cell (0 for the root).
    pub fn slot_index(&self) -> u32 {
        self.slot
    }

    /// True if this is the job-result continuation.
    pub fn is_root(&self) -> bool {
        matches!(self.target, Target::Root)
    }
}

/// Inter-worker messages. Every one of these corresponds to a network
/// message in the real system and is counted in `messages_sent`.
pub enum Msg<T> {
    /// A non-local synchronization: `value` fills `slot` of `cell`.
    Post {
        /// Target cell (routed by `cell.owner`'s mailbox).
        cell: CellRef,
        /// Slot to fill.
        slot: u32,
        /// The value.
        value: T,
    },
    /// A thief asks for work (message steal protocol).
    StealRequest {
        /// Who to reply to.
        thief: WorkerId,
    },
    /// The victim's answer: a task, or `None` if its list was empty.
    StealReply {
        /// The stolen task, if any.
        task: Option<Task<T>>,
    },
    /// A retiring worker hands everything it owns to an adoptive worker:
    /// its live cells (per origin shard), its remaining ready tasks, and —
    /// implicitly — responsibility for the origins' mailboxes.
    AdoptShard {
        /// The shard's original owner (whose mailbox the adoptee must now
        /// poll).
        origin: WorkerId,
        /// Live cells, keyed as the origin allocated them.
        cells: Vec<(SlabKey, Cell<T>)>,
        /// Ready tasks drained from the retiring worker's list.
        tasks: Vec<Task<T>>,
    },
}

impl<T> phish_net::WireSized for Msg<T> {
    fn wire_bytes(&self) -> usize {
        use phish_net::message::HEADER_BYTES;
        match self {
            // Cell name (owner + slab key), slot index, and one value word.
            Msg::Post { .. } => HEADER_BYTES + 24,
            Msg::StealRequest { .. } => HEADER_BYTES + 8,
            // A migrated task is a closure here, but on the wire it would be
            // a code pointer plus a small environment.
            Msg::StealReply { .. } => HEADER_BYTES + 16,
            Msg::AdoptShard { cells, tasks, .. } => {
                HEADER_BYTES + 8 + cells.len() * 32 + tasks.len() * 16
            }
        }
    }
}

impl<T> std::fmt::Debug for Msg<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Msg::Post { cell, slot, .. } => f
                .debug_struct("Post")
                .field("cell", cell)
                .field("slot", slot)
                .finish(),
            Msg::StealRequest { thief } => f
                .debug_struct("StealRequest")
                .field("thief", thief)
                .finish(),
            Msg::StealReply { task } => f
                .debug_struct("StealReply")
                .field("some", &task.is_some())
                .finish(),
            Msg::AdoptShard {
                origin,
                cells,
                tasks,
            } => f
                .debug_struct("AdoptShard")
                .field("origin", origin)
                .field("cells", &cells.len())
                .field("tasks", &tasks.len())
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_cont_is_root() {
        assert!(Cont::ROOT.is_root());
        assert_eq!(Cont::ROOT.cell(), None);
        assert_eq!(Cont::ROOT.slot_index(), 0);
    }

    #[test]
    fn slot_cont_carries_cell_and_slot() {
        let cell = CellRef {
            owner: 3,
            key: SlabKey { index: 7, gen: 1 },
        };
        let c = Cont::slot(cell, 2);
        assert!(!c.is_root());
        assert_eq!(c.cell(), Some(cell));
        assert_eq!(c.slot_index(), 2);
    }

    #[test]
    fn msg_debug_formats() {
        let m: Msg<u64> = Msg::StealRequest { thief: 4 };
        assert!(format!("{m:?}").contains("thief"));
        let m: Msg<u64> = Msg::StealReply { task: None };
        assert!(format!("{m:?}").contains("some: false"));
    }
}
