//! Ready-task lists.
//!
//! Each participant keeps "its own list of ready tasks whose synchronization
//! requirements have been met" (§2). The owner pushes newly spawned tasks at
//! the **head** and (by default) pops from the head — LIFO execution. A
//! thief takes from the **tail** — FIFO stealing. Both ends are
//! configuration knobs so the ablation benchmarks can show the alternatives
//! losing.
//!
//! Two implementations:
//!
//! * [`ReadyDeque`] — a mutex-protected `VecDeque`. Steals are rare (Table 2
//!   shows 133 steals against 10.4M tasks), so an uncontended lock per
//!   operation is cheap, and this version supports all four
//!   execution-order × steal-end combinations.
//! * [`lock_free::LockFreeDeque`] — a wrapper over `crossbeam::deque` (Chase–Lev).
//!   Restricted to the paper's LIFO-execution/FIFO-steal combination, it
//!   exists to quantify (in `bench/deque.rs`) what the lock costs.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::config::{ExecOrder, StealEnd};

/// A shareable, instrumented ready list.
///
/// The owner uses [`push`](Self::push)/[`pop`](Self::pop); thieves use
/// [`steal`](Self::steal). All methods take `&self`, so the deque is
/// typically held in an `Arc` and shared with would-be thieves.
#[derive(Debug)]
pub struct ReadyDeque<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for ReadyDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReadyDeque<T> {
    /// An empty deque.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner operation: insert a newly spawned ready task at the head.
    /// Returns the queue length after the push (the owner uses it for
    /// working-set accounting without a second lock).
    pub fn push(&self, task: T) -> usize {
        let mut q = self.inner.lock();
        q.push_front(task);
        q.len()
    }

    /// Owner operation: take the next task to execute, with the queue
    /// length remaining after the pop.
    pub fn pop(&self, order: ExecOrder) -> Option<(T, usize)> {
        let mut q = self.inner.lock();
        let t = match order {
            ExecOrder::Lifo => q.pop_front(),
            ExecOrder::Fifo => q.pop_back(),
        };
        t.map(|t| (t, q.len()))
    }

    /// Thief operation: take a task from the configured steal end.
    pub fn steal(&self, end: StealEnd) -> Option<T> {
        let mut q = self.inner.lock();
        match end {
            StealEnd::Tail => q.pop_back(),
            StealEnd::Head => q.pop_front(),
        }
    }

    /// Current length (racy under concurrency; fine for heuristics/stats).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when empty (racy under concurrency).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Removes everything, oldest first — used when a retiring worker
    /// migrates its remaining work.
    pub fn drain_all(&self) -> Vec<T> {
        let mut q = self.inner.lock();
        let mut out = Vec::with_capacity(q.len());
        while let Some(t) = q.pop_back() {
            out.push(t);
        }
        out
    }
}

/// Chase–Lev work-stealing deque (via crossbeam), fixed to the paper's
/// LIFO-execution / steal-the-other-end configuration.
pub mod lock_free {
    use crossbeam::deque::{Steal, Stealer, Worker};

    /// Owner half: push/pop LIFO.
    pub struct LockFreeDeque<T> {
        worker: Worker<T>,
    }

    /// Thief half: cloneable handle that steals FIFO.
    pub struct LockFreeStealer<T> {
        stealer: Stealer<T>,
    }

    impl<T> Clone for LockFreeStealer<T> {
        fn clone(&self) -> Self {
            Self {
                stealer: self.stealer.clone(),
            }
        }
    }

    impl<T> Default for LockFreeDeque<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> LockFreeDeque<T> {
        /// An empty LIFO deque.
        pub fn new() -> Self {
            Self {
                worker: Worker::new_lifo(),
            }
        }

        /// A stealer handle for other workers.
        pub fn stealer(&self) -> LockFreeStealer<T> {
            LockFreeStealer {
                stealer: self.worker.stealer(),
            }
        }

        /// Owner push (head).
        pub fn push(&self, task: T) {
            self.worker.push(task);
        }

        /// Owner pop (head — LIFO).
        pub fn pop(&self) -> Option<T> {
            self.worker.pop()
        }

        /// True when empty.
        pub fn is_empty(&self) -> bool {
            self.worker.is_empty()
        }
    }

    impl<T> LockFreeStealer<T> {
        /// Steal one task from the opposite end, retrying internal races.
        pub fn steal(&self) -> Option<T> {
            loop {
                match self.stealer.steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Empty => return None,
                    Steal::Retry => continue,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifo_pop_takes_newest() {
        let d = ReadyDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(ExecOrder::Lifo), Some((3, 2)));
        assert_eq!(d.pop(ExecOrder::Lifo), Some((2, 1)));
        assert_eq!(d.pop(ExecOrder::Lifo), Some((1, 0)));
        assert_eq!(d.pop(ExecOrder::Lifo), None);
    }

    #[test]
    fn fifo_pop_takes_oldest() {
        let d = ReadyDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(ExecOrder::Fifo), Some((1, 2)));
        assert_eq!(d.pop(ExecOrder::Fifo), Some((2, 1)));
        assert_eq!(d.pop(ExecOrder::Fifo), Some((3, 0)));
    }

    #[test]
    fn tail_steal_takes_oldest() {
        // Figure 1(c): with A,B,C,D in the list (A oldest), a thief
        // steals A from the tail.
        let d = ReadyDeque::new();
        for t in ["A", "B", "C", "D"] {
            d.push(t);
        }
        assert_eq!(d.steal(StealEnd::Tail), Some("A"));
        // Owner keeps working LIFO at the head: D next.
        assert_eq!(d.pop(ExecOrder::Lifo).map(|p| p.0), Some("D"));
    }

    #[test]
    fn head_steal_takes_newest() {
        let d = ReadyDeque::new();
        d.push(1);
        d.push(2);
        assert_eq!(d.steal(StealEnd::Head), Some(2));
    }

    #[test]
    fn len_and_empty() {
        let d = ReadyDeque::new();
        assert!(d.is_empty());
        d.push(1);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn drain_all_returns_oldest_first() {
        let d = ReadyDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.drain_all(), vec![1, 2, 3]);
        assert!(d.is_empty());
    }

    #[test]
    fn figure1_scenario() {
        // Figure 1(a): queue holds A,B,C,D with D newest (at head).
        let d = ReadyDeque::new();
        for t in ["A", "B", "C", "D"] {
            d.push(t);
        }
        // (b): owner executes D, which spawns E,F,G at the head.
        assert_eq!(d.pop(ExecOrder::Lifo).map(|p| p.0), Some("D"));
        for t in ["E", "F", "G"] {
            d.push(t);
        }
        // (c): a thief steals A from the tail.
        assert_eq!(d.steal(StealEnd::Tail), Some("A"));
        // Remaining, head→tail: G,F,E,C,B — owner sees G next and the tail
        // is now B.
        assert_eq!(d.pop(ExecOrder::Lifo).map(|p| p.0), Some("G"));
        assert_eq!(d.steal(StealEnd::Tail), Some("B"));
    }

    #[test]
    fn concurrent_steals_never_duplicate_or_lose() {
        let d = Arc::new(ReadyDeque::new());
        const N: usize = 10_000;
        for i in 0..N {
            d.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = d.steal(StealEnd::Tail) {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn lock_free_lifo_and_steal() {
        use super::lock_free::LockFreeDeque;
        let d = LockFreeDeque::new();
        let s = d.stealer();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3), "owner pops newest");
        assert_eq!(s.steal(), Some(1), "thief steals oldest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(s.steal(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn lock_free_concurrent_consistency() {
        use super::lock_free::LockFreeDeque;
        let d = LockFreeDeque::new();
        const N: usize = 10_000;
        for i in 0..N {
            d.push(i);
        }
        let s1 = d.stealer();
        let s2 = d.stealer();
        let t1 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = s1.steal() {
                got.push(v);
            }
            got
        });
        let t2 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = s2.steal() {
                got.push(v);
            }
            got
        });
        let mut all = Vec::new();
        while let Some(v) = d.pop() {
            all.push(v);
        }
        all.extend(t1.join().unwrap());
        all.extend(t2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>());
    }
}
