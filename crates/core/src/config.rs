//! Scheduler configuration.
//!
//! The paper's micro-level scheduler makes three specific choices — LIFO
//! execution order, FIFO steal order, uniformly random victims — and argues
//! each preserves locality. Every choice is a knob here so the ablation
//! benchmarks (`ablation_orders`) can demonstrate *why* the paper's settings
//! win.

use phish_net::{LossyConfig, Nanos, ReliableConfig};

/// Which end of its own ready list a worker executes from.
///
/// The paper: "While the queue is not empty, the process works on ready
/// tasks in a LIFO order" — newly spawned tasks go to the head and are
/// popped from the head, keeping the working set small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecOrder {
    /// Pop newest first (paper default).
    Lifo,
    /// Pop oldest first (ablation: working set balloons).
    Fifo,
}

/// Which end of the victim's ready list a thief steals from.
///
/// The paper: "stealing tasks is done in a FIFO manner" — the tail of the
/// list holds tasks near the base of the spawn tree, so one steal moves a
/// whole subtree's worth of future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StealEnd {
    /// Steal the oldest task (paper default; FIFO steal order).
    Tail,
    /// Steal the newest task (ablation: steals leaves, so thieves return
    /// immediately and communication explodes).
    Head,
}

/// How a thief picks its victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VictimPolicy {
    /// "The thief chooses uniformly at random a victim participant"
    /// (paper default, per Blumofe–Leiserson the provably good choice).
    UniformRandom,
    /// Cycle deterministically through participants (ablation).
    RoundRobin,
}

/// How steals move between thief and victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StealProtocol {
    /// The thief takes directly from the victim's (shared) ready list.
    /// Cheapest; models what a shared-memory implementation would do and is
    /// the default for the threaded engine.
    SharedMemory,
    /// The thief sends a steal-request message and the victim replies —
    /// exactly the paper's distributed protocol. Steal latency becomes the
    /// victim's task granularity plus two message costs.
    Message,
}

/// When an idle worker gives up and leaves the computation.
///
/// "If no task can be found even after many attempted steals, the amount of
/// parallelism in the job must have decreased. In response ... the thief
/// process terminates" — returning its workstation to the macro scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetirePolicy {
    /// Workers stay until the job completes (dedicated-cluster mode).
    Never,
    /// A worker retires after this many complete rounds of failed steal
    /// attempts (each round tries every other participant once).
    AfterFailedRounds(u32),
}

/// Complete configuration for the micro-level scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Number of participating workers.
    pub workers: usize,
    /// Execution order on the local ready list.
    pub exec_order: ExecOrder,
    /// Steal end on the victim's ready list.
    pub steal_end: StealEnd,
    /// Victim selection policy.
    pub victim_policy: VictimPolicy,
    /// Steal transport.
    pub steal_protocol: StealProtocol,
    /// Worker retirement policy.
    pub retire: RetirePolicy,
    /// Seed for the per-worker RNG streams (victim selection).
    pub seed: u64,
    /// Simulated software overhead charged per inter-worker message, in
    /// nanoseconds. Models the workstation-LAN cost the paper highlights.
    pub send_overhead: Nanos,
    /// Seeded fault injection on the inter-worker fabric: `Some` runs
    /// every steal message and non-local synchronisation over lossy
    /// datagrams with drop/duplicate/reorder faults, recovered to
    /// exactly-once delivery by the fabric's retransmission protocol —
    /// raw-UDP semantics, as on the paper's network. `None` (the default)
    /// uses reliable in-process links.
    pub link_faults: Option<LossyConfig>,
    /// Ack/retransmit tuning for faulty links: the retransmission timeout
    /// and retry budget the fabric's reliability layer uses when
    /// `link_faults` is set. Defaults to [`ReliableConfig::aggressive`]
    /// (rto = 50µs, 100 retries), which suits the in-memory fabric's
    /// near-zero latency; real sockets want [`ReliableConfig::lan`]
    /// (rto = 5ms, 200 retries) or a custom profile for the measured RTT.
    pub link_recovery: ReliableConfig,
    /// Per-worker scheduling-trace capacity in events; 0 disables tracing
    /// (the default — tracing costs one branch per operation when off).
    pub trace_capacity: usize,
    /// Measure per-task busy time (two clock reads per task — meaningful
    /// for coarse tasks, measurable overhead for fib-grain ones; off by
    /// default).
    pub track_busy: bool,
}

impl SchedulerConfig {
    /// The paper's configuration for `workers` participants: LIFO execution,
    /// FIFO (tail) steals, uniformly random victims.
    pub fn paper(workers: usize) -> Self {
        Self {
            workers,
            exec_order: ExecOrder::Lifo,
            steal_end: StealEnd::Tail,
            victim_policy: VictimPolicy::UniformRandom,
            steal_protocol: StealProtocol::SharedMemory,
            retire: RetirePolicy::Never,
            seed: 0x5EED,
            send_overhead: 0,
            link_faults: None,
            link_recovery: ReliableConfig::aggressive(),
            trace_capacity: 0,
            track_busy: false,
        }
    }

    /// Paper configuration but with the message-based steal protocol, as on
    /// the real 1994 network.
    pub fn paper_distributed(workers: usize) -> Self {
        Self {
            steal_protocol: StealProtocol::Message,
            ..Self::paper(workers)
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the per-message software overhead.
    pub fn with_send_overhead(mut self, overhead: Nanos) -> Self {
        self.send_overhead = overhead;
        self
    }

    /// Injects seeded link faults on the inter-worker fabric.
    pub fn with_link_faults(mut self, faults: LossyConfig) -> Self {
        self.link_faults = Some(faults);
        self
    }

    /// Overrides the ack/retransmit profile used on faulty links.
    pub fn with_link_recovery(mut self, recovery: ReliableConfig) -> Self {
        self.link_recovery = recovery;
        self
    }

    /// Enables scheduling traces with the given per-worker capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables per-task busy-time measurement.
    pub fn with_busy_tracking(mut self) -> Self {
        self.track_busy = true;
        self
    }

    /// Validates invariants (at least one worker).
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("SchedulerConfig.workers must be >= 1".into());
        }
        if let RetirePolicy::AfterFailedRounds(0) = self.retire {
            return Err("AfterFailedRounds(0) would retire workers instantly".into());
        }
        if let Some(f) = &self.link_faults {
            for (name, p) in [
                ("drop_prob", f.drop_prob),
                ("dup_prob", f.dup_prob),
                ("reorder_prob", f.reorder_prob),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("link_faults.{name} must be in [0, 1], got {p}"));
                }
                if name == "drop_prob" && p >= 1.0 {
                    return Err("link_faults.drop_prob of 1.0 can never deliver".into());
                }
            }
        }
        if self.link_recovery.rto == 0 {
            return Err("link_recovery.rto of 0 would retransmit every pump".into());
        }
        if self.link_recovery.max_retries == 0 {
            return Err("link_recovery.max_retries of 0 can never recover a loss".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_the_paper() {
        let c = SchedulerConfig::paper(8);
        assert_eq!(c.workers, 8);
        assert_eq!(c.exec_order, ExecOrder::Lifo);
        assert_eq!(c.steal_end, StealEnd::Tail);
        assert_eq!(c.victim_policy, VictimPolicy::UniformRandom);
        assert_eq!(c.steal_protocol, StealProtocol::SharedMemory);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn distributed_uses_message_protocol() {
        let c = SchedulerConfig::paper_distributed(4);
        assert_eq!(c.steal_protocol, StealProtocol::Message);
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(SchedulerConfig::paper(0).validate().is_err());
    }

    #[test]
    fn zero_failed_rounds_rejected() {
        let mut c = SchedulerConfig::paper(2);
        c.retire = RetirePolicy::AfterFailedRounds(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = SchedulerConfig::paper(2)
            .with_seed(9)
            .with_send_overhead(100)
            .with_link_recovery(ReliableConfig::lan());
        assert_eq!(c.seed, 9);
        assert_eq!(c.send_overhead, 100);
        assert_eq!(c.link_recovery.rto, ReliableConfig::lan().rto);
        assert_eq!(
            c.link_recovery.max_retries,
            ReliableConfig::lan().max_retries
        );
    }

    #[test]
    fn degenerate_link_recovery_rejected() {
        let zero_rto = SchedulerConfig::paper(2).with_link_recovery(ReliableConfig {
            rto: 0,
            max_retries: 4,
        });
        assert!(zero_rto.validate().is_err());
        let zero_retries = SchedulerConfig::paper(2).with_link_recovery(ReliableConfig {
            rto: 1000,
            max_retries: 0,
        });
        assert!(zero_retries.validate().is_err());
    }
}
