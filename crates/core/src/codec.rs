//! A tiny fixed-width serialization codec.
//!
//! Checkpointing (§6: "These include ... support for checkpointing") needs
//! task descriptors and partial results to survive a process boundary. The
//! codec is deliberately primitive — a stream of `u64` words — so it needs
//! no external serialization dependency and stays trivially portable: the
//! on-disk format is the word stream in little-endian byte order.

/// Reads a word stream produced by [`WordCodec::encode`].
#[derive(Debug, Clone)]
pub struct WordReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> WordReader<'a> {
    /// Reads from the start of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        Self { words, pos: 0 }
    }

    /// Takes the next word; `None` at end of stream.
    pub fn word(&mut self) -> Option<u64> {
        let w = self.words.get(self.pos).copied();
        if w.is_some() {
            self.pos += 1;
        }
        w
    }

    /// Words remaining.
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    /// True when the whole stream has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

/// Encode/decode as a stream of `u64` words.
///
/// Implementations must round-trip: `decode(encode(x)) == x`, consuming
/// exactly the words `encode` produced (so values can be concatenated).
pub trait WordCodec: Sized {
    /// Appends this value's words to `out`.
    fn encode(&self, out: &mut Vec<u64>);

    /// Reads one value; `None` on malformed/truncated input.
    fn decode(r: &mut WordReader<'_>) -> Option<Self>;
}

impl WordCodec for u64 {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(*self);
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        r.word()
    }
}

impl WordCodec for usize {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        r.word().map(|w| w as usize)
    }
}

impl WordCodec for u32 {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(u64::from(*self));
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        r.word().and_then(|w| u32::try_from(w).ok())
    }
}

impl<T: WordCodec> WordCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        let n = r.word()? as usize;
        // Cheap sanity bound: a length claiming more items than remaining
        // words is malformed (every item is ≥ 1 word).
        if n > r.remaining() {
            return None;
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Some(v)
    }
}

impl<A: WordCodec, B: WordCodec> WordCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u64>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        Some((A::decode(r)?, B::decode(r)?))
    }
}

/// Serializes a word stream to little-endian bytes (the on-disk format).
pub fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

/// Parses little-endian bytes back into words; `None` if the length is not
/// a multiple of 8.
pub fn bytes_to_words(bytes: &[u8]) -> Option<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WordCodec + PartialEq + std::fmt::Debug>(x: T) {
        let mut words = Vec::new();
        x.encode(&mut words);
        let mut r = WordReader::new(&words);
        assert_eq!(T::decode(&mut r), Some(x));
        assert!(r.is_exhausted(), "decode must consume exactly its words");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(12345usize);
        roundtrip(7u32);
    }

    #[test]
    fn vec_roundtrips() {
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(vec![vec![1u64], vec![], vec![2, 3]]);
    }

    #[test]
    fn tuple_roundtrips() {
        roundtrip((42u64, vec![1u32, 2]));
    }

    #[test]
    fn concatenated_values_decode_in_order() {
        let mut words = Vec::new();
        10u64.encode(&mut words);
        vec![1u64, 2].encode(&mut words);
        99u64.encode(&mut words);
        let mut r = WordReader::new(&words);
        assert_eq!(u64::decode(&mut r), Some(10));
        assert_eq!(Vec::<u64>::decode(&mut r), Some(vec![1, 2]));
        assert_eq!(u64::decode(&mut r), Some(99));
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_is_none() {
        let mut words = Vec::new();
        vec![1u64, 2, 3].encode(&mut words);
        words.pop();
        let mut r = WordReader::new(&words);
        assert_eq!(Vec::<u64>::decode(&mut r), None);
    }

    #[test]
    fn absurd_length_is_none() {
        let words = [u64::MAX, 1, 2];
        let mut r = WordReader::new(&words);
        assert_eq!(Vec::<u64>::decode(&mut r), None);
    }

    #[test]
    fn oversized_u32_is_none() {
        let words = [u64::from(u32::MAX) + 1];
        let mut r = WordReader::new(&words);
        assert_eq!(u32::decode(&mut r), None);
    }

    #[test]
    fn byte_roundtrip() {
        let words = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        let bytes = words_to_bytes(&words);
        assert_eq!(bytes.len(), 32);
        assert_eq!(bytes_to_words(&bytes), Some(words));
        assert_eq!(bytes_to_words(&bytes[..31]), None);
    }
}
