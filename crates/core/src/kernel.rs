//! The work-stealing kernel: the paper's micro-level discipline, once.
//!
//! Every engine in this repository schedules the same way — execute local
//! ready tasks in LIFO order, and when the local list runs dry, steal the
//! oldest task (FIFO) from a victim chosen uniformly at random. Before this
//! module existed that loop was written four times (threaded CPS engine,
//! spec-tree engine, crash-recovering engine, virtual-time microsim), each
//! with its own drifting statistics counters. The kernel splits the loop
//! into the parts that never change and the parts that do:
//!
//! * [`SchedulerCore`] — the scheduling loop itself ([`SchedulerCore::run`])
//!   plus its two step functions ([`SchedulerCore::next_work`],
//!   [`SchedulerCore::steal_once`]) for event-driven callers that cannot
//!   block in a loop (the microsim drives them from a virtual-clock event
//!   queue).
//! * [`Substrate`] — what the engines actually differ in: where local work
//!   is popped from, how a steal travels (direct shared-memory access, a
//!   split-phase message exchange, a simulated round trip), which workers
//!   are eligible victims, what "idle" means (spin, block on a channel,
//!   schedule an event), and the crash/retirement hooks.
//! * [`Workload`] — what the unit of work *is* and what executing one unit
//!   means: calling a boxed CPS closure against its [`Worker`], or stepping
//!   a self-describing [`SpecTask`] and routing its monoid results through a
//!   [`SpecSink`].
//! * [`KernelCtl`] — the per-worker control block every substrate embeds:
//!   the victim-selection RNG stream (seeded by [`worker_seed`], identical
//!   across engines), the round-robin cursor, the retirement counter, the
//!   unified [`WorkerStats`], and the optional [`TraceBuffer`]. All Table 2
//!   counters and all trace events are recorded through its `note_*`
//!   methods, so every engine counts with identical code.
//!
//! The steal-latency analyses this reproduction leans on (Gast–Khatiri–
//! Trystram; Van Houdt's stealing-vs-sharing comparison) vary exactly the
//! substrate parameters while holding the discipline fixed; keeping the
//! discipline in one module is what makes those variations trustworthy.

use std::ops::ControlFlow;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{RetirePolicy, SchedulerConfig, VictimPolicy};
use crate::spec::{SpecStep, SpecTask};
use crate::stats::WorkerStats;
use crate::task::{Task, WorkerId};
use crate::trace::{TraceBuffer, TraceEventKind};
use crate::worker::Worker;

/// The per-worker RNG seed used by every engine: decorrelates the workers'
/// victim streams while keeping each run reproducible from the job seed.
#[inline]
pub fn worker_seed(job_seed: u64, id: WorkerId) -> u64 {
    job_seed ^ ((id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Per-worker control block: victim selection, retirement accounting,
/// statistics, and tracing — the instrumented state every substrate embeds.
#[derive(Debug)]
pub struct KernelCtl {
    /// This worker's id within the job.
    pub id: WorkerId,
    /// Number of workers configured for the job.
    pub workers: usize,
    /// How [`KernelCtl::choose_victim`] picks from the candidate set.
    pub victim_policy: VictimPolicy,
    /// When repeated steal failures should retire this worker.
    pub retire: RetirePolicy,
    /// The unified Table 2 counters.
    pub stats: WorkerStats,
    /// Scheduling-event recorder, when enabled.
    pub trace: Option<TraceBuffer>,
    rng: SmallRng,
    rr_cursor: usize,
    consecutive_failed: u64,
}

impl KernelCtl {
    /// A control block with the given victim policy and no retirement,
    /// seeded from the job seed by [`worker_seed`].
    pub fn new(id: WorkerId, workers: usize, victim_policy: VictimPolicy, job_seed: u64) -> Self {
        Self {
            id,
            workers,
            victim_policy,
            retire: RetirePolicy::Never,
            stats: WorkerStats::default(),
            trace: None,
            rng: SmallRng::seed_from_u64(worker_seed(job_seed, id)),
            rr_cursor: id,
            consecutive_failed: 0,
        }
    }

    /// A control block taking victim policy, retirement, seed, and trace
    /// capacity from a [`SchedulerConfig`].
    pub fn from_config(id: WorkerId, cfg: &SchedulerConfig) -> Self {
        let mut ctl = Self::new(id, cfg.workers, cfg.victim_policy, cfg.seed);
        ctl.retire = cfg.retire;
        if cfg.trace_capacity > 0 {
            ctl.trace = Some(TraceBuffer::new(id, cfg.trace_capacity));
        }
        ctl
    }

    /// Records a trace event (no-op when tracing is disabled).
    #[inline]
    pub fn record(&mut self, kind: TraceEventKind) {
        if let Some(t) = self.trace.as_mut() {
            t.record(kind);
        }
    }

    /// Picks a victim from `candidates` under this worker's policy:
    /// uniformly at random (the paper's choice) or round-robin (ablation).
    /// Returns `None` when there is nobody to steal from.
    ///
    /// The candidate set is the substrate's business — active participants,
    /// live peers, or a cluster-biased subset — which is how §6's cut-aware
    /// policies compose with the kernel's uniform draw.
    pub fn choose_victim(&mut self, candidates: &[WorkerId]) -> Option<WorkerId> {
        if candidates.is_empty() {
            return None;
        }
        match self.victim_policy {
            VictimPolicy::UniformRandom => {
                Some(candidates[self.rng.gen_range(0..candidates.len())])
            }
            VictimPolicy::RoundRobin => {
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                Some(candidates[self.rr_cursor % candidates.len()])
            }
        }
    }

    /// Accounts one executed task.
    #[inline]
    pub fn note_exec(&mut self) {
        self.stats.tasks_executed += 1;
        self.record(TraceEventKind::Exec);
    }

    /// Accounts `n` spawned tasks.
    #[inline]
    pub fn note_spawn(&mut self, n: u64) {
        self.stats.tasks_spawned += n;
        if self.trace.is_some() {
            for _ in 0..n {
                self.record(TraceEventKind::Spawn);
            }
        }
    }

    /// Accounts one successful steal from `victim`. Used both by the
    /// kernel's own [`SchedulerCore::steal_once`] and by substrates whose
    /// steals resolve asynchronously (message replies, simulated round
    /// trips), so success is counted by identical code everywhere.
    #[inline]
    pub fn note_steal_success(&mut self, victim: WorkerId) {
        self.stats.tasks_stolen += 1;
        self.consecutive_failed = 0;
        self.record(TraceEventKind::StealSuccess { victim });
    }

    /// Accounts one empty-handed steal attempt against `victim`.
    #[inline]
    pub fn note_steal_fail(&mut self, victim: WorkerId) {
        self.stats.failed_steal_attempts += 1;
        self.record(TraceEventKind::StealFail { victim });
    }

    /// Resets the retirement counter (local work was found).
    #[inline]
    fn note_progress(&mut self) {
        self.consecutive_failed = 0;
    }

    /// Counts one fruitless scheduling round and reports whether the
    /// retirement policy now says to leave: "if no task can be found even
    /// after many attempted steals, the amount of parallelism in the job
    /// must have decreased" (§2). A round is one attempt per other
    /// participant.
    fn note_fruitless_round(&mut self) -> bool {
        self.consecutive_failed += 1;
        match self.retire {
            RetirePolicy::Never => false,
            RetirePolicy::AfterFailedRounds(rounds) => {
                let attempts_per_round = self.workers.saturating_sub(1).max(1) as u64;
                self.consecutive_failed >= u64::from(rounds) * attempts_per_round
            }
        }
    }
}

/// What the unit of schedulable work is and what executing one unit means.
///
/// Two workloads cover every engine: [`CpsWorkload`] (boxed
/// continuation-passing closures synchronizing through join cells) and
/// [`SpecWorkload`] (self-describing monoid trees). The substrate supplies
/// the execution context `Cx`; the workload defines the execution itself.
pub trait Workload {
    /// The schedulable unit.
    type Work;
    /// The engine-side context one unit executes against.
    type Cx<'a>: ?Sized;
    /// Executes one unit.
    fn execute(work: Self::Work, cx: &mut Self::Cx<'_>);
}

/// Boxed CPS closures executing against their [`Worker`] (join cells,
/// mailboxes, spawn/post API).
#[derive(Debug, Default, Clone, Copy)]
pub struct CpsWorkload<T>(std::marker::PhantomData<T>);

impl<T: Send + 'static> Workload for CpsWorkload<T> {
    type Work = Task<T>;
    type Cx<'a> = Worker<T>;

    fn execute(work: Task<T>, cx: &mut Worker<T>) {
        (work.run)(cx);
    }
}

/// Where a stepped spec's effects land. Each spec engine differs only in
/// this sink: the crash-free engine merges into a thread-local accumulator
/// and decrements a global outstanding counter; the recovering engine
/// merges into the current assignment's ledger-guarded accumulator; the
/// microsim merges into the job accumulator and schedules child events.
pub trait SpecSink<S: SpecTask> {
    /// Folds a completed result (leaf output or expansion partial) in.
    fn merge(&mut self, out: S::Output);
    /// Makes freshly expanded children ready. Called before
    /// [`SpecSink::finished`], so outstanding-work accounting never dips to
    /// zero while children exist.
    fn spawn(&mut self, children: Vec<S>);
    /// The stepped spec itself is finished (its children, if any, were
    /// already handed to [`SpecSink::spawn`]).
    fn finished(&mut self);
}

/// Self-describing [`SpecTask`] trees executing against a [`SpecSink`].
///
/// This is the single definition of how a spec node is stepped — the
/// leaf/expand routing and its ordering invariant live here, not in each
/// engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpecWorkload<S>(std::marker::PhantomData<S>);

impl<S: SpecTask> Workload for SpecWorkload<S> {
    type Work = S;
    type Cx<'a> = dyn SpecSink<S> + 'a;

    fn execute(work: S, cx: &mut (dyn SpecSink<S> + '_)) {
        match work.step() {
            SpecStep::Leaf(out) => {
                cx.merge(out);
                cx.finished();
            }
            SpecStep::Expand { children, partial } => {
                cx.merge(partial);
                cx.spawn(children);
                cx.finished();
            }
        }
    }
}

/// The work obtained by one steal attempt.
#[derive(Debug)]
pub enum StealAttempt<W> {
    /// The victim gave up a task.
    Got(W),
    /// The victim's ready list was empty.
    Empty,
    /// The attempt is in flight and resolves later (split-phase message
    /// protocols, simulated round trips). The substrate accounts the
    /// resolution itself via [`KernelCtl::note_steal_success`] /
    /// [`KernelCtl::note_steal_fail`].
    Pending,
}

/// Outcome of one [`SchedulerCore::steal_once`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealOutcome {
    /// A task was stolen and admitted to the local ready list.
    Got,
    /// The chosen victim had nothing.
    Failed,
    /// The attempt resolves asynchronously.
    Pending,
    /// No eligible victim existed.
    NoVictim,
}

/// What one engine plugs into the kernel: local-work access, steal
/// transport, victim eligibility, idleness, and lifecycle hooks.
///
/// Implementations embed a [`KernelCtl`] and hand it out via
/// [`Substrate::ctl`]; the kernel routes all accounting through it.
/// [`Substrate::execute`] must call [`KernelCtl::note_exec`] exactly once
/// per executed unit (substrates that execute work outside the kernel loop
/// — e.g. while waiting out a split-phase steal — account those the same
/// way, which is why the kernel does not count executions itself).
pub trait Substrate {
    /// The workload this substrate schedules.
    type Load: Workload;

    /// The embedded control block.
    fn ctl(&mut self) -> &mut KernelCtl;

    /// True when the job has completed (or this worker must stop).
    fn done(&self) -> bool;

    /// Housekeeping at the top of every scheduling round: drain mailboxes,
    /// heartbeat the clearinghouse, apply recovery. `Break` stops the
    /// worker. The default does nothing.
    fn drain(&mut self) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }

    /// Takes the next unit of local ready work, in the configured
    /// execution order (LIFO for the paper).
    fn pop_local(&mut self) -> Option<Work<Self>>;

    /// Writes the eligible victims into `buf` (cleared by the caller). The
    /// default offers every other worker; substrates narrow this to active
    /// participants, live peers, or a cluster-biased subset.
    fn victim_candidates(&mut self, buf: &mut Vec<WorkerId>) {
        let (id, n) = {
            let ctl = self.ctl();
            (ctl.id, ctl.workers)
        };
        buf.extend((0..n).filter(|w| *w != id));
    }

    /// One steal attempt against `victim` over this substrate's transport.
    fn try_steal(&mut self, victim: WorkerId) -> StealAttempt<Work<Self>>;

    /// Admits stolen work to the local ready list.
    fn admit(&mut self, loot: Work<Self>);

    /// Executes one unit (via the workload), returning `Break` to stop the
    /// worker (crash injection, fatal conditions).
    fn execute(&mut self, work: Work<Self>) -> ControlFlow<()>;

    /// Called when a scheduling round found neither local nor stolen work.
    /// The default spins briefly and yields; blocking substrates wait on
    /// their channel instead.
    fn idle(&mut self) {
        std::hint::spin_loop();
        std::thread::yield_now();
    }

    /// Attempts to leave the computation after the retirement policy
    /// triggered, migrating hosted state. Returns `true` when the worker
    /// actually left. The default never retires.
    fn try_retire(&mut self) -> bool {
        false
    }
}

/// The unit of work scheduled by substrate `S`.
pub type Work<S> = <<S as Substrate>::Load as Workload>::Work;

/// The scheduling loop — the only implementation of the paper's
/// LIFO-exec / random-victim / FIFO-steal discipline.
///
/// Threaded engines call [`SchedulerCore::run`]; the event-driven microsim
/// calls the step functions from its event handlers instead.
#[derive(Debug, Default)]
pub struct SchedulerCore {
    victims: Vec<WorkerId>,
}

impl SchedulerCore {
    /// A core with an empty (reusable) victim buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the next local unit, resetting the retirement counter.
    pub fn next_work<S: Substrate>(&mut self, sub: &mut S) -> Option<Work<S>> {
        let work = sub.pop_local()?;
        sub.ctl().note_progress();
        Some(work)
    }

    /// One steal attempt: pick a victim from the substrate's candidates
    /// under the control block's policy, try the substrate's transport,
    /// and account the outcome.
    pub fn steal_once<S: Substrate>(&mut self, sub: &mut S) -> StealOutcome {
        self.victims.clear();
        let buf = &mut self.victims;
        sub.victim_candidates(buf);
        let Some(victim) = sub.ctl().choose_victim(buf) else {
            return StealOutcome::NoVictim;
        };
        match sub.try_steal(victim) {
            StealAttempt::Got(loot) => {
                sub.ctl().note_steal_success(victim);
                sub.admit(loot);
                StealOutcome::Got
            }
            StealAttempt::Empty => {
                sub.ctl().note_steal_fail(victim);
                StealOutcome::Failed
            }
            StealAttempt::Pending => StealOutcome::Pending,
        }
    }

    /// Runs the worker to completion: drain, execute local work LIFO,
    /// steal when empty, idle when the steal fails, retire when the
    /// policy says so. Sets the worker's `participation_ns` on exit.
    pub fn run<S: Substrate>(&mut self, sub: &mut S) {
        let start = Instant::now();
        loop {
            if sub.drain().is_break() {
                break;
            }
            if sub.done() {
                break;
            }
            if let Some(work) = self.next_work(sub) {
                if sub.execute(work).is_break() {
                    break;
                }
                continue;
            }
            match self.steal_once(sub) {
                StealOutcome::Got => continue,
                StealOutcome::Failed | StealOutcome::NoVictim => {
                    if sub.ctl().note_fruitless_round() && sub.try_retire() {
                        break;
                    }
                }
                StealOutcome::Pending => {}
            }
            sub.idle();
        }
        sub.ctl().stats.participation_ns = start.elapsed().as_nanos() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn worker_seed_decorrelates_and_reproduces() {
        assert_eq!(worker_seed(7, 3), worker_seed(7, 3));
        assert_ne!(worker_seed(7, 3), worker_seed(7, 4));
        assert_ne!(worker_seed(7, 3), worker_seed(8, 3));
    }

    #[test]
    fn uniform_choice_stays_in_candidates() {
        let mut ctl = KernelCtl::new(0, 8, VictimPolicy::UniformRandom, 42);
        let candidates = [2, 5, 7];
        for _ in 0..100 {
            let v = ctl.choose_victim(&candidates).unwrap();
            assert!(candidates.contains(&v));
        }
        assert_eq!(ctl.choose_victim(&[]), None);
    }

    #[test]
    fn round_robin_cycles() {
        let mut ctl = KernelCtl::new(0, 4, VictimPolicy::RoundRobin, 0);
        let candidates = [1, 2, 3];
        let picks: Vec<_> = (0..6)
            .map(|_| ctl.choose_victim(&candidates).unwrap())
            .collect();
        assert_eq!(picks[0..3], picks[3..6], "period equals candidate count");
        let mut seen = picks[0..3].to_vec();
        seen.sort_unstable();
        assert_eq!(seen, candidates, "every candidate is visited");
    }

    #[test]
    fn retirement_counter_counts_rounds() {
        let mut ctl = KernelCtl::new(0, 4, VictimPolicy::UniformRandom, 0);
        ctl.retire = RetirePolicy::AfterFailedRounds(2);
        // 2 rounds × 3 other participants = 6 fruitless attempts.
        for _ in 0..5 {
            assert!(!ctl.note_fruitless_round());
        }
        assert!(ctl.note_fruitless_round());
        ctl.note_steal_success(1);
        assert!(!ctl.note_fruitless_round(), "success resets the counter");
    }

    #[test]
    fn note_methods_update_the_unified_counters() {
        let mut ctl = KernelCtl::new(1, 4, VictimPolicy::UniformRandom, 0);
        ctl.trace = Some(TraceBuffer::new(1, 100));
        ctl.note_exec();
        ctl.note_spawn(2);
        ctl.note_steal_success(0);
        ctl.note_steal_fail(2);
        assert_eq!(ctl.stats.tasks_executed, 1);
        assert_eq!(ctl.stats.tasks_spawned, 2);
        assert_eq!(ctl.stats.tasks_stolen, 1);
        assert_eq!(ctl.stats.failed_steal_attempts, 1);
        let t = ctl.trace.take().unwrap();
        assert_eq!(t.len(), 5, "exec + 2 spawns + steal success + fail");
    }

    /// A toy spec for exercising the workload routing.
    #[derive(Debug, Clone)]
    struct Split(u64);

    impl SpecTask for Split {
        type Output = u64;
        fn step(self) -> SpecStep<Self> {
            if self.0 <= 1 {
                SpecStep::Leaf(self.0)
            } else {
                let half = self.0 / 2;
                SpecStep::Expand {
                    children: vec![Split(half), Split(self.0 - half)],
                    partial: 0,
                }
            }
        }
        fn identity() -> u64 {
            0
        }
        fn merge(a: u64, b: u64) -> u64 {
            a + b
        }
    }

    #[derive(Default)]
    struct CollectSink {
        acc: u64,
        ready: VecDeque<Split>,
        outstanding: i64,
        order_ok: bool,
    }

    impl SpecSink<Split> for CollectSink {
        fn merge(&mut self, out: u64) {
            self.acc += out;
        }
        fn spawn(&mut self, children: Vec<Split>) {
            self.outstanding += children.len() as i64;
            self.ready.extend(children);
        }
        fn finished(&mut self) {
            self.outstanding -= 1;
            // spawn-before-finished keeps this from dipping below zero
            // while children exist.
            self.order_ok &= self.outstanding >= 0 || self.ready.is_empty();
        }
    }

    #[test]
    fn spec_workload_routes_through_the_sink_in_order() {
        let mut sink = CollectSink {
            outstanding: 1,
            order_ok: true,
            ..Default::default()
        };
        sink.ready.push_back(Split(10));
        while let Some(s) = sink.ready.pop_front() {
            SpecWorkload::execute(s, &mut sink);
        }
        assert_eq!(sink.acc, 10);
        assert_eq!(sink.outstanding, 0);
        assert!(sink.order_ok);
    }
}
