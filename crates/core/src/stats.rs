//! Scheduling and communication statistics.
//!
//! Table 2 of the paper reports, for pfold executions with 4 and 8
//! participants: tasks executed, max tasks in use, tasks stolen,
//! synchronizations, non-local synchronizations, messages sent, and
//! execution time. [`WorkerStats`] collects exactly those quantities (plus a
//! few useful extras) per worker with plain counters — no atomics on the hot
//! path — and [`JobStats`] merges them at job completion.

use phish_net::Nanos;

/// Per-worker counters, updated only by the owning worker thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed to completion.
    pub tasks_executed: u64,
    /// Tasks this worker spawned (pushed onto its ready list).
    pub tasks_spawned: u64,
    /// Tasks this worker obtained by stealing from a victim.
    pub tasks_stolen: u64,
    /// Steal attempts that came back empty-handed.
    pub failed_steal_attempts: u64,
    /// Argument posts to join cells (the paper's "synchronizations").
    pub synchronizations: u64,
    /// Posts whose target cell lived on a different worker, requiring a
    /// message (the paper's "non-local synchs").
    pub nonlocal_synchronizations: u64,
    /// Messages this worker sent (posts to remote cells, steal requests and
    /// replies under the message protocol, migration notices).
    pub messages_sent: u64,
    /// Current number of "tasks in use": ready tasks resident here plus
    /// live join cells (allocated frames awaiting arguments) plus the task
    /// being executed. The paper uses the high-water mark of this value as
    /// the working-set measure.
    pub tasks_in_use: u64,
    /// High-water mark of [`WorkerStats::tasks_in_use`].
    pub max_tasks_in_use: u64,
    /// Wall-clock nanoseconds this worker participated (start → exit).
    pub participation_ns: Nanos,
    /// Nanoseconds spent executing tasks (as opposed to scheduling or
    /// hunting for work).
    pub busy_ns: Nanos,
}

impl WorkerStats {
    /// Records an observation of the current tasks-in-use count, keeping
    /// the high-water mark. The threaded engine samples at every local
    /// scheduling operation; in-use can only *fall* between samples (steals
    /// remove tasks), so maxima are never missed.
    #[inline]
    pub fn sample_in_use(&mut self, current: u64) {
        self.tasks_in_use = current;
        if current > self.max_tasks_in_use {
            self.max_tasks_in_use = current;
        }
    }

    /// Adjusts the in-use count by `delta` and maintains the high-water
    /// mark. Panics in debug builds if the count would go negative.
    #[inline]
    pub fn adjust_in_use(&mut self, delta: i64) {
        if delta >= 0 {
            self.tasks_in_use += delta as u64;
            if self.tasks_in_use > self.max_tasks_in_use {
                self.max_tasks_in_use = self.tasks_in_use;
            }
        } else {
            let dec = (-delta) as u64;
            debug_assert!(
                self.tasks_in_use >= dec,
                "tasks_in_use underflow: {} - {}",
                self.tasks_in_use,
                dec
            );
            self.tasks_in_use = self.tasks_in_use.saturating_sub(dec);
        }
    }
}

/// Whole-job statistics: sums across workers, except the working-set
/// measure, which (as in Table 2) is the *maximum over workers*.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Per-worker snapshots, indexed by worker id.
    pub per_worker: Vec<WorkerStats>,
    /// Σ tasks executed.
    pub tasks_executed: u64,
    /// Σ tasks spawned.
    pub tasks_spawned: u64,
    /// Σ tasks stolen (Table 2: "Tasks stolen").
    pub tasks_stolen: u64,
    /// Σ failed steal attempts.
    pub failed_steal_attempts: u64,
    /// Σ synchronizations (Table 2: "Synchronizations").
    pub synchronizations: u64,
    /// Σ non-local synchronizations (Table 2: "Non-local synchs").
    pub nonlocal_synchronizations: u64,
    /// Σ messages sent by workers (Table 2: "Messages sent"); transports may
    /// add their own accounting on top.
    pub messages_sent: u64,
    /// max over workers of max tasks in use (Table 2: "Max tasks in use").
    pub max_tasks_in_use: u64,
    /// Wall-clock time of the whole run.
    pub elapsed_ns: Nanos,
}

impl JobStats {
    /// Merges per-worker stats into job totals.
    pub fn from_workers(per_worker: Vec<WorkerStats>, elapsed_ns: Nanos) -> Self {
        let mut s = JobStats {
            elapsed_ns,
            ..Default::default()
        };
        for w in &per_worker {
            s.tasks_executed += w.tasks_executed;
            s.tasks_spawned += w.tasks_spawned;
            s.tasks_stolen += w.tasks_stolen;
            s.failed_steal_attempts += w.failed_steal_attempts;
            s.synchronizations += w.synchronizations;
            s.nonlocal_synchronizations += w.nonlocal_synchronizations;
            s.messages_sent += w.messages_sent;
            s.max_tasks_in_use = s.max_tasks_in_use.max(w.max_tasks_in_use);
        }
        s.per_worker = per_worker;
        s
    }

    /// The average per-participant execution time, `Σ T_P(i) / P` — the
    /// quantity plotted in Figure 4.
    pub fn avg_participation_ns(&self) -> Nanos {
        if self.per_worker.is_empty() {
            return 0;
        }
        let total: u128 = self
            .per_worker
            .iter()
            .map(|w| w.participation_ns as u128)
            .sum();
        (total / self.per_worker.len() as u128) as Nanos
    }

    /// The paper's P-processor speedup `S_P = P · T_1 / Σ T_P(i)` given the
    /// one-participant execution time `t1_ns`.
    pub fn speedup_vs(&self, t1_ns: Nanos) -> f64 {
        let total: u128 = self
            .per_worker
            .iter()
            .map(|w| w.participation_ns as u128)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let p = self.per_worker.len() as f64;
        p * (t1_ns as f64) / (total as f64)
    }
}

impl std::fmt::Display for JobStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Tasks executed    {:>14}", self.tasks_executed)?;
        writeln!(f, "Max tasks in use  {:>14}", self.max_tasks_in_use)?;
        writeln!(f, "Tasks stolen      {:>14}", self.tasks_stolen)?;
        writeln!(f, "Synchronizations  {:>14}", self.synchronizations)?;
        writeln!(
            f,
            "Non-local synchs  {:>14}",
            self.nonlocal_synchronizations
        )?;
        writeln!(f, "Messages sent     {:>14}", self.messages_sent)?;
        write!(
            f,
            "Execution time    {:>11.3} s",
            self.elapsed_ns as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_use_tracks_high_water_mark() {
        let mut w = WorkerStats::default();
        w.adjust_in_use(3);
        w.adjust_in_use(-1);
        w.adjust_in_use(5);
        assert_eq!(w.tasks_in_use, 7);
        assert_eq!(w.max_tasks_in_use, 7);
        w.adjust_in_use(-7);
        assert_eq!(w.tasks_in_use, 0);
        assert_eq!(w.max_tasks_in_use, 7);
    }

    #[test]
    fn job_stats_sums_and_maxes() {
        let a = WorkerStats {
            tasks_executed: 10,
            tasks_stolen: 1,
            synchronizations: 9,
            nonlocal_synchronizations: 2,
            messages_sent: 4,
            max_tasks_in_use: 5,
            participation_ns: 100,
            ..Default::default()
        };
        let b = WorkerStats {
            tasks_executed: 20,
            tasks_stolen: 0,
            synchronizations: 19,
            nonlocal_synchronizations: 1,
            messages_sent: 2,
            max_tasks_in_use: 8,
            participation_ns: 300,
            ..Default::default()
        };
        let j = JobStats::from_workers(vec![a, b], 500);
        assert_eq!(j.tasks_executed, 30);
        assert_eq!(j.tasks_stolen, 1);
        assert_eq!(j.synchronizations, 28);
        assert_eq!(j.nonlocal_synchronizations, 3);
        assert_eq!(j.messages_sent, 6);
        assert_eq!(j.max_tasks_in_use, 8, "max, not sum");
        assert_eq!(j.elapsed_ns, 500);
        assert_eq!(j.avg_participation_ns(), 200);
    }

    #[test]
    fn speedup_formula_matches_paper() {
        // P = 2 participants each running 100ns, T1 = 200ns:
        // S_2 = 2 * 200 / (100 + 100) = 2.0 (perfect).
        let w = WorkerStats {
            participation_ns: 100,
            ..Default::default()
        };
        let j = JobStats::from_workers(vec![w, w], 100);
        assert!((j.speedup_vs(200) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_table2_rows() {
        let j = JobStats::from_workers(vec![WorkerStats::default()], 1_500_000_000);
        let s = format!("{j}");
        for row in [
            "Tasks executed",
            "Max tasks in use",
            "Tasks stolen",
            "Synchronizations",
            "Non-local synchs",
            "Messages sent",
            "Execution time",
        ] {
            assert!(s.contains(row), "missing row {row}");
        }
        assert!(s.contains("1.500 s"));
    }

    #[test]
    fn empty_job_stats_are_zero() {
        let j = JobStats::from_workers(vec![], 0);
        assert_eq!(j.avg_participation_ns(), 0);
        assert_eq!(j.speedup_vs(100), 0.0);
    }
}
