//! Join cells: the synchronization primitive.
//!
//! A join cell is an argument frame with `n` slots and a continuation.
//! Every post fills one slot; the post that fills the last slot *fires* the
//! cell, turning the continuation plus collected arguments into a ready
//! task. This is the missing-arguments-counter synchronization of the
//! continuation-passing-threads model the paper's applications use.

use crate::task::Task;
use crate::worker::Worker;

/// The continuation stored in a cell: receives the slot values in slot
/// order plus the executing worker.
pub type JoinFn<T> = Box<dyn FnOnce(Vec<T>, &mut Worker<T>) + Send>;

/// A live join cell.
pub struct Cell<T> {
    missing: u32,
    slots: Vec<Option<T>>,
    cont: Option<JoinFn<T>>,
}

impl<T: Send + 'static> Cell<T> {
    /// A cell awaiting `nslots` posts. Panics if `nslots` is zero — a join
    /// with nothing to wait for is a plain spawn.
    pub fn new(nslots: usize, cont: JoinFn<T>) -> Self {
        assert!(nslots > 0, "join cell needs at least one slot");
        Self {
            missing: nslots as u32,
            slots: (0..nslots).map(|_| None).collect(),
            cont: Some(cont),
        }
    }

    /// Number of slots still empty.
    pub fn missing(&self) -> u32 {
        self.missing
    }

    /// Fills `slot` with `value`. Returns the ready continuation task when
    /// this was the last missing slot.
    ///
    /// Panics on a double post to the same slot — that is a programming
    /// error in the application (each continuation must be posted exactly
    /// once).
    pub fn post(&mut self, slot: u32, value: T) -> Option<Task<T>> {
        let entry = self
            .slots
            .get_mut(slot as usize)
            .unwrap_or_else(|| panic!("post to out-of-range slot {slot}"));
        assert!(entry.is_none(), "double post to slot {slot}");
        *entry = Some(value);
        self.missing -= 1;
        if self.missing > 0 {
            return None;
        }
        let values: Vec<T> = self
            .slots
            .drain(..)
            .map(|v| v.expect("all slots filled when missing hits zero"))
            .collect();
        let cont = self.cont.take().expect("cell fired twice");
        Some(Task::new(move |w| cont(values, w)))
    }
}

impl<T> std::fmt::Debug for Cell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell")
            .field("missing", &self.missing)
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_on_last_post() {
        let mut c: Cell<u64> = Cell::new(3, Box::new(|vals, _| drop(vals)));
        assert!(c.post(0, 10).is_none());
        assert_eq!(c.missing(), 2);
        assert!(c.post(2, 30).is_none());
        assert!(c.post(1, 20).is_some(), "third post must fire");
    }

    #[test]
    fn single_slot_fires_immediately() {
        let mut c: Cell<u64> = Cell::new(1, Box::new(|_, _| {}));
        assert!(c.post(0, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "double post")]
    fn double_post_panics() {
        let mut c: Cell<u64> = Cell::new(2, Box::new(|_, _| {}));
        c.post(0, 1);
        c.post(0, 2);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_slot_panics() {
        let mut c: Cell<u64> = Cell::new(1, Box::new(|_, _| {}));
        c.post(5, 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = Cell::<u64>::new(0, Box::new(|_, _| {}));
    }
}
