//! The participating worker process.
//!
//! A `Worker` is one participant in a parallel job — in the real system, a
//! process running on an idle workstation. Its life (per §2 of the paper):
//!
//! 1. Process incoming messages (non-local synchronizations, steal traffic,
//!    migrated work).
//! 2. If the local ready list is non-empty, execute tasks from it in LIFO
//!    order.
//! 3. Otherwise become a *thief*: pick a victim uniformly at random and try
//!    to steal the task at the tail of its ready list (FIFO).
//! 4. "If no task can be found even after many attempted steals, the amount
//!    of parallelism in the job must have decreased" — the worker retires,
//!    migrating its data to another participant, and its workstation goes
//!    back to the macro-level scheduler.
//!
//! The scheduling loop itself lives in the [`kernel`](crate::kernel);
//! `Worker` is the threaded-CPS [`Substrate`]: it supplies the shared ready
//! deques as local work, the configured steal transport (direct
//! shared-memory deque access or a split-phase message exchange), the
//! active-participant victim set, and retirement-by-migration. All
//! per-worker state (join-cell shards, statistics, RNG) is thread-local to
//! the worker; cross-worker effects travel through the shared ready deques
//! and the job's message [fabric](phish_net::fabric) — one node per
//! original worker id, optionally configured with seeded link faults so the
//! whole scheduler runs over raw-datagram semantics.

use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use phish_net::{Fabric, FabricConfig, FabricEndpoint, FabricHandle, NodeId, SendCost};

use crate::cell::{Cell, JoinFn};
use crate::config::{SchedulerConfig, StealProtocol};
use crate::deque::ReadyDeque;
use crate::kernel::{CpsWorkload, KernelCtl, SchedulerCore, StealAttempt, Substrate, Workload};
use crate::slab::Slab;
use crate::stats::WorkerStats;
use crate::task::{CellRef, Cont, Msg, Task, WorkerId};
use crate::trace::{TraceBuffer, TraceEventKind};

/// State shared by all workers of one job (the job's "address space" plus
/// the network between participants).
pub(crate) struct Shared<T> {
    pub cfg: SchedulerConfig,
    /// One ready list per worker, shared so thieves can reach them under
    /// the shared-memory steal protocol.
    pub deques: Vec<ReadyDeque<Task<T>>>,
    /// The message fabric between participants: one node per *original*
    /// worker id. Messages are routed by cell ownership; adoption transfers
    /// polling responsibility, never the node's inbound queue itself, so
    /// in-flight messages are never lost. All message costs and counts are
    /// charged by the fabric, never by the scheduler.
    pub net: FabricHandle<Msg<T>>,
    /// Set when the root continuation is posted.
    pub done: AtomicBool,
    /// The job's result.
    pub result: Mutex<Option<T>>,
    /// Which workers are still participating.
    pub active: Vec<AtomicBool>,
    /// Count of active workers (retirement keeps this ≥ 1).
    pub active_count: AtomicUsize,
}

impl<T: Send + 'static> Shared<T> {
    pub(crate) fn new(cfg: SchedulerConfig) -> (Self, Vec<FabricEndpoint<Msg<T>>>) {
        // Nodes must keep receiving after their owning endpoint drops:
        // a retired worker's thread exits while its original mailbox is
        // still polled by the adoptee.
        let fabric_cfg = match cfg.link_faults {
            // Busy-polling workers pump constantly, so the default
            // aggressive retransmission timer recovers losses at
            // spin-loop latency; `cfg.link_recovery` retunes it for
            // slower links.
            Some(faults) => FabricConfig::lossy(faults).with_recovery(cfg.link_recovery),
            None => FabricConfig::reliable(),
        }
        .with_cost(SendCost::with_overhead(cfg.send_overhead))
        .keep_open_on_drop();
        let fabric = Fabric::new(cfg.workers, fabric_cfg);
        let net = fabric.handle();
        let endpoints = fabric.into_endpoints();
        let shared = Self {
            cfg,
            deques: (0..cfg.workers).map(|_| ReadyDeque::new()).collect(),
            net,
            done: AtomicBool::new(false),
            result: Mutex::new(None),
            active: (0..cfg.workers).map(|_| AtomicBool::new(true)).collect(),
            active_count: AtomicUsize::new(cfg.workers),
        };
        (shared, endpoints)
    }
}

/// One participant of a running job. Task closures receive `&mut Worker<T>`
/// and use [`spawn`](Worker::spawn), [`join`](Worker::join) /
/// [`join2`](Worker::join2), and [`post`](Worker::post) to express the
/// computation.
pub struct Worker<T> {
    id: WorkerId,
    shared: Arc<Shared<T>>,
    /// This worker's endpoint on the job's message fabric.
    net: FabricEndpoint<Msg<T>>,
    /// Join-cell shards this worker hosts, keyed by original owner.
    /// Initially just its own; grows by adoption.
    shards: HashMap<WorkerId, Slab<Cell<T>>>,
    /// Mailboxes this worker polls (own id plus adopted origins).
    polled_mailboxes: Vec<WorkerId>,
    /// Kernel control block: RNG stream, retirement counter, statistics,
    /// trace.
    ctl: KernelCtl,
    /// Reply slot for the message steal protocol.
    steal_reply: Option<Option<Task<T>>>,
    /// True while inside a task body (for working-set accounting).
    in_task: bool,
    retired: bool,
}

impl<T: Send + 'static> Worker<T> {
    pub(crate) fn new(id: WorkerId, shared: Arc<Shared<T>>, net: FabricEndpoint<Msg<T>>) -> Self {
        debug_assert_eq!(net.id().index(), id);
        let ctl = KernelCtl::from_config(id, &shared.cfg);
        let mut shards = HashMap::new();
        shards.insert(id, Slab::new());
        Self {
            id,
            shared,
            net,
            shards,
            polled_mailboxes: vec![id],
            ctl,
            steal_reply: None,
            in_task: false,
            retired: false,
        }
    }

    /// This worker's id within the job.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Number of workers configured for the job.
    pub fn worker_count(&self) -> usize {
        self.shared.cfg.workers
    }

    /// The job's scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.shared.cfg
    }

    /// This worker's statistics so far.
    pub fn stats(&self) -> &WorkerStats {
        &self.ctl.stats
    }

    /// Takes the worker's trace buffer (engine side, after the run).
    pub(crate) fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.ctl.trace.take()
    }

    // ------------------------------------------------------------------
    // Programming model: spawn / join / post
    // ------------------------------------------------------------------

    /// Spawns a child task: it becomes ready immediately and goes to the
    /// head of this worker's ready list.
    pub fn spawn(&mut self, f: impl FnOnce(&mut Worker<T>) + Send + 'static) {
        self.ctl.note_spawn(1);
        self.push_local(Task::new(f));
    }

    /// Allocates a join cell with `nslots` argument slots. When all slots
    /// have been posted, `cont` runs (on whichever worker hosts the cell)
    /// with the values in slot order.
    ///
    /// Returns the cell reference; feed it to [`Cont::slot`] to build the
    /// continuations handed to child tasks.
    pub fn join(
        &mut self,
        nslots: usize,
        cont: impl FnOnce(Vec<T>, &mut Worker<T>) + Send + 'static,
    ) -> CellRef {
        let cont: JoinFn<T> = Box::new(cont);
        let shard = self
            .shards
            .get_mut(&self.id)
            .expect("worker always hosts its own shard");
        let key = shard.insert(Cell::new(nslots, cont));
        self.ctl.record(TraceEventKind::CellAlloc);
        self.sample_in_use();
        CellRef {
            owner: self.id,
            key,
        }
    }

    /// Two-argument join, the common case (e.g. `fib(n-1) + fib(n-2)`):
    /// returns the pair of continuations directly.
    pub fn join2(
        &mut self,
        cont: impl FnOnce(T, T, &mut Worker<T>) + Send + 'static,
    ) -> (Cont, Cont) {
        let cell = self.join(2, move |mut vals, w| {
            let b = vals.pop().expect("two values");
            let a = vals.pop().expect("two values");
            cont(a, b, w);
        });
        (Cont::slot(cell, 0), Cont::slot(cell, 1))
    }

    /// Posts `value` to a continuation — the paper's "synchronization".
    ///
    /// A post to a cell hosted here is applied directly (local synch); a
    /// post to a cell hosted elsewhere sends a message (non-local synch).
    /// Posting to [`Cont::ROOT`] delivers the job's final result and
    /// terminates the job.
    pub fn post(&mut self, cont: Cont, value: T) {
        self.ctl.stats.synchronizations += 1;
        match cont.cell() {
            None => {
                self.ctl.record(TraceEventKind::RootPost);
                let mut slot = self.shared.result.lock();
                assert!(
                    slot.is_none(),
                    "application bug: Cont::ROOT posted twice (every job must \
                     deliver exactly one final result)"
                );
                *slot = Some(value);
                drop(slot);
                self.shared.done.store(true, Ordering::Release);
            }
            Some(cell) => {
                if self.shards.contains_key(&cell.owner) {
                    self.ctl.record(TraceEventKind::PostLocal);
                    self.apply_post(cell, cont.slot_index(), value);
                } else {
                    self.ctl.stats.nonlocal_synchronizations += 1;
                    self.ctl
                        .record(TraceEventKind::PostRemote { to: cell.owner });
                    self.send_msg(
                        cell.owner,
                        Msg::Post {
                            cell,
                            slot: cont.slot_index(),
                            value,
                        },
                    );
                }
            }
        }
    }

    /// Processes pending incoming messages. Long-running tasks under the
    /// message steal protocol should call this periodically so steal
    /// requests get answered with workstation-LAN latencies rather than
    /// task-granularity latencies.
    pub fn poll(&mut self) {
        self.drain_mailboxes();
    }

    // ------------------------------------------------------------------
    // Scheduling internals
    // ------------------------------------------------------------------

    fn push_local(&mut self, t: Task<T>) {
        let len = self.shared.deques[self.id].push(t);
        self.sample_in_use_with_deque(len);
    }

    fn sample_in_use(&mut self) {
        let len = self.shared.deques[self.id].len();
        self.sample_in_use_with_deque(len);
    }

    fn sample_in_use_with_deque(&mut self, deque_len: usize) {
        let live_cells: usize = self.shards.values().map(Slab::len).sum();
        let executing = usize::from(self.in_task);
        self.ctl
            .stats
            .sample_in_use((live_cells + deque_len + executing) as u64);
    }

    /// Sends a message to the node addressed by `origin_mailbox`. The
    /// fabric charges the send overhead and records the count — no manual
    /// accounting here, so `messages_sent` cannot drift from the wire.
    fn send_msg(&mut self, origin_mailbox: WorkerId, msg: Msg<T>) {
        let delivered = self.net.send(NodeId(origin_mailbox as u32), msg);
        debug_assert!(delivered, "worker nodes stay open for the whole job");
    }

    /// Applies a post to a cell hosted by this worker.
    fn apply_post(&mut self, cell: CellRef, slot: u32, value: T) {
        let shard = self
            .shards
            .get_mut(&cell.owner)
            .expect("apply_post on non-hosted shard");
        let live = shard
            .get_mut(cell.key)
            .expect("post to dead or unknown cell");
        if let Some(ready) = live.post(slot, value) {
            shard.remove(cell.key);
            // The fired continuation becomes a ready task right here — the
            // worker hosting the cell, exactly as in the paper.
            self.push_local(ready);
        }
    }

    fn drain_mailboxes(&mut self) -> bool {
        // Drive the link protocol: flush reordered holdbacks, process acks,
        // retransmit anything the lossy link swallowed.
        self.net.pump_now();
        let shared = Arc::clone(&self.shared);
        let mut did_work = false;
        let mut i = 0;
        // Indexed loop: handling AdoptShard can grow `polled_mailboxes`.
        while i < self.polled_mailboxes.len() {
            let origin = self.polled_mailboxes[i];
            while let Some(env) = shared.net.try_recv_at(origin) {
                did_work = true;
                self.handle_msg(env.body);
            }
            i += 1;
        }
        did_work
    }

    fn handle_msg(&mut self, msg: Msg<T>) {
        match msg {
            Msg::Post { cell, slot, value } => {
                self.apply_post(cell, slot, value);
            }
            Msg::StealRequest { thief } => {
                // Victim side: give away the task at the configured steal
                // end of MY ready list (tail = FIFO order, the default).
                let task = self.shared.deques[self.id].steal(self.shared.cfg.steal_end);
                self.send_msg(thief, Msg::StealReply { task });
            }
            Msg::StealReply { task } => {
                self.steal_reply = Some(task);
            }
            Msg::AdoptShard {
                origin,
                cells,
                tasks,
            } => {
                self.ctl.record(TraceEventKind::Adopt { origin });
                let slab = Slab::from_entries(cells);
                let prev = self.shards.insert(origin, slab);
                assert!(prev.is_none(), "adopted an already-hosted shard");
                if !self.polled_mailboxes.contains(&origin) {
                    self.polled_mailboxes.push(origin);
                }
                for t in tasks {
                    self.push_local(t);
                }
                self.sample_in_use();
            }
        }
    }

    /// Direct steal from the victim's shared deque.
    fn try_steal_shared(&mut self, victim: WorkerId) -> StealAttempt<Task<T>> {
        match self.shared.deques[victim].steal(self.shared.cfg.steal_end) {
            Some(task) => StealAttempt::Got(task),
            None => StealAttempt::Empty,
        }
    }

    /// Split-phase message steal: send a request, then keep serving our own
    /// mailboxes (including steal requests from others) and any ready work
    /// that lands here until the reply arrives. Returns
    /// [`StealAttempt::Pending`] only when the job finishes mid-exchange —
    /// the reply no longer matters and must not be counted as a failure.
    fn try_steal_message(&mut self, victim: WorkerId) -> StealAttempt<Task<T>> {
        debug_assert!(self.steal_reply.is_none());
        self.send_msg(victim, Msg::StealRequest { thief: self.id });
        loop {
            if self.shared.done.load(Ordering::Acquire) {
                self.steal_reply = None;
                return StealAttempt::Pending;
            }
            self.drain_mailboxes();
            if let Some(reply) = self.steal_reply.take() {
                return match reply {
                    Some(task) => StealAttempt::Got(task),
                    None => StealAttempt::Empty,
                };
            }
            // While waiting for a reply we might have been handed ready
            // work (a fired continuation): run it rather than idle.
            if let Some((task, len)) = self.shared.deques[self.id].pop(self.shared.cfg.exec_order) {
                self.sample_in_use_with_deque(len);
                self.exec_task(task);
            } else {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }

    /// Executes one task body, accounting it (tasks executed, trace, busy
    /// time, working set). Also used while waiting out a split-phase steal,
    /// which is why the substrate — not the kernel — owns exec accounting.
    fn exec_task(&mut self, task: Task<T>) {
        self.in_task = true;
        self.ctl.note_exec();
        if self.shared.cfg.track_busy {
            let t0 = Instant::now();
            CpsWorkload::execute(task, self);
            self.ctl.stats.busy_ns += t0.elapsed().as_nanos() as u64;
        } else {
            CpsWorkload::execute(task, self);
        }
        self.in_task = false;
    }

    /// Attempts to leave the computation, migrating all hosted state to an
    /// adoptive participant. Fails (returns `false`) when this worker is
    /// the last active participant — someone has to finish the job.
    fn retire_now(&mut self) -> bool {
        // Reserve the right to leave: never drop active_count to zero.
        loop {
            let n = self.shared.active_count.load(Ordering::Acquire);
            if n <= 1 {
                return false;
            }
            if self
                .shared
                .active_count
                .compare_exchange(n, n - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        self.shared.active[self.id].store(false, Ordering::Release);
        // Final drain: anything that reaches our mailboxes after this is
        // picked up by the adoptee, which inherits polling duty.
        self.drain_mailboxes();
        let mut candidates = Vec::new();
        self.victim_candidates(&mut candidates);
        let adoptee = self
            .ctl
            .choose_victim(&candidates)
            .expect("an active participant exists: count was > 1");
        let mut tasks = self.shared.deques[self.id].drain_all();
        let origins: Vec<WorkerId> = self.shards.keys().copied().collect();
        for origin in origins {
            let cells = self
                .shards
                .get_mut(&origin)
                .expect("origin from keys")
                .drain_all();
            let msg = Msg::AdoptShard {
                origin,
                cells,
                tasks: std::mem::take(&mut tasks),
            };
            self.send_msg(adoptee, msg);
        }
        self.shards.clear();
        self.polled_mailboxes.clear();
        // The adoptee must actually receive every migrated shard: on a
        // lossy link an AdoptShard may be in the retransmission window, and
        // once this thread exits nobody would pump it again. Stay until the
        // fabric confirms delivery (or the job finishes without us).
        while self.net.in_flight() > 0 && !self.shared.done.load(Ordering::Acquire) {
            self.net.pump_now();
            std::hint::spin_loop();
        }
        self.ctl.record(TraceEventKind::Retire);
        self.retired = true;
        true
    }

    /// True once this worker has retired from the computation.
    pub fn retired(&self) -> bool {
        self.retired
    }

    /// Runs this worker to completion under the kernel's scheduling loop
    /// and returns its final statistics.
    pub(crate) fn run_loop(&mut self) -> WorkerStats {
        SchedulerCore::new().run(self);
        // Message accounting comes solely from the fabric's per-node
        // counters: what this worker's endpoint put on the wire is what the
        // job report shows.
        self.ctl.stats.messages_sent = self.net.metrics().messages_sent;
        self.ctl.stats
    }
}

impl<T: Send + 'static> Substrate for Worker<T> {
    type Load = CpsWorkload<T>;

    fn ctl(&mut self) -> &mut KernelCtl {
        &mut self.ctl
    }

    fn done(&self) -> bool {
        self.shared.done.load(Ordering::Acquire)
    }

    fn drain(&mut self) -> ControlFlow<()> {
        self.drain_mailboxes();
        ControlFlow::Continue(())
    }

    fn pop_local(&mut self) -> Option<Task<T>> {
        let (task, len) = self.shared.deques[self.id].pop(self.shared.cfg.exec_order)?;
        self.sample_in_use_with_deque(len);
        Some(task)
    }

    fn victim_candidates(&mut self, buf: &mut Vec<WorkerId>) {
        let n = self.shared.cfg.workers;
        buf.extend(
            (0..n).filter(|&w| w != self.id && self.shared.active[w].load(Ordering::Acquire)),
        );
    }

    fn try_steal(&mut self, victim: WorkerId) -> StealAttempt<Task<T>> {
        match self.shared.cfg.steal_protocol {
            StealProtocol::SharedMemory => self.try_steal_shared(victim),
            StealProtocol::Message => self.try_steal_message(victim),
        }
    }

    fn admit(&mut self, loot: Task<T>) {
        self.push_local(loot);
    }

    fn execute(&mut self, task: Task<T>) -> ControlFlow<()> {
        self.exec_task(task);
        ControlFlow::Continue(())
    }

    fn try_retire(&mut self) -> bool {
        self.retire_now()
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("id", &self.id)
            .field("retired", &self.retired)
            .field("shards", &self.shards.len())
            .finish()
    }
}
