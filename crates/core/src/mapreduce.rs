//! A high-level map/reduce convenience on top of the spec engine.
//!
//! Most users of a work-stealing runtime don't want to hand-write
//! continuation-passing tasks; they want "apply this function over these
//! items in parallel and combine the results". [`map_reduce`] provides
//! exactly that, scheduled by the paper's LIFO/FIFO-random discipline:
//! the item range splits recursively (so steals move large sub-ranges,
//! preserving the communication locality the paper's design is about) and
//! leaves apply the map function over small chunks.
//!
//! `SpecTask::merge` is an associated function with no captured state, so
//! the user's reducer travels *inside the output values*: each leaf's
//! result carries an `Arc` of the reducer, and merging two carried values
//! applies it. No globals, no thread-locals; concurrent `map_reduce` calls
//! are independent.
//!
//! ```
//! use phish_core::{map_reduce, SchedulerConfig};
//!
//! // Σ i² over 0..10000 on 4 workers.
//! let total = map_reduce(
//!     SchedulerConfig::paper(4),
//!     (0u64..10_000).collect(),
//!     64,
//!     |&i| i * i,
//!     0u64,
//!     |a, b| a + b,
//! );
//! assert_eq!(total, (0..10_000u64).map(|i| i * i).sum());
//! ```

use std::sync::Arc;

use crate::config::SchedulerConfig;
use crate::spec::{SpecStep, SpecTask};
use crate::spec_engine::SpecEngine;

/// A partial result that knows how to combine itself with another.
pub struct Reduced<O> {
    value: Option<O>,
    reduce: Option<Arc<dyn Fn(O, O) -> O + Send + Sync>>,
}

impl<O> Clone for Reduced<O>
where
    O: Clone,
{
    fn clone(&self) -> Self {
        Self {
            value: self.value.clone(),
            reduce: self.reduce.clone(),
        }
    }
}

impl<O> Reduced<O> {
    fn empty() -> Self {
        Self {
            value: None,
            reduce: None,
        }
    }

    fn combine(a: Self, b: Self) -> Self {
        let reduce = a.reduce.or(b.reduce);
        let value = match (a.value, b.value) {
            (None, x) | (x, None) => x,
            (Some(x), Some(y)) => {
                let f = reduce
                    .as_ref()
                    .expect("two values implies at least one carried reducer");
                Some(f(x, y))
            }
        };
        Self { value, reduce }
    }
}

/// Internal spec: a sub-range of the item vector.
struct MapReduceSpec<I, O> {
    items: Arc<Vec<I>>,
    lo: usize,
    hi: usize,
    chunk: usize,
    map: Arc<dyn Fn(&I) -> O + Send + Sync>,
    reduce: Arc<dyn Fn(O, O) -> O + Send + Sync>,
}

impl<I, O> Clone for MapReduceSpec<I, O> {
    fn clone(&self) -> Self {
        Self {
            items: Arc::clone(&self.items),
            lo: self.lo,
            hi: self.hi,
            chunk: self.chunk,
            map: Arc::clone(&self.map),
            reduce: Arc::clone(&self.reduce),
        }
    }
}

impl<I, O> SpecTask for MapReduceSpec<I, O>
where
    I: Send + Sync + 'static,
    O: Send + Sync + Clone + 'static,
{
    type Output = Reduced<O>;

    fn step(self) -> SpecStep<Self> {
        if self.hi - self.lo <= self.chunk {
            let mut acc: Option<O> = None;
            for item in &self.items[self.lo..self.hi] {
                let mapped = (self.map)(item);
                acc = Some(match acc {
                    None => mapped,
                    Some(prev) => (self.reduce)(prev, mapped),
                });
            }
            return SpecStep::Leaf(Reduced {
                value: acc,
                reduce: Some(Arc::clone(&self.reduce)),
            });
        }
        let mid = self.lo + (self.hi - self.lo) / 2;
        let mut left = self.clone();
        left.hi = mid;
        let mut right = self;
        right.lo = mid;
        SpecStep::Expand {
            children: vec![left, right],
            partial: Reduced::empty(),
        }
    }

    fn identity() -> Reduced<O> {
        Reduced::empty()
    }

    fn merge(a: Reduced<O>, b: Reduced<O>) -> Reduced<O> {
        Reduced::combine(a, b)
    }
}

/// Applies `map` to every item and folds the results with `reduce`
/// (associative and commutative — partial results from different workers
/// merge in nondeterministic order), starting from `identity`, under the
/// paper's scheduler.
///
/// `chunk` controls the grain: leaves process up to `chunk` items
/// serially. A chunk of 1 maximizes parallelism (and scheduling overhead —
/// the Table 1 trade-off); a large chunk approaches serial execution.
pub fn map_reduce<I, O, M, R>(
    cfg: SchedulerConfig,
    items: Vec<I>,
    chunk: usize,
    map: M,
    identity: O,
    reduce: R,
) -> O
where
    I: Send + Sync + 'static,
    O: Send + Sync + Clone + 'static,
    M: Fn(&I) -> O + Send + Sync + 'static,
    R: Fn(O, O) -> O + Send + Sync + 'static,
{
    if items.is_empty() {
        return identity;
    }
    let n = items.len();
    let spec = MapReduceSpec {
        items: Arc::new(items),
        lo: 0,
        hi: n,
        chunk: chunk.max(1),
        map: Arc::new(map),
        reduce: Arc::new(reduce),
    };
    let (out, _) = SpecEngine::run(cfg, spec);
    out.value.unwrap_or(identity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_squares() {
        let total = map_reduce(
            SchedulerConfig::paper(3),
            (0u64..10_000).collect(),
            64,
            |&i| i * i,
            0u64,
            |a, b| a + b,
        );
        assert_eq!(total, (0..10_000u64).map(|i| i * i).sum());
    }

    #[test]
    fn empty_input_returns_identity() {
        let v = map_reduce(
            SchedulerConfig::paper(2),
            Vec::<u64>::new(),
            8,
            |&i| i,
            42u64,
            |a, b| a + b,
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn chunk_one_still_correct() {
        let v = map_reduce(
            SchedulerConfig::paper(2),
            (1u64..=100).collect(),
            1,
            |&i| i,
            0u64,
            |a, b| a + b,
        );
        assert_eq!(v, 5050);
    }

    #[test]
    fn huge_chunk_degrades_to_serial() {
        let v = map_reduce(
            SchedulerConfig::paper(2),
            (1u64..=100).collect(),
            usize::MAX,
            |&i| i,
            0u64,
            |a, b| a + b,
        );
        assert_eq!(v, 5050);
    }

    #[test]
    fn non_numeric_outputs() {
        // Commutative summary over strings: the longest length.
        let longest = map_reduce(
            SchedulerConfig::paper(3),
            vec!["a", "bbb", "cc", "dddd", "e"],
            1,
            |s| s.len(),
            0usize,
            usize::max,
        );
        assert_eq!(longest, 4);
    }

    #[test]
    fn concurrent_map_reduces_do_not_interfere() {
        // Two jobs with different output types running at once.
        let t1 = std::thread::spawn(|| {
            map_reduce(
                SchedulerConfig::paper(2),
                (0u64..50_000).collect(),
                128,
                |&i| i,
                0u64,
                |a, b| a + b,
            )
        });
        let t2 = std::thread::spawn(|| {
            map_reduce(
                SchedulerConfig::paper(2),
                (0u32..50_000).collect(),
                128,
                |&i| f64::from(i).sqrt(),
                0.0f64,
                f64::max,
            )
        });
        assert_eq!(t1.join().unwrap(), 49_999 * 50_000 / 2);
        let m = t2.join().unwrap();
        assert!((m - f64::from(49_999u32).sqrt()).abs() < 1e-9);
    }
}
