//! The threaded execution engine: one OS thread per participating worker.
//!
//! `Engine::run` stands in for "a parallel job executing on a set of
//! workstations": it builds the shared job state, seeds worker 0's ready
//! list with the root task, runs every worker's scheduling loop on its own
//! thread, and collects the result plus the per-worker statistics that
//! Table 2 of the paper reports.

use std::sync::Arc;
use std::time::Instant;

use crate::config::SchedulerConfig;
use crate::stats::JobStats;
use crate::task::{Task, TaskFn};
use crate::trace::JobTrace;
use crate::worker::{Shared, Worker};

/// Runs parallel jobs under the micro-level idle-initiated scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine;

impl Engine {
    /// Executes `root` under `cfg` and returns the value it (transitively)
    /// posts to [`crate::Cont::ROOT`], along with job statistics.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or if the job completes
    /// without any task posting to the root continuation (an application
    /// bug: every computation must deliver exactly one final result).
    pub fn run<T: Send + 'static>(cfg: SchedulerConfig, root: TaskFn<T>) -> (T, JobStats) {
        let (v, stats, _) = Self::run_traced(cfg, root);
        (v, stats)
    }

    /// [`Engine::run`] plus the merged scheduling trace. The trace is empty
    /// unless `cfg.trace_capacity` is non-zero (see
    /// [`SchedulerConfig::with_trace`]).
    pub fn run_traced<T: Send + 'static>(
        cfg: SchedulerConfig,
        root: TaskFn<T>,
    ) -> (T, JobStats, JobTrace) {
        cfg.validate().expect("invalid scheduler configuration");
        let (shared, endpoints) = Shared::new(cfg);
        let shared = Arc::new(shared);
        shared.deques[0].push(Task { run: root });
        let start = Instant::now();
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("phish-worker-{i}"))
                    .spawn(move || {
                        let mut w = Worker::new(i, sh, ep);
                        let stats = w.run_loop();
                        (stats, w.take_trace())
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        let mut per_worker = Vec::with_capacity(cfg.workers);
        let mut buffers = Vec::new();
        for h in handles {
            let (stats, trace) = h.join().expect("worker thread panicked");
            per_worker.push(stats);
            buffers.extend(trace);
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        let result = shared
            .result
            .lock()
            .take()
            .expect("job completed without posting a result to Cont::ROOT");
        (
            result,
            JobStats::from_workers(per_worker, elapsed),
            JobTrace::merge(buffers),
        )
    }

    /// Convenience wrapper taking a closure instead of a boxed task.
    pub fn run_fn<T: Send + 'static>(
        cfg: SchedulerConfig,
        root: impl FnOnce(&mut Worker<T>) + Send + 'static,
    ) -> (T, JobStats) {
        Self::run(cfg, Box::new(root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        ExecOrder, RetirePolicy, SchedulerConfig, StealEnd, StealProtocol, VictimPolicy,
    };
    use crate::task::Cont;

    #[test]
    fn trivial_root_posts_result() {
        let (v, stats) = Engine::run_fn(SchedulerConfig::paper(1), |w: &mut Worker<u64>| {
            w.post(Cont::ROOT, 42);
        });
        assert_eq!(v, 42);
        assert_eq!(stats.tasks_executed, 1);
        assert_eq!(stats.synchronizations, 1);
        assert_eq!(stats.tasks_stolen, 0);
    }

    #[test]
    fn spawn_and_join_two_children() {
        let (v, stats) = Engine::run_fn(SchedulerConfig::paper(1), |w: &mut Worker<u64>| {
            let (ca, cb) = w.join2(|a, b, w| w.post(Cont::ROOT, a * 10 + b));
            w.spawn(move |w| w.post(ca, 3));
            w.spawn(move |w| w.post(cb, 7));
        });
        assert_eq!(v, 37, "values must arrive in slot order");
        // root + 2 children + 1 continuation = 4 tasks.
        assert_eq!(stats.tasks_executed, 4);
        assert_eq!(stats.synchronizations, 3);
        assert_eq!(stats.nonlocal_synchronizations, 0);
    }

    #[test]
    fn join_n_collects_in_slot_order() {
        let (v, _) = Engine::run_fn(SchedulerConfig::paper(1), |w: &mut Worker<u64>| {
            let cell = w.join(4, |vals, w| {
                let packed = vals.iter().fold(0, |acc, v| acc * 10 + v);
                w.post(Cont::ROOT, packed);
            });
            for i in 0..4u64 {
                let cont = Cont::slot(cell, i as u32);
                w.spawn(move |w| w.post(cont, i + 1));
            }
        });
        assert_eq!(v, 1234);
    }

    /// A small recursive CPS computation: sum of 1..=n by binary splitting.
    fn sum_task(lo: u64, hi: u64, out: Cont) -> TaskFn<u64> {
        Box::new(move |w: &mut Worker<u64>| {
            if hi - lo <= 4 {
                w.post(out, (lo..=hi).sum());
                return;
            }
            let mid = (lo + hi) / 2;
            let (ca, cb) = w.join2(move |a, b, w| w.post(out, a + b));
            w.spawn(move |w| (sum_task(lo, mid, ca))(w));
            w.spawn(move |w| (sum_task(mid + 1, hi, cb))(w));
        })
    }

    #[test]
    fn recursive_sum_single_worker() {
        let (v, stats) = Engine::run(SchedulerConfig::paper(1), sum_task(1, 1000, Cont::ROOT));
        assert_eq!(v, 500_500);
        assert!(stats.tasks_executed > 100);
        assert!(stats.max_tasks_in_use > 0);
        assert_eq!(stats.tasks_stolen, 0, "one worker cannot steal");
    }

    #[test]
    fn recursive_sum_multi_worker_shared_memory() {
        let cfg = SchedulerConfig::paper(4);
        let (v, _) = Engine::run(cfg, sum_task(1, 20_000, Cont::ROOT));
        assert_eq!(v, 200_010_000);
    }

    /// A root task that cannot complete unless another worker steals: it
    /// spawns a child that sets a flag, then spins (polling, as a long
    /// Phish task must) until the flag is set. Its own worker is busy
    /// spinning, so only a thief can run the child. Completion therefore
    /// *proves* a steal — deterministically, on any host.
    fn steal_barrier_root(flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> TaskFn<u64> {
        use std::sync::atomic::Ordering;
        Box::new(move |w: &mut Worker<u64>| {
            let (ca, cb) = w.join2(|a, b, w| w.post(Cont::ROOT, a + b));
            let child_flag = std::sync::Arc::clone(&flag);
            w.spawn(move |w| {
                child_flag.store(true, Ordering::Release);
                w.post(cb, 2);
            });
            while !flag.load(Ordering::Acquire) {
                w.poll(); // serve steal requests during the long task
                std::thread::yield_now();
            }
            w.post(ca, 1);
        })
    }

    #[test]
    fn steals_happen_shared_memory() {
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let cfg = SchedulerConfig::paper(4);
        let (v, stats) = Engine::run(cfg, steal_barrier_root(flag));
        assert_eq!(v, 3);
        assert!(stats.tasks_stolen > 0, "completion proves a steal");
    }

    #[test]
    fn steals_happen_message_protocol() {
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let cfg = SchedulerConfig::paper_distributed(4);
        let (v, stats) = Engine::run(cfg, steal_barrier_root(flag));
        assert_eq!(v, 3);
        assert!(stats.tasks_stolen > 0);
        // Steal requests and replies are messages.
        assert!(stats.messages_sent >= 2 * stats.tasks_stolen);
    }

    #[test]
    fn nonlocal_synchronizations_counted() {
        // The barrier guarantees the child runs on a thief, so its post to
        // the join cell (owned by the root's worker) must be non-local.
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let cfg = SchedulerConfig::paper(4).with_seed(123);
        let (_, stats) = Engine::run(cfg, steal_barrier_root(flag));
        assert!(
            stats.nonlocal_synchronizations > 0,
            "a stolen child posting home is a non-local synch"
        );
        assert!(stats.nonlocal_synchronizations <= stats.synchronizations);
        assert!(
            stats.messages_sent >= stats.nonlocal_synchronizations,
            "every non-local synch is a message"
        );
    }

    #[test]
    fn all_order_policy_combinations_compute_the_same_value() {
        for exec_order in [ExecOrder::Lifo, ExecOrder::Fifo] {
            for steal_end in [StealEnd::Tail, StealEnd::Head] {
                for victim in [VictimPolicy::UniformRandom, VictimPolicy::RoundRobin] {
                    let mut cfg = SchedulerConfig::paper(3);
                    cfg.exec_order = exec_order;
                    cfg.steal_end = steal_end;
                    cfg.victim_policy = victim;
                    let (v, _) = Engine::run(cfg, sum_task(1, 5000, Cont::ROOT));
                    assert_eq!(v, 12_502_500, "{exec_order:?}/{steal_end:?}/{victim:?}");
                }
            }
        }
    }

    #[test]
    fn lifo_keeps_working_set_smaller_than_fifo() {
        // The paper's core locality claim, observable in the stats: LIFO
        // execution bounds the ready list; FIFO execution floods it.
        let mut lifo_cfg = SchedulerConfig::paper(1);
        lifo_cfg.exec_order = ExecOrder::Lifo;
        let (_, lifo) = Engine::run(lifo_cfg, sum_task(1, 50_000, Cont::ROOT));
        let mut fifo_cfg = SchedulerConfig::paper(1);
        fifo_cfg.exec_order = ExecOrder::Fifo;
        let (_, fifo) = Engine::run(fifo_cfg, sum_task(1, 50_000, Cont::ROOT));
        assert!(
            lifo.max_tasks_in_use * 10 < fifo.max_tasks_in_use,
            "LIFO working set {} should be far below FIFO {}",
            lifo.max_tasks_in_use,
            fifo.max_tasks_in_use
        );
    }

    #[test]
    fn retirement_migrates_work_and_job_still_completes() {
        let mut cfg = SchedulerConfig::paper(4);
        cfg.retire = RetirePolicy::AfterFailedRounds(2);
        let (v, stats) = Engine::run(cfg, sum_task(1, 20_000, Cont::ROOT));
        assert_eq!(v, 200_010_000, "retirement must not lose work");
        assert_eq!(stats.per_worker.len(), 4);
    }

    #[test]
    fn tracing_records_the_schedule() {
        use crate::trace::TraceEventKind;
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let cfg = SchedulerConfig::paper(3).with_trace(10_000);
        let (v, stats, trace) = Engine::run_traced(cfg, steal_barrier_root(flag));
        assert_eq!(v, 3);
        assert!(!trace.events.is_empty());
        // Every executed task shows up as an Exec event.
        assert_eq!(
            trace.count_matching(|k| matches!(k, TraceEventKind::Exec)) as u64,
            stats.tasks_executed
        );
        // The steal edge the barrier guarantees is in the trace.
        assert!(!trace.steal_edges().is_empty());
        assert_eq!(
            trace.count_matching(|k| matches!(k, TraceEventKind::RootPost)),
            1
        );
        // Steal count in trace equals the counter.
        assert_eq!(trace.steal_edges().len() as u64, stats.tasks_stolen);
    }

    #[test]
    fn busy_tracking_measures_task_time() {
        let cfg = SchedulerConfig::paper(1).with_busy_tracking();
        let (_, stats) = Engine::run_fn(cfg, |w: &mut Worker<u64>| {
            // A task that demonstrably takes time.
            std::thread::sleep(std::time::Duration::from_millis(20));
            w.post(Cont::ROOT, 1);
        });
        let busy: u64 = stats.per_worker.iter().map(|w| w.busy_ns).sum();
        assert!(busy >= 20_000_000, "busy_ns {busy} must cover the sleep");
        assert!(busy <= stats.per_worker[0].participation_ns);
        // Off by default: zero.
        let (_, stats) = Engine::run_fn(SchedulerConfig::paper(1), |w: &mut Worker<u64>| {
            w.post(Cont::ROOT, 1);
        });
        assert_eq!(stats.per_worker[0].busy_ns, 0);
    }

    #[test]
    fn double_root_post_is_an_application_bug() {
        let result = std::panic::catch_unwind(|| {
            Engine::run_fn(SchedulerConfig::paper(1), |w: &mut Worker<u64>| {
                w.post(Cont::ROOT, 1);
                w.post(Cont::ROOT, 2);
            })
        });
        assert!(result.is_err(), "second ROOT post must panic");
    }

    #[test]
    fn tracing_disabled_yields_empty_trace() {
        let (_, _, trace) =
            Engine::run_traced(SchedulerConfig::paper(2), sum_task(1, 1000, Cont::ROOT));
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn retirement_stress_across_seeds_and_protocols() {
        // Aggressive retirement forces many migrations (cells and
        // mailboxes adopted in chains); correctness must hold for any
        // seed and either steal protocol.
        for seed in 0..6 {
            for protocol in [StealProtocol::SharedMemory, StealProtocol::Message] {
                let mut cfg = SchedulerConfig::paper(5).with_seed(seed);
                cfg.retire = RetirePolicy::AfterFailedRounds(1);
                cfg.steal_protocol = protocol;
                let (v, stats) = Engine::run(cfg, sum_task(1, 30_000, Cont::ROOT));
                assert_eq!(v, 450_015_000, "seed {seed} {protocol:?}");
                assert_eq!(stats.per_worker.len(), 5);
            }
        }
    }

    #[test]
    fn message_protocol_with_send_overhead() {
        // Inject the workstation-LAN software overhead on every message;
        // the run gets slower but stays exact.
        let cfg = SchedulerConfig::paper_distributed(3).with_send_overhead(20_000);
        let (v, stats) = Engine::run(cfg, sum_task(1, 5_000, Cont::ROOT));
        assert_eq!(v, 12_502_500);
        assert!(stats.per_worker.len() == 3);
    }

    #[test]
    fn message_protocol_survives_lossy_links() {
        // The headline Phish property: the scheduler runs over raw
        // datagrams. With 15% drop + 10% dup + 10% reorder on every link,
        // the fabric's ack/retransmit/dedup protocol must still deliver an
        // exact result, and the retransmissions must show in the counters.
        use phish_net::LossyConfig;
        for seed in 0..3u64 {
            let cfg = SchedulerConfig::paper_distributed(4)
                .with_seed(seed)
                .with_link_faults(LossyConfig {
                    drop_prob: 0.15,
                    dup_prob: 0.10,
                    reorder_prob: 0.10,
                    seed: 0xDA7A ^ seed,
                });
            let (v, stats) = Engine::run(cfg, sum_task(1, 10_000, Cont::ROOT));
            assert_eq!(v, 50_005_000, "seed {seed}: loss must not corrupt the sum");
            assert!(stats.messages_sent > 0);
        }
    }

    #[test]
    fn retirement_survives_lossy_links() {
        // Retirement migrates join-cell shards in AdoptShard messages; a
        // dropped one would lose cells outright, so this exercises the
        // retire-time quiesce path.
        use phish_net::LossyConfig;
        for seed in 0..3u64 {
            let mut cfg = SchedulerConfig::paper_distributed(4)
                .with_seed(seed)
                .with_link_faults(LossyConfig::nasty(0x1055_u64 ^ seed));
            cfg.retire = RetirePolicy::AfterFailedRounds(1);
            let (v, _) = Engine::run(cfg, sum_task(1, 10_000, Cont::ROOT));
            assert_eq!(v, 50_005_000, "seed {seed}");
        }
    }

    #[test]
    fn wide_join_cells() {
        // A single join with many slots (beyond any small-vector path).
        let width = 500u64;
        let (v, _) = Engine::run_fn(SchedulerConfig::paper(2), move |w: &mut Worker<u64>| {
            let cell = w.join(width as usize, move |vals, w| {
                w.post(Cont::ROOT, vals.into_iter().sum());
            });
            for i in 0..width {
                let cont = Cont::slot(cell, i as u32);
                w.spawn(move |w| w.post(cont, i));
            }
        });
        assert_eq!(v, width * (width - 1) / 2);
    }

    #[test]
    fn deep_recursion_does_not_overflow_the_worker() {
        // A long dependency chain: task i spawns task i+1; depth 50k. The
        // scheduler must iterate, not recurse, per task.
        fn chain(depth: u64, out: Cont) -> TaskFn<u64> {
            Box::new(move |w: &mut Worker<u64>| {
                if depth == 0 {
                    w.post(out, 0);
                    return;
                }
                let cell = w.join(1, move |vals, w| w.post(out, vals[0] + 1));
                let cont = Cont::slot(cell, 0);
                w.spawn(move |w| chain(depth - 1, cont)(w));
            })
        }
        let (v, _) = Engine::run(SchedulerConfig::paper(1), chain(50_000, Cont::ROOT));
        assert_eq!(v, 50_000);
    }

    #[test]
    fn deterministic_result_across_seeds() {
        for seed in 0..5 {
            let cfg = SchedulerConfig::paper(3).with_seed(seed);
            let (v, _) = Engine::run(cfg, sum_task(1, 10_000, Cont::ROOT));
            assert_eq!(v, 50_005_000);
        }
    }
}
