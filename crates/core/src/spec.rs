//! Descriptor-based ("spec") tasks.
//!
//! The closure-based model in [`crate::task`] is the general programming
//! interface, but closures cannot be re-executed after a crash or costed in
//! a simulator. A [`SpecTask`] is a *self-describing* task: a plain data
//! value that knows how to take one execution step, expanding into child
//! specs and/or a partial result. Results merge through an associative,
//! commutative monoid, so it never matters which worker computed which part
//! or in what order the parts arrive.
//!
//! Three consumers:
//! * [`run_serial`] — the direct-call elision (best-serial baseline shape).
//! * [`crate::spec_engine::SpecEngine`] — threaded work stealing.
//! * `phish-ft::RecoveringEngine` and `phish-sim`'s microsim — crash
//!   recovery and virtual-time simulation, both of which need tasks they
//!   can re-create and cost, which closures cannot provide.

use phish_net::Nanos;

/// One execution step of a spec task.
pub enum SpecStep<S: SpecTask> {
    /// The task expanded: `children` become ready tasks; `partial` is
    /// result mass produced by this step itself.
    Expand {
        /// Newly spawned child specs.
        children: Vec<S>,
        /// Result contribution of this step.
        partial: S::Output,
    },
    /// The task was a leaf with this result.
    Leaf(S::Output),
}

/// A re-creatable, mergeable unit of work.
///
/// Implementations must be pure: `step`ping equal specs yields equal
/// results. That purity is what makes crash recovery by re-execution sound.
pub trait SpecTask: Send + Clone + Sized + 'static {
    /// The result type; a commutative monoid under
    /// [`merge`](SpecTask::merge) with identity
    /// [`identity`](SpecTask::identity).
    type Output: Send + Clone + 'static;

    /// Executes this task, possibly expanding children.
    fn step(self) -> SpecStep<Self>;

    /// The monoid identity (an empty result).
    fn identity() -> Self::Output;

    /// Merges two partial results. Must be associative and commutative.
    fn merge(a: Self::Output, b: Self::Output) -> Self::Output;

    /// Virtual execution time charged by the discrete-event simulator for
    /// stepping this spec. Defaults to 1µs; applications override it with
    /// calibrated per-task costs.
    fn virtual_cost(&self) -> Nanos {
        1_000
    }
}

/// Executes the whole spec tree depth-first on the calling thread —
/// the serial elision of the parallel program.
pub fn run_serial<S: SpecTask>(root: S) -> S::Output {
    let mut acc = S::identity();
    let mut stack = vec![root];
    while let Some(spec) = stack.pop() {
        match spec.step() {
            SpecStep::Leaf(out) => acc = S::merge(acc, out),
            SpecStep::Expand { children, partial } => {
                acc = S::merge(acc, partial);
                stack.extend(children);
            }
        }
    }
    acc
}

/// Counts tasks in a spec tree (for sizing experiments to the paper's
/// 10.4-million-task pfold runs).
pub fn count_tasks<S: SpecTask>(root: S) -> u64 {
    let mut n = 0u64;
    let mut stack = vec![root];
    while let Some(spec) = stack.pop() {
        n += 1;
        if let SpecStep::Expand { children, .. } = spec.step() {
            stack.extend(children);
        }
    }
    n
}

#[cfg(test)]
pub(crate) mod test_specs {
    use super::*;

    /// Sum of 1..=n by binary splitting — the canonical test spec.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RangeSum {
        pub lo: u64,
        pub hi: u64,
    }

    impl SpecTask for RangeSum {
        type Output = u64;

        fn step(self) -> SpecStep<Self> {
            if self.hi - self.lo <= 4 {
                SpecStep::Leaf((self.lo..=self.hi).sum())
            } else {
                let mid = (self.lo + self.hi) / 2;
                SpecStep::Expand {
                    children: vec![
                        RangeSum {
                            lo: self.lo,
                            hi: mid,
                        },
                        RangeSum {
                            lo: mid + 1,
                            hi: self.hi,
                        },
                    ],
                    partial: 0,
                }
            }
        }

        fn identity() -> u64 {
            0
        }

        fn merge(a: u64, b: u64) -> u64 {
            a + b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_specs::RangeSum;
    use super::*;

    #[test]
    fn serial_run_computes_sum() {
        assert_eq!(run_serial(RangeSum { lo: 1, hi: 1000 }), 500_500);
    }

    #[test]
    fn leaf_only_tree() {
        assert_eq!(run_serial(RangeSum { lo: 1, hi: 3 }), 6);
        assert_eq!(count_tasks(RangeSum { lo: 1, hi: 3 }), 1);
    }

    #[test]
    fn count_tasks_counts_interior_nodes() {
        let n = count_tasks(RangeSum { lo: 1, hi: 100 });
        assert!(n > 20, "binary splitting of 100 gives many tasks, got {n}");
        // Re-stepping is pure: same count every time.
        assert_eq!(n, count_tasks(RangeSum { lo: 1, hi: 100 }));
    }

    #[test]
    fn default_virtual_cost_is_positive() {
        assert!(RangeSum { lo: 0, hi: 1 }.virtual_cost() > 0);
    }
}
