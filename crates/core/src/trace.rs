//! Scheduling traces: a bounded per-worker event log.
//!
//! Understanding an idle-initiated schedule after the fact — who stole
//! what from whom, where the non-local synchronizations happened, when a
//! worker retired — needs an event record, not just the aggregate counters
//! of [`crate::stats`]. Tracing is off by default and costs one branch per
//! scheduling operation when disabled; when enabled each worker fills a
//! bounded ring buffer that the engine merges into a time-ordered
//! [`JobTrace`].

use std::time::Instant;

use crate::task::WorkerId;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A task was spawned onto the local ready list.
    Spawn,
    /// A task began executing.
    Exec,
    /// A join cell was allocated.
    CellAlloc,
    /// A value was posted to a cell hosted locally.
    PostLocal,
    /// A value was posted to a remote cell (a message).
    PostRemote {
        /// The cell's owner (the mailbox the message went to).
        to: WorkerId,
    },
    /// A steal succeeded.
    StealSuccess {
        /// Whose ready list lost a task.
        victim: WorkerId,
    },
    /// A steal attempt found the victim empty.
    StealFail {
        /// The victim that had nothing.
        victim: WorkerId,
    },
    /// Cells and tasks were adopted from a retiring worker.
    Adopt {
        /// The shard's original owner.
        origin: WorkerId,
    },
    /// This worker retired from the computation.
    Retire,
    /// The job's final result was posted.
    RootPost,
}

/// One timestamped scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the worker started.
    pub t_ns: u64,
    /// The worker that recorded the event.
    pub worker: WorkerId,
    /// What happened.
    pub kind: TraceEventKind,
}

/// A bounded event recorder owned by one worker.
#[derive(Debug)]
pub struct TraceBuffer {
    worker: WorkerId,
    start: Instant,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer for `worker` holding at most `capacity` events; events
    /// past the cap are counted but dropped (keeping the *earliest* ones,
    /// which carry the schedule's structure).
    pub fn new(worker: WorkerId, capacity: usize) -> Self {
        Self {
            worker,
            start: Instant::now(),
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event.
    #[inline]
    pub fn record(&mut self, kind: TraceEventKind) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            t_ns: self.start.elapsed().as_nanos() as u64,
            worker: self.worker,
            kind,
        });
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn into_parts(self) -> (Vec<TraceEvent>, u64) {
        (self.events, self.dropped)
    }
}

/// The merged, time-ordered trace of a whole job.
#[derive(Debug, Clone, Default)]
pub struct JobTrace {
    /// All events, sorted by timestamp (ties by worker id).
    pub events: Vec<TraceEvent>,
    /// Events dropped across all workers (buffers filled).
    pub dropped: u64,
}

impl JobTrace {
    /// Merges per-worker buffers. Timestamps are per-worker-relative but
    /// workers start within microseconds of each other, so the merged
    /// order is faithful at scheduling granularity.
    pub fn merge(buffers: Vec<TraceBuffer>) -> Self {
        let mut events = Vec::new();
        let mut dropped = 0;
        for b in buffers {
            let (evs, d) = b.into_parts();
            events.extend(evs);
            dropped += d;
        }
        events.sort_by_key(|e| (e.t_ns, e.worker));
        Self { events, dropped }
    }

    /// Events of one kind (by discriminant pattern).
    pub fn count_matching(&self, pred: impl Fn(&TraceEventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// The steal edges of the schedule: `(thief, victim)` pairs in time
    /// order — the "migration graph" of the computation.
    pub fn steal_edges(&self) -> Vec<(WorkerId, WorkerId)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::StealSuccess { victim } => Some((e.worker, victim)),
                _ => None,
            })
            .collect()
    }
}

impl std::fmt::Display for JobTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for e in &self.events {
            writeln!(f, "{:>12} ns  w{:<3} {:?}", e.t_ns, e.worker, e.kind)?;
        }
        if self.dropped > 0 {
            writeln!(f, "... {} events dropped (buffers full)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut b = TraceBuffer::new(0, 100);
        b.record(TraceEventKind::Spawn);
        b.record(TraceEventKind::Exec);
        b.record(TraceEventKind::RootPost);
        assert_eq!(b.len(), 3);
        let (evs, dropped) = b.into_parts();
        assert_eq!(dropped, 0);
        assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(evs[0].kind, TraceEventKind::Spawn);
        assert_eq!(evs[2].kind, TraceEventKind::RootPost);
    }

    #[test]
    fn capacity_is_respected_keeping_earliest() {
        let mut b = TraceBuffer::new(1, 2);
        b.record(TraceEventKind::Spawn);
        b.record(TraceEventKind::Exec);
        b.record(TraceEventKind::Retire);
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        let (evs, _) = b.into_parts();
        assert_eq!(evs[0].kind, TraceEventKind::Spawn);
        assert_eq!(evs[1].kind, TraceEventKind::Exec);
    }

    #[test]
    fn merge_sorts_and_sums_drops() {
        let mut a = TraceBuffer::new(0, 1);
        a.record(TraceEventKind::Spawn);
        a.record(TraceEventKind::Exec); // dropped
        std::thread::sleep(std::time::Duration::from_millis(1));
        let mut b = TraceBuffer::new(1, 10);
        b.record(TraceEventKind::StealSuccess { victim: 0 });
        let trace = JobTrace::merge(vec![b, a]);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 1);
        assert!(trace.events[0].t_ns <= trace.events[1].t_ns);
        assert_eq!(trace.steal_edges(), vec![(1, 0)]);
    }

    #[test]
    fn count_matching_filters() {
        let mut b = TraceBuffer::new(0, 10);
        b.record(TraceEventKind::Spawn);
        b.record(TraceEventKind::Spawn);
        b.record(TraceEventKind::Exec);
        let t = JobTrace::merge(vec![b]);
        assert_eq!(t.count_matching(|k| matches!(k, TraceEventKind::Spawn)), 2);
    }

    #[test]
    fn display_renders_lines() {
        let mut b = TraceBuffer::new(2, 1);
        b.record(TraceEventKind::PostRemote { to: 0 });
        b.record(TraceEventKind::Exec); // dropped
        let t = JobTrace::merge(vec![b]);
        let s = format!("{t}");
        assert!(s.contains("w2"));
        assert!(s.contains("PostRemote"));
        assert!(s.contains("dropped"));
    }
}
