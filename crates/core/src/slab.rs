//! A small generational slab used to store live join cells.
//!
//! Join cells are allocated and freed millions of times per run (one per
//! spawn site), so the allocator must be O(1) with no per-operation heap
//! traffic beyond the cell payload itself. Generations catch the classic
//! dangling-handle bug: posting to a cell that already fired and whose slot
//! was recycled is detected instead of silently corrupting an unrelated
//! cell.

/// A handle into a [`Slab`]: index plus generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabKey {
    /// Slot index.
    pub index: u32,
    /// Generation the slot had when allocated.
    pub gen: u32,
}

enum Slot<T> {
    Vacant { next_free: u32 },
    Occupied(T),
}

/// Generational arena with an intrusive free list.
pub struct Slab<T> {
    slots: Vec<(u32, Slot<T>)>,
    free_head: u32,
    len: usize,
}

const NIL: u32 = u32::MAX;

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, returning its key.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if self.free_head != NIL {
            let index = self.free_head;
            let (gen, slot) = &mut self.slots[index as usize];
            let Slot::Vacant { next_free } = *slot else {
                unreachable!("free list points at occupied slot");
            };
            self.free_head = next_free;
            *slot = Slot::Occupied(value);
            SlabKey { index, gen: *gen }
        } else {
            let index = self.slots.len() as u32;
            assert!(index != NIL, "slab capacity exhausted");
            self.slots.push((0, Slot::Occupied(value)));
            SlabKey { index, gen: 0 }
        }
    }

    /// Immutable access; `None` if the key is stale or vacant.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        match self.slots.get(key.index as usize) {
            Some((gen, Slot::Occupied(v))) if *gen == key.gen => Some(v),
            _ => None,
        }
    }

    /// Mutable access; `None` if the key is stale or vacant.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        match self.slots.get_mut(key.index as usize) {
            Some((gen, Slot::Occupied(v))) if *gen == key.gen => Some(v),
            _ => None,
        }
    }

    /// Removes and returns the entry; `None` if the key is stale or vacant.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let (gen, slot) = self.slots.get_mut(key.index as usize)?;
        if *gen != key.gen || matches!(slot, Slot::Vacant { .. }) {
            return None;
        }
        *gen = gen.wrapping_add(1);
        let old = std::mem::replace(
            slot,
            Slot::Vacant {
                next_free: self.free_head,
            },
        );
        self.free_head = key.index;
        self.len -= 1;
        match old {
            Slot::Occupied(v) => Some(v),
            Slot::Vacant { .. } => unreachable!("checked occupied above"),
        }
    }

    /// Removes and returns all live entries (used when a retiring worker
    /// migrates its cells to an adoptive worker).
    pub fn drain_all(&mut self) -> Vec<(SlabKey, T)> {
        let mut out = Vec::with_capacity(self.len);
        for (index, (gen, slot)) in self.slots.iter_mut().enumerate() {
            if matches!(slot, Slot::Occupied(_)) {
                let key = SlabKey {
                    index: index as u32,
                    gen: *gen,
                };
                *gen = gen.wrapping_add(1);
                let old = std::mem::replace(
                    slot,
                    Slot::Vacant {
                        next_free: self.free_head,
                    },
                );
                self.free_head = index as u32;
                if let Slot::Occupied(v) = old {
                    out.push((key, v));
                }
            }
        }
        self.len = 0;
        out
    }

    /// Re-inserts an entry under a specific key (the receiving side of a
    /// cell migration). The slot must currently be vacant or beyond the end;
    /// the generation is forced to the key's.
    pub fn insert_at(&mut self, key: SlabKey, value: T) {
        let idx = key.index as usize;
        while self.slots.len() <= idx {
            // Newly materialised slots are vacant but deliberately NOT put
            // on the free list: their generations are controlled by the
            // migrating keys, and fresh local inserts must not collide.
            self.slots.push((u32::MAX, Slot::Vacant { next_free: NIL }));
        }
        let (gen, slot) = &mut self.slots[idx];
        assert!(
            matches!(slot, Slot::Vacant { .. }),
            "insert_at over a live entry"
        );
        *gen = key.gen;
        *slot = Slot::Occupied(value);
        self.len += 1;
        // Occupying a slot that may sit on the free list invalidates the
        // list (the link lived in the Vacant variant we just replaced).
        // Migration is rare and never on the hot path, so rebuild outright.
        self.rebuild_free_list();
    }

    /// Builds a slab holding exactly `entries`, each under its original
    /// key — the bulk receiving side of a cell migration. O(n + max index).
    pub fn from_entries(entries: Vec<(SlabKey, T)>) -> Self {
        let mut slab = Self::new();
        let max_index = entries.iter().map(|(k, _)| k.index).max();
        if let Some(max) = max_index {
            slab.slots.resize_with((max + 1) as usize, || {
                (u32::MAX, Slot::Vacant { next_free: NIL })
            });
        }
        for (key, value) in entries {
            let (gen, slot) = &mut slab.slots[key.index as usize];
            assert!(
                matches!(slot, Slot::Vacant { .. }),
                "duplicate key in from_entries"
            );
            *gen = key.gen;
            *slot = Slot::Occupied(value);
            slab.len += 1;
        }
        slab.rebuild_free_list();
        slab
    }

    fn rebuild_free_list(&mut self) {
        self.free_head = NIL;
        for i in (0..self.slots.len()).rev() {
            if let (_, Slot::Vacant { next_free }) = &mut self.slots[i] {
                *next_free = self.free_head;
                self.free_head = i as u32;
            }
        }
    }
}

impl<T> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let k = s.insert("hello");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(k), Some(&"hello"));
        assert_eq!(s.remove(k), Some("hello"));
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.get(k), None);
    }

    #[test]
    fn stale_key_rejected_after_reuse() {
        let mut s = Slab::new();
        let k1 = s.insert(1);
        s.remove(k1);
        let k2 = s.insert(2);
        assert_eq!(k1.index, k2.index, "slot must be reused");
        assert_ne!(k1.gen, k2.gen, "generation must differ");
        assert_eq!(s.get(k1), None, "stale key must miss");
        assert_eq!(s.get(k2), Some(&2));
    }

    #[test]
    fn get_mut_mutates() {
        let mut s = Slab::new();
        let k = s.insert(10);
        *s.get_mut(k).unwrap() += 5;
        assert_eq!(s.get(k), Some(&15));
    }

    #[test]
    fn double_remove_is_none() {
        let mut s = Slab::new();
        let k = s.insert(9);
        assert_eq!(s.remove(k), Some(9));
        assert_eq!(s.remove(k), None);
    }

    #[test]
    fn free_list_reuses_lifo() {
        let mut s = Slab::new();
        let a = s.insert('a');
        let b = s.insert('b');
        s.remove(a);
        s.remove(b);
        let c = s.insert('c');
        assert_eq!(c.index, b.index, "most recently freed first");
    }

    #[test]
    fn many_inserts_removals_stay_consistent() {
        let mut s = Slab::new();
        let mut keys = Vec::new();
        for i in 0..1000 {
            keys.push(s.insert(i));
        }
        for (i, k) in keys.iter().enumerate().filter(|(i, _)| i % 3 == 0) {
            assert_eq!(s.remove(*k), Some(i));
        }
        assert_eq!(s.len(), 1000 - 334);
        for (i, k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(s.get(*k), None);
            } else {
                assert_eq!(s.get(*k), Some(&i));
            }
        }
    }

    #[test]
    fn drain_all_empties_and_keys_remain_stale() {
        let mut s = Slab::new();
        let k1 = s.insert(1);
        let k2 = s.insert(2);
        let drained = s.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
        assert_eq!(s.get(k1), None);
        assert_eq!(s.get(k2), None);
        let keys: Vec<SlabKey> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys[0].index, k1.index);
        assert_eq!(keys[1].index, k2.index);
    }

    #[test]
    fn migration_roundtrip_preserves_keys() {
        let mut src = Slab::new();
        let keys: Vec<_> = (0..10).map(|i| src.insert(i)).collect();
        let moved = src.drain_all();
        let mut dst = Slab::new();
        for (k, v) in moved {
            dst.insert_at(k, v);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(dst.get(*k), Some(&i), "migrated key must resolve");
        }
        assert_eq!(dst.len(), 10);
        // Fresh inserts into the destination must not collide.
        let fresh = dst.insert(99);
        assert_eq!(dst.get(fresh), Some(&99));
        for k in &keys {
            assert_ne!(
                (fresh.index, fresh.gen),
                (k.index, k.gen),
                "fresh key collided with migrated key"
            );
        }
    }

    #[test]
    fn from_entries_bulk_migration() {
        let mut src = Slab::new();
        let keys: Vec<_> = (0..100).map(|i| src.insert(i)).collect();
        // Free some so the key space has holes.
        for k in keys.iter().step_by(4) {
            src.remove(*k);
        }
        let dst = Slab::from_entries(src.drain_all());
        assert_eq!(dst.len(), 75);
        for (i, k) in keys.iter().enumerate() {
            if i % 4 == 0 {
                assert_eq!(dst.get(*k), None);
            } else {
                assert_eq!(dst.get(*k), Some(&i));
            }
        }
        let mut dst = dst;
        let fresh = dst.insert(1234);
        assert_eq!(dst.get(fresh), Some(&1234));
    }

    #[test]
    fn insert_at_into_used_slab() {
        let mut dst = Slab::new();
        let local = dst.insert(100);
        dst.insert_at(SlabKey { index: 5, gen: 3 }, 200);
        assert_eq!(dst.get(local), Some(&100));
        assert_eq!(dst.get(SlabKey { index: 5, gen: 3 }), Some(&200));
        assert_eq!(dst.len(), 2);
        // Subsequent inserts find vacant slots without touching either.
        for i in 0..10 {
            dst.insert(i);
        }
        assert_eq!(dst.get(local), Some(&100));
        assert_eq!(dst.get(SlabKey { index: 5, gen: 3 }), Some(&200));
    }

    #[test]
    #[should_panic(expected = "insert_at over a live entry")]
    fn insert_at_over_live_entry_panics() {
        let mut s = Slab::new();
        let k = s.insert(1);
        s.insert_at(k, 2);
    }
}
