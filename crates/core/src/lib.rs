#![warn(missing_docs)]

//! # phish-core — the micro-level idle-initiated scheduler
//!
//! A reproduction of the intra-application scheduler of *Scheduling
//! Large-Scale Parallel Computations on Networks of Workstations* (Blumofe
//! & Park, HPDC '94): each participating worker executes its local ready
//! tasks in **LIFO** order, and when it runs out it becomes a *thief*,
//! choosing a victim **uniformly at random** and stealing the task at the
//! **tail** of the victim's ready list (**FIFO** steal order). LIFO
//! execution keeps the working set small; FIFO stealing moves whole
//! subtrees, so steals — and therefore messages — stay rare.
//!
//! Two programming models are provided:
//!
//! * **Continuation-passing tasks** ([`Engine`], [`Worker`], [`Cont`]) —
//!   the general model, mirroring the continuation-passing-threads style
//!   the paper's applications were written in. Tasks spawn children and
//!   synchronize through join cells.
//! * **Spec tasks** ([`SpecTask`], [`SpecEngine`]) — self-describing,
//!   re-executable tasks with monoid results, used by the fault-tolerance
//!   layer (lost work must be re-creatable) and the discrete-event
//!   simulator (tasks must be costable).
//!
//! Every scheduling decision the paper fixes is a knob in
//! [`SchedulerConfig`], so the ablation benchmarks can demonstrate *why*
//! the paper's choices win.
//!
//! ## Example
//!
//! ```
//! use phish_core::{Cont, Engine, SchedulerConfig, Worker};
//!
//! // fib(10) with one join cell per interior call.
//! fn fib(n: u64, out: Cont) -> Box<dyn FnOnce(&mut Worker<u64>) + Send> {
//!     Box::new(move |w| {
//!         if n < 2 {
//!             w.post(out, n);
//!             return;
//!         }
//!         let (ca, cb) = w.join2(move |a, b, w| w.post(out, a + b));
//!         w.spawn(move |w| fib(n - 1, ca)(w));
//!         w.spawn(move |w| fib(n - 2, cb)(w));
//!     })
//! }
//!
//! let (value, stats) = Engine::run(SchedulerConfig::paper(2), fib(10, Cont::ROOT));
//! assert_eq!(value, 55);
//! assert!(stats.tasks_executed > 100);
//! ```

pub mod cell;
pub mod codec;
pub mod config;
pub mod deque;
pub mod engine;
pub mod kernel;
pub mod mapreduce;
pub mod slab;
pub mod spec;
pub mod spec_engine;
pub mod stats;
pub mod task;
pub mod trace;
pub mod worker;

pub use cell::Cell;
pub use codec::{bytes_to_words, words_to_bytes, WordCodec, WordReader};
pub use config::{ExecOrder, RetirePolicy, SchedulerConfig, StealEnd, StealProtocol, VictimPolicy};
pub use deque::ReadyDeque;
pub use engine::Engine;
pub use kernel::{
    worker_seed, CpsWorkload, KernelCtl, SchedulerCore, SpecSink, SpecWorkload, StealAttempt,
    StealOutcome, Substrate, Workload,
};
pub use mapreduce::map_reduce;
pub use slab::{Slab, SlabKey};
pub use spec::{count_tasks, run_serial, SpecStep, SpecTask};
pub use spec_engine::SpecEngine;
pub use stats::{JobStats, WorkerStats};
pub use task::{CellRef, Cont, Msg, Task, TaskFn, WorkerId};
pub use trace::{JobTrace, TraceBuffer, TraceEvent, TraceEventKind};
pub use worker::Worker;
