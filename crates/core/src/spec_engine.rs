//! Threaded work-stealing execution of [`SpecTask`] trees.
//!
//! Same scheduling discipline as the closure engine — it runs the same
//! [`kernel`](crate::kernel) loop — but over self-describing tasks whose
//! results merge through a monoid. Each worker is a [`SpecWorker`]
//! substrate: local work comes from its shared deque, steals are direct
//! deque access, and stepping a spec routes through the worker's
//! [`SpecSink`] (merge into the thread-local accumulator, push children,
//! decrement the global outstanding counter). Termination uses that
//! counter instead of a root continuation: when the last spec finishes and
//! no children were added, the job is done and every worker's local
//! accumulator is merged.
//!
//! The fault-tolerance crate builds its ledger-based recovering engine on
//! the same trait; this engine is the crash-free reference implementation
//! the recovery results are checked against.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::config::SchedulerConfig;
use crate::deque::ReadyDeque;
use crate::kernel::{
    KernelCtl, SchedulerCore, SpecSink, SpecWorkload, StealAttempt, Substrate, Workload,
};
use crate::spec::SpecTask;
use crate::stats::JobStats;
use crate::task::WorkerId;

struct SpecShared<S: SpecTask> {
    cfg: SchedulerConfig,
    deques: Vec<ReadyDeque<S>>,
    /// Specs spawned but not yet fully stepped. Zero ⇒ job complete.
    outstanding: AtomicU64,
    done: AtomicBool,
}

/// Work-stealing executor for spec trees.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecEngine;

impl SpecEngine {
    /// Runs the tree rooted at `root` on `cfg.workers` threads and returns
    /// the merged result plus job statistics.
    pub fn run<S: SpecTask>(cfg: SchedulerConfig, root: S) -> (S::Output, JobStats) {
        Self::run_many(cfg, vec![root], S::identity())
    }

    /// Runs a whole *frontier* of ready specs, folding their results into
    /// `acc0` — the parallel resume path for checkpoints (a checkpoint is
    /// exactly a frontier plus the accumulated partial result).
    ///
    /// An empty frontier returns `acc0` immediately.
    pub fn run_many<S: SpecTask>(
        cfg: SchedulerConfig,
        frontier: Vec<S>,
        acc0: S::Output,
    ) -> (S::Output, JobStats) {
        cfg.validate().expect("invalid scheduler configuration");
        if frontier.is_empty() {
            return (acc0, JobStats::from_workers(vec![], 0));
        }
        let shared = Arc::new(SpecShared {
            cfg,
            deques: (0..cfg.workers).map(|_| ReadyDeque::new()).collect(),
            outstanding: AtomicU64::new(frontier.len() as u64),
            done: AtomicBool::new(false),
        });
        // Scatter the frontier round-robin; thieves rebalance the rest.
        for (i, spec) in frontier.into_iter().enumerate() {
            shared.deques[i % cfg.workers].push(spec);
        }
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..cfg.workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("phish-spec-{i}"))
                    .spawn(move || {
                        let mut w = SpecWorker::new(i, sh);
                        SchedulerCore::new().run(&mut w);
                        (w.acc, w.ctl.stats)
                    })
                    .expect("spawn spec worker")
            })
            .collect();
        let mut acc = acc0;
        let mut per_worker = Vec::with_capacity(cfg.workers);
        for h in handles {
            let (partial, stats) = h.join().expect("spec worker panicked");
            acc = S::merge(acc, partial);
            per_worker.push(stats);
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        (acc, JobStats::from_workers(per_worker, elapsed))
    }
}

/// One spec-engine participant: the crash-free spec substrate.
struct SpecWorker<S: SpecTask> {
    id: WorkerId,
    shared: Arc<SpecShared<S>>,
    ctl: KernelCtl,
    /// Thread-local partial result, merged by the engine after the join.
    acc: S::Output,
}

impl<S: SpecTask> SpecWorker<S> {
    fn new(id: WorkerId, shared: Arc<SpecShared<S>>) -> Self {
        let ctl = KernelCtl::from_config(id, &shared.cfg);
        Self {
            id,
            shared,
            ctl,
            acc: S::identity(),
        }
    }
}

impl<S: SpecTask> SpecSink<S> for SpecWorker<S> {
    fn merge(&mut self, out: S::Output) {
        let prev = std::mem::replace(&mut self.acc, S::identity());
        self.acc = S::merge(prev, out);
    }

    fn spawn(&mut self, children: Vec<S>) {
        self.ctl.note_spawn(children.len() as u64);
        // Count the children as outstanding *before* they become stealable,
        // so the counter can never dip to zero while work exists.
        self.shared
            .outstanding
            .fetch_add(children.len() as u64, Ordering::AcqRel);
        let mut len = 0;
        for child in children {
            len = self.shared.deques[self.id].push(child);
        }
        self.ctl.stats.sample_in_use(len as u64 + 1);
    }

    fn finished(&mut self) {
        if self.shared.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.done.store(true, Ordering::Release);
        }
    }
}

impl<S: SpecTask> Substrate for SpecWorker<S> {
    type Load = SpecWorkload<S>;

    fn ctl(&mut self) -> &mut KernelCtl {
        &mut self.ctl
    }

    fn done(&self) -> bool {
        self.shared.done.load(Ordering::Acquire)
    }

    fn pop_local(&mut self) -> Option<S> {
        let (spec, len) = self.shared.deques[self.id].pop(self.shared.cfg.exec_order)?;
        self.ctl.stats.sample_in_use(len as u64 + 1);
        Some(spec)
    }

    fn try_steal(&mut self, victim: WorkerId) -> StealAttempt<S> {
        match self.shared.deques[victim].steal(self.shared.cfg.steal_end) {
            Some(spec) => StealAttempt::Got(spec),
            None => StealAttempt::Empty,
        }
    }

    fn admit(&mut self, loot: S) {
        self.shared.deques[self.id].push(loot);
    }

    fn execute(&mut self, spec: S) -> ControlFlow<()> {
        self.ctl.note_exec();
        SpecWorkload::execute(spec, self);
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExecOrder, SchedulerConfig, StealEnd, VictimPolicy};
    use crate::spec::test_specs::RangeSum;
    use crate::spec::{count_tasks, run_serial};

    #[test]
    fn single_worker_matches_serial() {
        let root = RangeSum { lo: 1, hi: 10_000 };
        let (v, stats) = SpecEngine::run(SchedulerConfig::paper(1), root.clone());
        assert_eq!(v, run_serial(root.clone()));
        assert_eq!(stats.tasks_executed, count_tasks(root));
    }

    #[test]
    fn multi_worker_matches_serial() {
        let root = RangeSum { lo: 1, hi: 100_000 };
        let (v, _) = SpecEngine::run(SchedulerConfig::paper(4), root.clone());
        assert_eq!(v, run_serial(root));
    }

    /// A spec tree that cannot complete without a steal: the owner pops the
    /// waiter (LIFO) and spins until the setter — still on its deque — has
    /// run, which only a thief can do. Completion proves a steal.
    #[derive(Clone)]
    struct BarrierSpec {
        role: u8, // 0 = root, 1 = setter, 2 = waiter
        flag: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl SpecTask for BarrierSpec {
        type Output = u64;
        fn step(self) -> crate::spec::SpecStep<Self> {
            use std::sync::atomic::Ordering;
            match self.role {
                0 => crate::spec::SpecStep::Expand {
                    children: vec![
                        BarrierSpec {
                            role: 1,
                            flag: std::sync::Arc::clone(&self.flag),
                        },
                        BarrierSpec {
                            role: 2,
                            flag: std::sync::Arc::clone(&self.flag),
                        },
                    ],
                    partial: 0,
                },
                1 => {
                    self.flag.store(true, Ordering::Release);
                    crate::spec::SpecStep::Leaf(2)
                }
                _ => {
                    while !self.flag.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                    crate::spec::SpecStep::Leaf(1)
                }
            }
        }
        fn identity() -> u64 {
            0
        }
        fn merge(a: u64, b: u64) -> u64 {
            a + b
        }
    }

    #[test]
    fn multi_worker_steals_deterministically() {
        let root = BarrierSpec {
            role: 0,
            flag: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
        };
        let (v, stats) = SpecEngine::run(SchedulerConfig::paper(4), root);
        assert_eq!(v, 3);
        assert!(stats.tasks_stolen > 0, "completion proves a steal");
    }

    #[test]
    fn task_count_independent_of_worker_count() {
        let root = RangeSum { lo: 1, hi: 30_000 };
        let (_, s1) = SpecEngine::run(SchedulerConfig::paper(1), root.clone());
        let (_, s3) = SpecEngine::run(SchedulerConfig::paper(3), root);
        assert_eq!(s1.tasks_executed, s3.tasks_executed);
    }

    #[test]
    fn all_policy_combinations_agree() {
        let root = RangeSum { lo: 1, hi: 20_000 };
        let expect = run_serial(root.clone());
        for exec_order in [ExecOrder::Lifo, ExecOrder::Fifo] {
            for steal_end in [StealEnd::Tail, StealEnd::Head] {
                for victim in [VictimPolicy::UniformRandom, VictimPolicy::RoundRobin] {
                    let mut cfg = SchedulerConfig::paper(3);
                    cfg.exec_order = exec_order;
                    cfg.steal_end = steal_end;
                    cfg.victim_policy = victim;
                    let (v, _) = SpecEngine::run(cfg, root.clone());
                    assert_eq!(v, expect);
                }
            }
        }
    }

    #[test]
    fn run_many_resumes_a_frontier() {
        // Split the root by hand, fold half serially into acc0, and hand
        // the other half plus acc0 to run_many: the total must match.
        let root = RangeSum { lo: 1, hi: 50_000 };
        let expect = run_serial(root);
        let (left, right) = (
            RangeSum { lo: 1, hi: 25_000 },
            RangeSum {
                lo: 25_001,
                hi: 50_000,
            },
        );
        let acc0 = run_serial(left);
        let (v, _) = SpecEngine::run_many(SchedulerConfig::paper(3), vec![right], acc0);
        assert_eq!(v, expect);
    }

    #[test]
    fn run_many_empty_frontier_returns_acc() {
        let (v, stats) = SpecEngine::run_many::<RangeSum>(SchedulerConfig::paper(2), vec![], 77);
        assert_eq!(v, 77);
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn run_many_scatters_across_workers() {
        let frontier: Vec<RangeSum> = (0..8)
            .map(|i| RangeSum {
                lo: i * 1000 + 1,
                hi: (i + 1) * 1000,
            })
            .collect();
        let (v, _) = SpecEngine::run_many(SchedulerConfig::paper(4), frontier, 0);
        assert_eq!(v, (1..=8000).sum::<u64>());
    }

    #[test]
    fn lifo_working_set_beats_fifo() {
        let root = RangeSum { lo: 1, hi: 100_000 };
        let mut lifo = SchedulerConfig::paper(1);
        lifo.exec_order = ExecOrder::Lifo;
        let (_, sl) = SpecEngine::run(lifo, root.clone());
        let mut fifo = SchedulerConfig::paper(1);
        fifo.exec_order = ExecOrder::Fifo;
        let (_, sf) = SpecEngine::run(fifo, root);
        assert!(
            sl.max_tasks_in_use * 10 < sf.max_tasks_in_use,
            "LIFO {} vs FIFO {}",
            sl.max_tasks_in_use,
            sf.max_tasks_in_use
        );
    }
}
