//! The steal ledger: the "redundant state" behind Phish's fault tolerance.
//!
//! "Enough redundant state is maintained so that lost work can be redone in
//! the event of a machine crash." (§3) Concretely — following the
//! subcomputation scheme Blumofe later published as Cilk-NOW — every time a
//! thief steals a task, the *victim* records the stolen spec, who took it,
//! and which of the victim's own open assignments it belongs to. The entry
//! is erased when the thief reports the subtree's result; if the thief is
//! declared crashed first, the victim re-enqueues the spec and executes it
//! again. Because a result is merged exactly when its ledger entry is
//! erased, no subtree is ever counted twice.

use std::collections::HashMap;

/// Identifies an open assignment within one worker.
pub type AssignmentId = u64;

/// Identifies a ledger entry within one worker (the victim). The pair
/// (victim id, entry id) is globally unique and travels with the stolen
/// task so the thief can address its report.
pub type EntryId = u64;

/// One outstanding stolen subcomputation.
#[derive(Debug, Clone)]
pub struct Entry<S> {
    /// The stolen spec, kept so it can be re-executed.
    pub spec: S,
    /// Which worker took it.
    pub thief: usize,
    /// Which of the victim's assignments the subtree belongs to.
    pub assignment: AssignmentId,
}

/// A victim-side ledger of outstanding steals.
#[derive(Debug)]
pub struct Ledger<S> {
    entries: HashMap<EntryId, Entry<S>>,
    next_id: EntryId,
}

impl<S> Default for Ledger<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Ledger<S> {
    /// An empty ledger.
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            next_id: 1,
        }
    }

    /// Records a steal; the returned id travels with the stolen task.
    pub fn record(&mut self, spec: S, thief: usize, assignment: AssignmentId) -> EntryId {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.insert(
            id,
            Entry {
                spec,
                thief,
                assignment,
            },
        );
        id
    }

    /// The thief reported the subtree's result: erase the entry, returning
    /// the assignment it completes. `None` when the entry is unknown — a
    /// late report from a worker already declared crashed (whose subtree
    /// was re-executed); the caller must discard the result.
    pub fn complete(&mut self, id: EntryId, reporting_worker: usize) -> Option<AssignmentId> {
        match self.entries.get(&id) {
            Some(e) if e.thief == reporting_worker => {
                let e = self.entries.remove(&id).expect("entry just observed");
                Some(e.assignment)
            }
            _ => None,
        }
    }

    /// A thief died: remove and return all of its entries so the victim can
    /// re-enqueue the lost subtrees.
    pub fn fail_thief(&mut self, thief: usize) -> Vec<Entry<S>> {
        let ids: Vec<EntryId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.thief == thief)
            .map(|(id, _)| *id)
            .collect();
        ids.into_iter()
            .map(|id| self.entries.remove(&id).expect("id from scan"))
            .collect()
    }

    /// Drops every entry belonging to `assignment` (the assignment itself
    /// was orphaned: its origin died). Returns how many were dropped.
    pub fn drop_assignment(&mut self, assignment: AssignmentId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.assignment != assignment);
        before - self.entries.len()
    }

    /// Outstanding entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no steals are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Outstanding entries for one assignment.
    pub fn outstanding_for(&self, assignment: AssignmentId) -> usize {
        self.entries
            .values()
            .filter(|e| e.assignment == assignment)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_complete_roundtrip() {
        let mut l = Ledger::new();
        let id = l.record("subtree", 3, 7);
        assert_eq!(l.len(), 1);
        assert_eq!(l.outstanding_for(7), 1);
        assert_eq!(l.complete(id, 3), Some(7));
        assert!(l.is_empty());
    }

    #[test]
    fn complete_rejects_wrong_reporter() {
        // A report must come from the recorded thief; anything else is a
        // protocol violation (or a duplicate after re-assignment) and is
        // discarded.
        let mut l = Ledger::new();
        let id = l.record("s", 3, 1);
        assert_eq!(l.complete(id, 4), None);
        assert_eq!(l.len(), 1, "entry must survive a bogus report");
        assert_eq!(l.complete(id, 3), Some(1));
    }

    #[test]
    fn duplicate_complete_is_none() {
        let mut l = Ledger::new();
        let id = l.record("s", 2, 1);
        assert_eq!(l.complete(id, 2), Some(1));
        assert_eq!(l.complete(id, 2), None, "second report discarded");
    }

    #[test]
    fn fail_thief_returns_only_its_entries() {
        let mut l = Ledger::new();
        l.record("a", 1, 10);
        l.record("b", 2, 10);
        l.record("c", 1, 11);
        let lost = l.fail_thief(1);
        assert_eq!(lost.len(), 2);
        assert!(lost.iter().all(|e| e.thief == 1));
        let specs: Vec<&str> = lost.iter().map(|e| e.spec).collect();
        assert!(specs.contains(&"a") && specs.contains(&"c"));
        assert_eq!(l.len(), 1, "worker 2's entry survives");
    }

    #[test]
    fn late_report_after_failure_is_discarded() {
        let mut l = Ledger::new();
        let id = l.record("a", 1, 10);
        let _ = l.fail_thief(1);
        assert_eq!(l.complete(id, 1), None, "entry was re-assigned; discard");
    }

    #[test]
    fn drop_assignment_clears_orphans() {
        let mut l = Ledger::new();
        l.record("a", 1, 10);
        l.record("b", 2, 10);
        l.record("c", 3, 11);
        assert_eq!(l.drop_assignment(10), 2);
        assert_eq!(l.len(), 1);
        assert_eq!(l.outstanding_for(11), 1);
    }

    #[test]
    fn entry_ids_never_reused() {
        let mut l = Ledger::new();
        let a = l.record("a", 1, 1);
        l.complete(a, 1);
        let b = l.record("b", 1, 1);
        assert_ne!(a, b);
    }
}
