//! Checkpointing: pause a computation, persist it, resume it — possibly in
//! another process, on another day, or on a different number of workers.
//!
//! §6 lists "support for checkpointing" among Phish's planned extensions;
//! this module implements it for spec-task jobs. The key observation is
//! that a work-stealing computation's entire restartable state is tiny: the
//! *frontier* (the ready specs not yet stepped) plus the accumulated
//! partial result. Both serialize through [`WordCodec`] with no external
//! dependencies, and a resumed frontier can be fed straight into
//! [`SpecEngine::run_many`] at any worker count.
//!
//! The on-disk format is a little-endian `u64` stream:
//! `[MAGIC, VERSION, steps_done, frontier (Vec<S>), acc (S::Output)]`.

use std::io::{Read, Write};
use std::path::Path;

use phish_core::codec::{bytes_to_words, words_to_bytes, WordCodec, WordReader};
use phish_core::{JobStats, SchedulerConfig, SpecEngine, SpecStep, SpecTask};

/// File magic: "PHISHCKP" as a word.
pub const MAGIC: u64 = 0x5048_4953_4843_4B50;

/// Format version.
pub const VERSION: u64 = 1;

/// A paused spec computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<S: SpecTask> {
    /// Ready specs not yet stepped.
    pub frontier: Vec<S>,
    /// Result mass accumulated so far.
    pub acc: S::Output,
    /// Tasks executed before the pause (bookkeeping/progress reporting).
    pub steps_done: u64,
}

impl<S: SpecTask> Checkpoint<S> {
    /// The starting checkpoint: just the root, nothing accumulated.
    pub fn fresh(root: S) -> Self {
        Self {
            frontier: vec![root],
            acc: S::identity(),
            steps_done: 0,
        }
    }

    /// True when nothing remains to execute.
    pub fn is_complete(&self) -> bool {
        self.frontier.is_empty()
    }
}

impl<S> Checkpoint<S>
where
    S: SpecTask + WordCodec,
    S::Output: WordCodec,
{
    /// Serializes to the word format.
    pub fn to_words(&self) -> Vec<u64> {
        let mut words = vec![MAGIC, VERSION, self.steps_done];
        self.frontier.encode(&mut words);
        self.acc.encode(&mut words);
        words
    }

    /// Deserializes; `None` on bad magic/version/payload.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        let mut r = WordReader::new(words);
        if r.word()? != MAGIC || r.word()? != VERSION {
            return None;
        }
        let steps_done = r.word()?;
        let frontier = Vec::<S>::decode(&mut r)?;
        let acc = <S::Output>::decode(&mut r)?;
        if !r.is_exhausted() {
            return None; // trailing garbage
        }
        Some(Self {
            frontier,
            acc,
            steps_done,
        })
    }

    /// Writes the checkpoint to a file (atomically: temp file + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("ckp.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&words_to_bytes(&self.to_words()))?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Reads a checkpoint from a file; `Ok(None)` if the contents are not
    /// a valid checkpoint.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Option<Self>> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes_to_words(&bytes).and_then(|w| Self::from_words(&w)))
    }
}

/// Outcome of a budgeted run slice.
pub enum SliceOutcome<S: SpecTask> {
    /// The computation finished with this result.
    Done(S::Output),
    /// The budget ran out; here is the resumable state.
    Paused(Checkpoint<S>),
}

/// Executes at most `budget` task steps serially (depth-first), starting
/// from `start`. The serial slicer is what a single workstation runs
/// between checkpoint writes.
pub fn run_slice<S: SpecTask>(start: Checkpoint<S>, budget: u64) -> SliceOutcome<S> {
    let mut stack = start.frontier;
    let mut acc = start.acc;
    let mut steps = 0;
    while let Some(spec) = stack.pop() {
        match spec.step() {
            SpecStep::Leaf(out) => acc = S::merge(acc, out),
            SpecStep::Expand { children, partial } => {
                acc = S::merge(acc, partial);
                stack.extend(children);
            }
        }
        steps += 1;
        if steps >= budget && !stack.is_empty() {
            return SliceOutcome::Paused(Checkpoint {
                frontier: stack,
                acc,
                steps_done: start.steps_done + steps,
            });
        }
    }
    SliceOutcome::Done(acc)
}

/// Resumes a checkpoint on the parallel spec engine at any worker count.
pub fn resume_parallel<S: SpecTask>(
    cfg: SchedulerConfig,
    ckp: Checkpoint<S>,
) -> (S::Output, JobStats) {
    SpecEngine::run_many(cfg, ckp.frontier, ckp.acc)
}

/// Runs a job in checkpointed slices, invoking `persist` after every slice
/// — the long-unattended-run workflow of §3/§6. Returns the final result
/// and the number of slices executed.
pub fn run_checkpointed<S: SpecTask>(
    root: S,
    slice_budget: u64,
    mut persist: impl FnMut(&Checkpoint<S>),
) -> (S::Output, u64) {
    assert!(slice_budget > 0);
    let mut state = Checkpoint::fresh(root);
    let mut slices = 0;
    loop {
        slices += 1;
        match run_slice(state, slice_budget) {
            SliceOutcome::Done(out) => return (out, slices),
            SliceOutcome::Paused(ckp) => {
                persist(&ckp);
                state = ckp;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phish_core::run_serial;

    /// Range-sum spec with a codec, local to the tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Sum {
        lo: u64,
        hi: u64,
    }

    impl SpecTask for Sum {
        type Output = u64;
        fn step(self) -> SpecStep<Self> {
            if self.hi - self.lo <= 4 {
                SpecStep::Leaf((self.lo..=self.hi).sum())
            } else {
                let mid = (self.lo + self.hi) / 2;
                SpecStep::Expand {
                    children: vec![
                        Sum {
                            lo: self.lo,
                            hi: mid,
                        },
                        Sum {
                            lo: mid + 1,
                            hi: self.hi,
                        },
                    ],
                    partial: 0,
                }
            }
        }
        fn identity() -> u64 {
            0
        }
        fn merge(a: u64, b: u64) -> u64 {
            a + b
        }
    }

    impl WordCodec for Sum {
        fn encode(&self, out: &mut Vec<u64>) {
            out.push(self.lo);
            out.push(self.hi);
        }
        fn decode(r: &mut WordReader<'_>) -> Option<Self> {
            let lo = r.word()?;
            let hi = r.word()?;
            (lo <= hi).then_some(Sum { lo, hi })
        }
    }

    const N: u64 = 100_000;
    const EXPECT: u64 = N * (N + 1) / 2;

    fn root() -> Sum {
        Sum { lo: 1, hi: N }
    }

    #[test]
    fn slice_with_huge_budget_finishes() {
        match run_slice(Checkpoint::fresh(root()), u64::MAX) {
            SliceOutcome::Done(v) => assert_eq!(v, EXPECT),
            SliceOutcome::Paused(_) => panic!("unbounded budget must finish"),
        }
    }

    #[test]
    fn pause_resume_is_exact_for_any_budget() {
        for budget in [1u64, 7, 100, 12345] {
            let mut state = Checkpoint::fresh(root());
            let result = loop {
                match run_slice(state, budget) {
                    SliceOutcome::Done(v) => break v,
                    SliceOutcome::Paused(ckp) => state = ckp,
                }
            };
            assert_eq!(result, EXPECT, "budget {budget}");
        }
    }

    #[test]
    fn words_roundtrip() {
        let SliceOutcome::Paused(ckp) = run_slice(Checkpoint::fresh(root()), 500) else {
            panic!("should pause");
        };
        let words = ckp.to_words();
        let back = Checkpoint::<Sum>::from_words(&words).expect("roundtrip");
        assert_eq!(back, ckp);
    }

    #[test]
    fn corrupt_words_rejected() {
        let SliceOutcome::Paused(ckp) = run_slice(Checkpoint::fresh(root()), 500) else {
            panic!("should pause");
        };
        let mut words = ckp.to_words();
        words[0] ^= 1; // bad magic
        assert!(Checkpoint::<Sum>::from_words(&words).is_none());
        let mut words = ckp.to_words();
        words[1] = 999; // bad version
        assert!(Checkpoint::<Sum>::from_words(&words).is_none());
        let mut words = ckp.to_words();
        words.push(0); // trailing garbage
        assert!(Checkpoint::<Sum>::from_words(&words).is_none());
        let mut words = ckp.to_words();
        words.pop(); // truncated
        assert!(Checkpoint::<Sum>::from_words(&words).is_none());
    }

    #[test]
    fn file_roundtrip_and_resume() {
        let dir = std::env::temp_dir().join(format!("phish-ckp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.ckp");

        let SliceOutcome::Paused(ckp) = run_slice(Checkpoint::fresh(root()), 1000) else {
            panic!("should pause");
        };
        ckp.save(&path).expect("save");
        // "Process restart": all in-memory state is gone; reload.
        let loaded = Checkpoint::<Sum>::load(&path).expect("io").expect("valid");
        assert_eq!(loaded, ckp);
        match run_slice(loaded, u64::MAX) {
            SliceOutcome::Done(v) => assert_eq!(v, EXPECT),
            SliceOutcome::Paused(_) => panic!("must finish"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_parallel_at_different_worker_count() {
        let SliceOutcome::Paused(ckp) = run_slice(Checkpoint::fresh(root()), 2000) else {
            panic!("should pause");
        };
        // Pause came from a serial slicer; resume on 4 workers.
        let (v, _) = resume_parallel(SchedulerConfig::paper(4), ckp);
        assert_eq!(v, EXPECT);
    }

    #[test]
    fn run_checkpointed_persists_each_slice() {
        let mut persisted = Vec::new();
        let (v, slices) = run_checkpointed(root(), 5000, |ckp| {
            persisted.push((ckp.steps_done, ckp.frontier.len()));
        });
        assert_eq!(v, EXPECT);
        assert_eq!(persisted.len() as u64, slices - 1, "last slice finishes");
        // Progress is monotonic.
        assert!(persisted.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn checkpoint_works_for_real_apps() {
        use phish_apps::{nqueens_serial, NQueensSpec, PfoldSpec};
        // nqueens through pause/save/load/parallel-resume.
        let SliceOutcome::Paused(ckp) = run_slice(Checkpoint::fresh(NQueensSpec::new(9, 4)), 50)
        else {
            panic!("should pause");
        };
        let words = ckp.to_words();
        let back = Checkpoint::<NQueensSpec>::from_words(&words).unwrap();
        let (v, _) = resume_parallel(SchedulerConfig::paper(3), back);
        assert_eq!(v, nqueens_serial(9));
        // pfold likewise.
        let expect = run_serial(PfoldSpec::new(10, 5));
        let SliceOutcome::Paused(ckp) = run_slice(Checkpoint::fresh(PfoldSpec::new(10, 5)), 80)
        else {
            panic!("should pause");
        };
        let back = Checkpoint::<PfoldSpec>::from_words(&ckp.to_words()).unwrap();
        let (hist, _) = resume_parallel(SchedulerConfig::paper(2), back);
        assert_eq!(hist, expect);
    }

    #[test]
    fn fresh_checkpoint_of_leaf_completes_in_one_step() {
        let leaf = Sum { lo: 1, hi: 3 };
        match run_slice(Checkpoint::fresh(leaf), 1) {
            SliceOutcome::Done(v) => assert_eq!(v, 6),
            SliceOutcome::Paused(_) => panic!("single leaf must finish in one step"),
        }
    }
}
