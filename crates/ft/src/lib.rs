#![warn(missing_docs)]

//! # phish-ft — fault tolerance by re-execution
//!
//! "Phish is fault tolerant. Enough redundant state is maintained so that
//! lost work can be redone in the event of a machine crash." (§3) — and
//! goal 3 of the implementation: "Provide fault tolerance so that
//! applications can run for long periods of time."
//!
//! The redundant state is the [`ledger::Ledger`]: every steal leaves the
//! stolen task's full description at the victim until the thief reports the
//! subtree's result. Crash detection comes from the Clearinghouse's
//! heartbeats ([`phish_macro::Clearinghouse`]); recovery re-enqueues every
//! subtree the dead worker had stolen, orphans everything that was to be
//! reported *to* it, and re-assigns the root if needed. The invariant — a
//! result merges exactly when its ledger entry is erased — makes
//! re-execution sound: no subtree is lost, none is counted twice.
//!
//! [`engine::RecoveringEngine`] runs [`phish_core::SpecTask`] trees under
//! this scheme with injectable crashes ([`engine::CrashPlan`]).

pub mod checkpoint;
pub mod engine;
pub mod ledger;

pub use checkpoint::{resume_parallel, run_checkpointed, run_slice, Checkpoint, SliceOutcome};
pub use engine::{CrashPlan, FtConfig, FtReport, RecoveringEngine};
pub use ledger::{AssignmentId, EntryId, Ledger};
