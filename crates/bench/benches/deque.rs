//! Criterion microbenchmarks of the ready-deque implementations.
//!
//! Quantifies the design note in `phish-core::deque`: steals are rare
//! (Table 2: 133 steals against 10.4M tasks), so a mutex-protected deque's
//! per-operation cost is what matters, and the lock-free Chase–Lev variant
//! is benchmarked alongside to show what the lock costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use phish_core::deque::lock_free::LockFreeDeque;
use phish_core::{ExecOrder, ReadyDeque, StealEnd};

fn bench_locked_push_pop(c: &mut Criterion) {
    let d: ReadyDeque<u64> = ReadyDeque::new();
    c.bench_function("deque/locked/push_pop", |b| {
        b.iter(|| {
            d.push(black_box(1));
            black_box(d.pop(ExecOrder::Lifo))
        })
    });
}

fn bench_lock_free_push_pop(c: &mut Criterion) {
    let d: LockFreeDeque<u64> = LockFreeDeque::new();
    c.bench_function("deque/lock_free/push_pop", |b| {
        b.iter(|| {
            d.push(black_box(1));
            black_box(d.pop())
        })
    });
}

fn bench_locked_steal(c: &mut Criterion) {
    let d: ReadyDeque<u64> = ReadyDeque::new();
    c.bench_function("deque/locked/steal", |b| {
        b.iter(|| {
            d.push(black_box(1));
            black_box(d.steal(StealEnd::Tail))
        })
    });
}

fn bench_lock_free_steal(c: &mut Criterion) {
    let d: LockFreeDeque<u64> = LockFreeDeque::new();
    let s = d.stealer();
    c.bench_function("deque/lock_free/steal", |b| {
        b.iter(|| {
            d.push(black_box(1));
            black_box(s.steal())
        })
    });
}

fn bench_deep_lifo(c: &mut Criterion) {
    // Push/pop against a deep deque (the FIFO-execution ablation's world).
    let d: ReadyDeque<u64> = ReadyDeque::new();
    for i in 0..10_000 {
        d.push(i);
    }
    c.bench_function("deque/locked/push_pop_deep", |b| {
        b.iter(|| {
            d.push(black_box(1));
            black_box(d.pop(ExecOrder::Lifo))
        })
    });
}

criterion_group!(
    benches,
    bench_locked_push_pop,
    bench_lock_free_push_pop,
    bench_locked_steal,
    bench_lock_free_steal,
    bench_deep_lifo,
);
criterion_main!(benches);
