//! Criterion benchmarks of the higher-level scheduling surfaces: the
//! map/reduce convenience API and the virtual-time microsimulator's
//! event-processing rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use phish_apps::PfoldSpec;
use phish_core::{map_reduce, SchedulerConfig};
use phish_sim::{run_microsim, MicroSimConfig};

fn bench_map_reduce_grain(c: &mut Criterion) {
    // The Table-1 grain trade-off through the public API: same job, three
    // chunk sizes.
    let mut g = c.benchmark_group("scheduler/map_reduce_sum_100k");
    for chunk in [1usize, 64, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                map_reduce(
                    SchedulerConfig::paper(2),
                    (0u64..100_000).collect(),
                    chunk,
                    |&i| i,
                    0u64,
                    |a, b| a + b,
                )
            })
        });
    }
    g.finish();
}

fn bench_microsim_event_rate(c: &mut Criterion) {
    // Events per second of the discrete-event core: pfold(11) at task-per-
    // node grain is ~37k simulated tasks.
    c.bench_function("scheduler/microsim_pfold11_8workers", |b| {
        let cfg = MicroSimConfig::ethernet(8);
        b.iter(|| run_microsim(&cfg, PfoldSpec::new(11, 11)))
    });
}

criterion_group!(benches, bench_map_reduce_grain, bench_microsim_event_rate);
criterion_main!(benches);
