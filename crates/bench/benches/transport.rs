//! Criterion benchmarks of the network substrate: raw channel sends, fault
//! injection, and the full reliability stack — the in-process analogue of
//! the paper's "software overhead incurred when sending a message".

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use phish_net::reliable::ReliableMsg;
use phish_net::{
    ChannelNet, LossyConfig, LossyEndpoint, NodeId, ReliableConfig, ReliableEndpoint, SendCost,
};

fn bench_channel_send_recv(c: &mut Criterion) {
    let eps = ChannelNet::<u64>::new(2, SendCost::FREE).into_endpoints();
    let mut it = eps.into_iter();
    let a = it.next().unwrap();
    let b = it.next().unwrap();
    c.bench_function("transport/channel/send_recv", |bch| {
        bch.iter(|| {
            a.send(NodeId(1), black_box(7));
            black_box(b.try_recv())
        })
    });
}

fn bench_lossy_send(c: &mut Criterion) {
    let eps = ChannelNet::<u64>::new(2, SendCost::FREE).into_endpoints();
    let mut it = eps.into_iter();
    let mut a = LossyEndpoint::new(it.next().unwrap(), LossyConfig::nasty(1));
    let b = it.next().unwrap();
    c.bench_function("transport/lossy/send_recv", |bch| {
        bch.iter(|| {
            a.send(NodeId(1), black_box(7));
            while b.try_recv().is_some() {}
        })
    });
}

fn bench_reliable_roundtrip(c: &mut Criterion) {
    // One message through the full ack/retransmit/dedup stack on a clean
    // link: the fixed protocol cost.
    c.bench_function("transport/reliable/send_pump_clean", |bch| {
        let eps = ChannelNet::<ReliableMsg<u64>>::new(2, SendCost::FREE).into_endpoints();
        let mut it = eps.into_iter();
        let rel = ReliableConfig {
            rto: 1_000_000,
            max_retries: 10,
        };
        let mut a = ReliableEndpoint::new(
            LossyEndpoint::new(it.next().unwrap(), LossyConfig::perfect(1)),
            rel,
        );
        let mut b = ReliableEndpoint::new(
            LossyEndpoint::new(it.next().unwrap(), LossyConfig::perfect(2)),
            rel,
        );
        let mut now = 0u64;
        bch.iter(|| {
            now += 1;
            a.send(NodeId(1), black_box(9), now);
            let delivered = b.pump(now);
            a.pump(now);
            black_box(delivered)
        })
    });
}

fn bench_reliable_under_loss(c: &mut Criterion) {
    // Amortized cost per delivered message at 20% loss, retransmissions
    // included.
    c.bench_function("transport/reliable/100msgs_20pct_loss", |bch| {
        bch.iter(|| {
            let eps = ChannelNet::<ReliableMsg<u64>>::new(2, SendCost::FREE).into_endpoints();
            let mut it = eps.into_iter();
            let rel = ReliableConfig {
                rto: 10,
                max_retries: 10_000,
            };
            let lossy = LossyConfig {
                drop_prob: 0.2,
                dup_prob: 0.0,
                reorder_prob: 0.0,
                seed: 42,
            };
            let mut a = ReliableEndpoint::new(LossyEndpoint::new(it.next().unwrap(), lossy), rel);
            let mut b = ReliableEndpoint::new(LossyEndpoint::new(it.next().unwrap(), lossy), rel);
            for i in 0..100 {
                a.send(NodeId(1), i, 0);
            }
            let mut got = 0;
            let mut now = 0;
            while got < 100 {
                now += 11;
                got += b.pump(now).len();
                a.pump(now);
            }
            black_box(got)
        })
    });
}

criterion_group!(
    benches,
    bench_channel_send_recv,
    bench_lossy_send,
    bench_reliable_roundtrip,
    bench_reliable_under_loss,
);
criterion_main!(benches);
