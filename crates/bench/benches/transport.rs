//! Criterion benchmarks of the message fabric: reliable sends, fault
//! injection, and the full recovery protocol — the in-process analogue of
//! the paper's "software overhead incurred when sending a message".

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use std::time::Duration;

use phish_net::{
    Fabric, FabricConfig, FabricEndpoint, LossyConfig, NodeId, ReliableConfig, UdpConfig,
    UdpFabric, WireCodec,
};

fn pair(cfg: FabricConfig) -> (FabricEndpoint<u64>, FabricEndpoint<u64>) {
    let mut it = Fabric::<u64>::new(2, cfg).into_endpoints().into_iter();
    let a = it.next().unwrap();
    let b = it.next().unwrap();
    (a, b)
}

fn bench_reliable_send_recv(c: &mut Criterion) {
    // The reliable policy's per-message cost: one send straight to the
    // destination queue, one receive.
    let (mut a, b) = pair(FabricConfig::reliable());
    c.bench_function("transport/fabric/send_recv", |bch| {
        bch.iter(|| {
            a.send(NodeId(1), black_box(7));
            black_box(b.try_recv())
        })
    });
}

fn bench_lossy_send(c: &mut Criterion) {
    // The fault injector's per-send cost under a nasty schedule (the
    // receiver drains whatever survived; recovery is never pumped, so this
    // isolates the injection overhead).
    let (mut a, b) = pair(FabricConfig::lossy(LossyConfig::nasty(1)));
    let mut now = 0u64;
    c.bench_function("transport/lossy/send_recv", |bch| {
        bch.iter(|| {
            now += 1;
            a.send_at(NodeId(1), black_box(7), now);
            while b.try_recv().is_some() {}
        })
    });
}

fn bench_recovery_roundtrip(c: &mut Criterion) {
    // One message through the full ack/retransmit/dedup protocol on a clean
    // link: the fixed recovery cost.
    c.bench_function("transport/recovery/send_pump_clean", |bch| {
        let recovery = ReliableConfig {
            rto: 1_000_000,
            max_retries: 10,
        };
        let (mut a, mut b) =
            pair(FabricConfig::lossy(LossyConfig::perfect(1)).with_recovery(recovery));
        let mut now = 0u64;
        bch.iter(|| {
            now += 1;
            a.send_at(NodeId(1), black_box(9), now);
            b.pump_at(now);
            let delivered = b.try_recv();
            a.pump_at(now);
            black_box(delivered)
        })
    });
}

fn bench_recovery_under_loss(c: &mut Criterion) {
    // Amortized cost per delivered message at 20% loss, retransmissions
    // included.
    c.bench_function("transport/recovery/100msgs_20pct_loss", |bch| {
        bch.iter(|| {
            let recovery = ReliableConfig {
                rto: 10,
                max_retries: 10_000,
            };
            let faults = LossyConfig {
                drop_prob: 0.2,
                dup_prob: 0.0,
                reorder_prob: 0.0,
                seed: 42,
            };
            let (mut a, mut b) = pair(FabricConfig::lossy(faults).with_recovery(recovery));
            for i in 0..100 {
                a.send_at(NodeId(1), i, 0);
            }
            let mut got = 0;
            let mut now = 0;
            while got < 100 {
                now += 11;
                a.pump_at(now);
                b.pump_at(now);
                while b.try_recv().is_some() {
                    got += 1;
                }
            }
            black_box(got)
        })
    });
}

/// An 8-byte payload for the real-socket benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ping(u64);

impl WireCodec for Ping {
    fn encode_bytes(&self) -> Vec<u8> {
        self.0.to_le_bytes().to_vec()
    }

    fn decode_bytes(bytes: &[u8]) -> Option<Self> {
        Some(Ping(u64::from_le_bytes(bytes.try_into().ok()?)))
    }
}

fn bench_udp_ping_pong(c: &mut Criterion) {
    // One acknowledged round-trip over real loopback UDP sockets: the cost
    // of leaving the address space (syscalls, poller hand-off, ack
    // traffic) relative to the nanosecond-scale in-memory fabric above.
    let mut eps = UdpFabric::local::<Ping>(2, UdpConfig::lan()).expect("loopback sockets");
    let b = eps.pop().expect("endpoint 1");
    let a = eps.pop().expect("endpoint 0");
    let timeout = Duration::from_millis(100);
    c.bench_function("transport/udp/ping_pong", |bch| {
        bch.iter(|| {
            a.send(NodeId(1), &Ping(7));
            let ping = b.recv_timeout(timeout).expect("ping arrives");
            b.send(NodeId(0), &black_box(ping.1));
            black_box(a.recv_timeout(timeout).expect("pong arrives"))
        })
    });
}

criterion_group!(
    benches,
    bench_reliable_send_recv,
    bench_lossy_send,
    bench_recovery_roundtrip,
    bench_recovery_under_loss,
    bench_udp_ping_pong,
);
criterion_main!(benches);
