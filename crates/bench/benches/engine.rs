//! Criterion benchmarks of whole-engine scheduling overhead — the
//! per-task cost behind Table 1's serial-slowdown numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use phish_apps::{fib_serial, fib_task, FibSpec};
use phish_core::{Cont, Engine, SchedulerConfig, SpecEngine};

fn bench_fib_serial(c: &mut Criterion) {
    c.bench_function("engine/fib20/best_serial", |b| b.iter(|| fib_serial(20)));
}

fn bench_fib_spec_engine(c: &mut Criterion) {
    // The "static-lean" runtime of Table 1.
    let cfg = SchedulerConfig::paper(1);
    c.bench_function("engine/fib20/spec_1worker", |b| {
        b.iter(|| SpecEngine::run(cfg, FibSpec { n: 20 }).0)
    });
}

fn bench_fib_cps_engine(c: &mut Criterion) {
    // The full dynamic runtime of Table 1 (join cells + mailboxes).
    let cfg = SchedulerConfig::paper(1);
    c.bench_function("engine/fib20/cps_1worker", |b| {
        b.iter(|| Engine::run(cfg, fib_task(20, Cont::ROOT)).0)
    });
}

fn bench_kernel_cost(c: &mut Criterion) {
    // Watchdog for the generic `SchedulerCore`/`Substrate` kernel's
    // per-task overhead. When the kernel was extracted, these were
    // measured against a verbatim copy of the pre-kernel hand-inlined
    // loop on the same workload: kernel 14.83 ms vs copy 15.33 ms at
    // 1 worker, 14.87 ms vs 14.98 ms at 4 workers (medians) — parity
    // within noise, well under the 5% abstraction-cost budget, so the
    // copy was deleted. fib(25) is ~243k spec tasks of ~60 ns each,
    // i.e. this measures almost pure scheduler-loop cost.
    let cfg = SchedulerConfig::paper(1);
    c.bench_function("engine/fib25/spec_kernel_1worker", |b| {
        b.iter(|| SpecEngine::run(cfg, FibSpec { n: 25 }).0)
    });
    let cfg4 = SchedulerConfig::paper(4);
    c.bench_function("engine/fib25/spec_kernel_4workers", |b| {
        b.iter(|| SpecEngine::run(cfg4, FibSpec { n: 25 }).0)
    });
}

fn bench_cps_worker_sweep(c: &mut Criterion) {
    // Thread-count sweep: on a single-core host this measures scheduling
    // interference, not speedup — the microsim owns the speedup curves.
    let mut g = c.benchmark_group("engine/fib18_workers");
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let cfg = SchedulerConfig::paper(w);
            b.iter(|| Engine::run(cfg, fib_task(18, Cont::ROOT)).0)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fib_serial,
    bench_fib_spec_engine,
    bench_fib_cps_engine,
    bench_kernel_cost,
    bench_cps_worker_sweep,
);
criterion_main!(benches);
