//! **§1's headline claim** — "for some applications a good scheduler
//! running on a network of workstations can reduce the interprocessor
//! communications to the point where the modest communication performance
//! does not degrade the overall application performance."
//!
//! The experiment: the same pfold run at P = 8 across interconnects
//! spanning four orders of magnitude of message cost — CM-5 class, ATM,
//! 1994 Ethernet, and a deliberately awful 10×-Ethernet — plus a
//! fine-grained fib for contrast. Because the locality-preserving
//! scheduler steals so rarely, the coarse-grain application's completion
//! time should barely move; the fine-grain one shows where the claim's
//! "for some applications" qualifier bites.
//!
//! A second axis probes the claim against link *quality* rather than link
//! *speed*: the same pfold on the threaded message-passing engine while
//! the fabric drops 0–20% of datagrams (recovered by retransmission). A
//! scheduler that barely communicates should barely notice packet loss.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin network_insensitivity [--chain N]
//! ```

use phish_apps::pfold::pfold_task;
use phish_apps::{FibSpec, PfoldSpec};
use phish_bench::{arg, fmt_duration, fmt_virtual_secs, median_time, Table};
use phish_core::{Cont, Engine, SchedulerConfig};
use phish_net::time::MICROSECOND;
use phish_net::LossyConfig;
use phish_sim::microsim::ScaleCost;
use phish_sim::{run_microsim, LinkModel, MicroSimConfig, Topology};

fn links() -> Vec<(&'static str, LinkModel)> {
    vec![
        ("CM-5 interconnect", LinkModel::cm5_interconnect()),
        ("ATM (1995)", LinkModel::atm_1995()),
        ("Ethernet (1994)", LinkModel::ethernet_1994()),
        (
            "10x worse Ethernet",
            LinkModel {
                overhead: 10_000 * MICROSECOND,
                latency: 5_000 * MICROSECOND,
                bandwidth_bps: 1_000_000 / 8,
            },
        ),
    ]
}

fn main() {
    let chain: usize = arg("chain", 14);
    let p = 8;
    println!(
        "§1 — does network quality matter? pfold({chain}) and fib(22) at \
         P = {p}, virtual time\n"
    );
    let t = Table::new(&[20, 14, 10, 14, 10]);
    t.row(&[
        "interconnect".into(),
        "pfold time".into(),
        "steals".into(),
        "fib time".into(),
        "steals".into(),
    ]);
    t.sep();
    let mut pfold_times = Vec::new();
    let mut fib_times = Vec::new();
    for (name, link) in links() {
        let cfg = MicroSimConfig {
            topology: Topology::flat(p, link),
            victim: phish_sim::MicroVictimPolicy::Uniform,
            seed: 7,
            sched_overhead: 200,
            msg_bytes: 64,
        };
        // Coarse: pfold at the paper's ~64µs grain.
        let (_, rp) = run_microsim(&cfg, ScaleCost::new(PfoldSpec::new(chain, chain), 200));
        // Fine: naive fib, ~1µs tasks.
        let (_, rf) = run_microsim(&cfg, ScaleCost::new(FibSpec { n: 22 }, 10));
        t.row(&[
            name.into(),
            fmt_virtual_secs(rp.completion_ns),
            format!("{}", rp.stats.tasks_stolen),
            fmt_virtual_secs(rf.completion_ns),
            format!("{}", rf.stats.tasks_stolen),
        ]);
        pfold_times.push(rp.completion_ns);
        fib_times.push(rf.completion_ns);
    }
    t.sep();
    let pfold_spread =
        *pfold_times.iter().max().unwrap() as f64 / *pfold_times.iter().min().unwrap() as f64;
    let fib_spread =
        *fib_times.iter().max().unwrap() as f64 / *fib_times.iter().min().unwrap() as f64;
    println!(
        "\npfold spread across 4 decades of message cost: {pfold_spread:.2}x; \
         fib spread: {fib_spread:.2}x."
    );
    println!(
        "expected shape: the coarse-grain application's completion time is \
         nearly flat from supercomputer interconnect to worse-than-1994 \
         Ethernet (steals are too rare to matter) — the §1 claim. The \
         fine-grain fib degrades visibly as messages get costly, which is \
         why the claim says \"for some applications\"."
    );

    loss_axis(chain, p);
}

/// The loss-rate axis: real threads, real message-protocol steals, and a
/// fabric that drops the configured fraction of datagrams on the wire
/// (recovered to exactly-once by ack/retransmission).
fn loss_axis(chain: usize, p: usize) {
    let depth = chain.min(6);
    println!(
        "\nloss axis — pfold({chain}) on the threaded message-passing \
         engine at P = {p}, wall clock, drop rate 0\u{2013}20%\n"
    );
    let t = Table::new(&[14, 12, 12, 10]);
    t.row(&[
        "drop rate".into(),
        "wall time".into(),
        "messages".into(),
        "steals".into(),
    ]);
    t.sep();
    let mut times = Vec::new();
    for pct in [0u32, 5, 10, 15, 20] {
        let mut cfg = SchedulerConfig::paper_distributed(p).with_seed(7);
        if pct > 0 {
            cfg = cfg.with_link_faults(LossyConfig::dropping(
                pct as f64 / 100.0,
                0x1055 + pct as u64,
            ));
        }
        let ((_, stats), wall) =
            median_time(3, || Engine::run(cfg, pfold_task(chain, depth, Cont::ROOT)));
        t.row(&[
            if pct == 0 {
                "0% (reliable)".into()
            } else {
                format!("{pct}%")
            },
            fmt_duration(wall),
            format!("{}", stats.messages_sent),
            format!("{}", stats.tasks_stolen),
        ]);
        times.push(wall);
    }
    t.sep();
    let spread =
        times.iter().max().unwrap().as_secs_f64() / times.iter().min().unwrap().as_secs_f64();
    println!("\npfold wall-time spread across 0\u{2013}20% datagram loss: {spread:.2}x.");
    println!(
        "expected shape: completion time stays nearly flat while the message \
         count grows with the drop rate (retransmissions are counted) — the \
         scheduler communicates so rarely that even a fifth of all datagrams \
         vanishing costs almost nothing end-to-end."
    );
}
