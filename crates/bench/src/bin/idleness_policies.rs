//! **§2 owner sovereignty** — idleness policies compared.
//!
//! "Some owners may decide that their machines are idle ... only when
//! nobody is logged in. Other owners may make their machines available so
//! long as the CPU load is below some threshold." (§2) The paper ships the
//! conservative policy ("a workstation is deemed idle only when no users
//! are logged in", §3); this experiment quantifies what that conservatism
//! costs when owners leave sessions logged in while away — the common
//! locked-screen workstation.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin idleness_policies
//! ```

use phish_bench::Table;
use phish_net::time::SECOND;
use phish_sim::{run_fleet, FleetConfig, IdlenessChoice, OwnerProfile, SimJobSpec};

fn main() {
    println!(
        "§2 — idleness policies on a 32-workstation fleet where owners \
         leave sessions logged in during a fraction of their away time\n"
    );
    let t = Table::new(&[14, 22, 14, 14, 12]);
    t.row(&[
        "lingering".into(),
        "policy".into(),
        "makespan".into(),
        "cpu-time".into(),
        "util %".into(),
    ]);
    t.sep();
    for lingering in [0.0f64, 0.3, 0.6] {
        for (label, choice) in [
            ("nobody-logged-in", IdlenessChoice::NobodyLoggedIn),
            ("load < 0.25", IdlenessChoice::LoadBelow(0.25)),
        ] {
            let jobs = vec![SimJobSpec::uniform("sweep", 30_000 * SECOND, 32)];
            let cfg = FleetConfig {
                workstations: 32,
                owner_profile: OwnerProfile::lingering_office_worker(lingering),
                seed: 77,
                jobs,
                shrink_detect_delay: 2 * SECOND,
                max_time: 72 * 3600 * SECOND,
                assign_policy: Default::default(),
                idleness: choice,
            };
            let r = run_fleet(&cfg);
            let makespan = r.completions[0]
                .map(|c| format!("{:.1} h", c as f64 / 3600e9))
                .unwrap_or_else(|| "unfinished".into());
            t.row(&[
                format!("{:.0}%", lingering * 100.0),
                label.into(),
                makespan,
                format!("{:.0} s", r.busy_time[0] as f64 / 1e9),
                format!("{:.1}", r.utilization() * 100.0),
            ]);
        }
        t.sep();
    }
    println!(
        "\nexpected shape: with no lingering sessions the policies tie. As \
         lingering grows, nobody-logged-in leaves those machines unharvested \
         and the job's makespan stretches, while the load-threshold policy \
         keeps harvesting — the quantified version of §2's \"other owners \
         may make their machines available so long as the CPU load is below \
         some threshold.\" The price of the liberal policy (not modelled \
         here) is owner goodwill — why the paper defaults to conservatism."
    );
}
