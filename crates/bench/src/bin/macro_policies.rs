//! **§6 future work** — "implementation of other macro-level scheduling
//! policies".
//!
//! The paper ships non-preemptive round-robin assignment and names policy
//! studies as future work. This experiment runs the same fleet and job mix
//! under four assignment policies and reports per-job completion times,
//! fairness (spread of completions), and utilization.
//!
//! Job mix: a wide job, a narrow (capacity-2) job, and a medium job — the
//! interesting case, because round-robin keeps *assigning* to jobs that
//! cannot use more machines (they refuse via the capacity check), while
//! least-loaded/most-demand place machines where they help.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin macro_policies
//! ```

use phish_bench::Table;
use phish_macro::AssignPolicy;
use phish_net::time::SECOND;
use phish_sim::{run_fleet, FleetConfig, OwnerProfile, SimJobSpec};

fn jobs() -> Vec<SimJobSpec> {
    // Aggregate demand (16 + 2 + 6 = 24) exceeds the 12-machine fleet, so
    // the assignment policy decides who waits.
    vec![
        SimJobSpec {
            name: "wide".into(),
            phases: vec![phish_sim::Phase {
                work: 3200 * SECOND,
                parallelism: 16,
            }],
            max_participants: Some(16),
        },
        SimJobSpec {
            name: "narrow".into(),
            phases: vec![phish_sim::Phase {
                work: 100 * SECOND,
                parallelism: 2,
            }],
            max_participants: Some(2),
        },
        SimJobSpec {
            name: "medium".into(),
            phases: vec![phish_sim::Phase {
                work: 900 * SECOND,
                parallelism: 6,
            }],
            max_participants: Some(6),
        },
    ]
}

fn main() {
    println!("§6 — JobQ assignment policies: 12 workstations, 24 machines of demand\n");
    let policies = [
        ("round-robin (paper)", AssignPolicy::RoundRobin),
        ("least-loaded", AssignPolicy::LeastLoaded),
        (
            "first-come-first-served",
            AssignPolicy::FirstComeFirstServed,
        ),
        ("most-demand", AssignPolicy::MostDemand),
    ];
    let t = Table::new(&[26, 10, 10, 10, 12, 10]);
    t.row(&[
        "policy".into(),
        "wide".into(),
        "narrow".into(),
        "medium".into(),
        "makespan".into(),
        "util %".into(),
    ]);
    t.sep();
    for (label, policy) in policies {
        let cfg = FleetConfig {
            assign_policy: policy,
            owner_profile: OwnerProfile::always_idle(),
            ..FleetConfig::dedicated(12, jobs())
        };
        let r = run_fleet(&cfg);
        let cell = |i: usize| {
            r.completions[i]
                .map(|c| format!("{:.0} s", c as f64 / 1e9))
                .unwrap_or_else(|| "—".into())
        };
        t.row(&[
            label.into(),
            cell(0),
            cell(1),
            cell(2),
            format!("{:.0} s", r.makespan as f64 / 1e9),
            format!("{:.1}", r.utilization() * 100.0),
        ]);
    }
    t.sep();
    println!(
        "\nexpected shape: fair policies (round-robin, least-loaded) give every \
         job machines from the start — short jobs finish early, overall \
         makespan and utilization are best. Greedy policies (FCFS, \
         most-demand) hand the whole fleet to the hungriest job: it finishes \
         sooner, everyone else waits, makespan and utilization suffer. \
         Round-robin matches least-loaded here with the simplest mechanism — \
         the implicit argument for the paper shipping it."
    );
}
