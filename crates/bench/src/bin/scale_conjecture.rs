//! **§3 scalability conjecture** — "we conjecture that Phish can be
//! scaled to over a thousand workstations."
//!
//! The argument: the PhishJobQ hears from each JobManager at most once per
//! 30 seconds, and the Clearinghouse from each worker once per 2 minutes
//! (plus registration), so central-server load grows only linearly in
//! machines with tiny constants. This binary sweeps fleet sizes through
//! the macro-level simulator and prints the measured central-server rates.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin scale_conjecture
//! ```

use phish_bench::Table;
use phish_net::time::SECOND;
use phish_sim::{run_fleet, FleetConfig, OwnerProfile, SimJobSpec};

fn main() {
    println!("§3 scalability conjecture — central-server load vs fleet size\n");
    let t = Table::new(&[8, 12, 14, 16, 14, 12]);
    t.row(&[
        "fleet".into(),
        "jobs done".into(),
        "JobQ msgs".into(),
        "JobQ msgs/s".into(),
        "CH msgs".into(),
        "util %".into(),
    ]);
    t.sep();
    for fleet in [10usize, 100, 1000] {
        // Work scales with the fleet so every size is kept busy.
        let work = (fleet as u64) * 60 * SECOND;
        let jobs = vec![
            SimJobSpec::uniform("a", work, fleet as u32),
            SimJobSpec::uniform("b", work / 2, (fleet / 2).max(1) as u32),
        ];
        let cfg = FleetConfig {
            workstations: fleet,
            owner_profile: OwnerProfile::mostly_idle(),
            seed: 7,
            jobs,
            shrink_detect_delay: 2 * SECOND,
            max_time: 24 * 3600 * SECOND,
            assign_policy: phish_macro::AssignPolicy::RoundRobin,
            idleness: phish_sim::IdlenessChoice::NobodyLoggedIn,
        };
        let r = run_fleet(&cfg);
        let done = r.completions.iter().filter(|c| c.is_some()).count();
        t.row(&[
            format!("{fleet}"),
            format!("{done}/2"),
            format!("{}", r.jobq_messages),
            format!("{:.3}", r.jobq_msgs_per_sec()),
            format!("{}", r.clearinghouse_messages),
            format!("{:.1}", r.utilization() * 100.0),
        ]);
    }
    t.sep();
    println!(
        "\npaper (§3): JobManager↔JobQ at most one exchange per 30 s per \
         machine; worker↔Clearinghouse one update per 2 min."
    );
    println!(
        "expected shape: JobQ message rate grows linearly in fleet size with a \
         tiny constant (~one exchange per hunting machine per 30 s): even at \
         1000 workstations it stays around a dozen messages per second — \
         orders of magnitude below what one server can answer, supporting \
         the conjecture. Utilization is bounded by how much of the fleet the \
         jobs' parallelism can absorb."
    );
}
