//! **Ablation** — task granularity: the axis behind Table 1.
//!
//! fib (one task per two-instruction call) pays ~6× serial slowdown in the
//! paper while ray (one task per scanline block) pays ~4%: the difference
//! is purely grain. This sweep shows the whole curve on one workload by
//! varying pfold's spawn depth — from 2 (a handful of huge tasks, no
//! parallelism to steal) to chain length (task per node, maximal
//! parallelism, maximal overhead).
//!
//! ```sh
//! cargo run --release -p phish-bench --bin grain_sweep [--chain N]
//! ```

use phish_apps::pfold::{pfold_serial, pfold_task};
use phish_bench::{arg, fmt_duration, median_time, Table};
use phish_core::{Cont, Engine, SchedulerConfig};

fn main() {
    let chain: usize = arg("chain", 13);
    println!("Grain ablation — pfold({chain}) spawn-depth sweep, 1 worker\n");
    let (_, serial) = median_time(3, || pfold_serial(chain));
    println!("best serial: {}\n", fmt_duration(serial));

    let t = Table::new(&[12, 12, 12, 14, 12, 12]);
    t.row(&[
        "depth".into(),
        "tasks".into(),
        "max in use".into(),
        "1-worker time".into(),
        "slowdown".into(),
        "avg grain".into(),
    ]);
    t.sep();
    let cfg = SchedulerConfig::paper(1);
    for depth in [2usize, 4, 6, 8, 10, chain] {
        let (stats, d) = median_time(3, || {
            let (_, stats) = Engine::run(cfg, pfold_task(chain, depth, Cont::ROOT));
            stats
        });
        t.row(&[
            if depth == chain {
                format!("{depth} (=n)")
            } else {
                format!("{depth}")
            },
            format!("{}", stats.tasks_executed),
            format!("{}", stats.max_tasks_in_use),
            fmt_duration(d),
            format!("{:.2}x", d.as_secs_f64() / serial.as_secs_f64()),
            fmt_duration(d / u32::try_from(stats.tasks_executed.max(1)).unwrap_or(u32::MAX)),
        ]);
    }
    t.sep();
    println!(
        "\nexpected shape: slowdown ~1.0 at shallow depths (ray-like grain) \
         rising toward fib-like multiples at task-per-node grain, while the \
         task count grows by orders of magnitude and the working set stays \
         O(depth). The paper's applications sit at the two ends of exactly \
         this curve (Table 1), and its pfold runs chose the fine-grain end \
         (Table 2) because network-of-workstations parallelism needs \
         stealable tasks more than it needs minimal overhead."
    );
}
