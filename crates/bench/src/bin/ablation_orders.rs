//! **Ablation** — why LIFO execution + FIFO (tail) stealing + random
//! victims.
//!
//! §2's locality argument: "executing tasks in LIFO order preserves memory
//! locality by keeping the process's working set small ... Stealing in FIFO
//! order has an intuitive payoff in preserving communication locality,
//! because ... the task at the tail of the ready list is often a task near
//! the base of the tree, and therefore, a task that will spawn many
//! descendent tasks."
//!
//! This ablation runs pfold through the real threaded engine under every
//! combination of execution order × steal end (and both victim policies),
//! reporting the working set (Table 2's "max tasks in use") and the steal
//! counts. The paper's configuration should show the smallest working set
//! and the fewest steals.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin ablation_orders [--chain N]
//! ```

use phish_apps::pfold::pfold_task;
use phish_bench::{arg, Table};
use phish_core::{Cont, Engine, ExecOrder, SchedulerConfig, StealEnd, VictimPolicy};

fn main() {
    let chain: usize = arg("chain", 13);
    let workers: usize = arg("workers", 4);
    let spawn_depth = chain;
    println!(
        "Ablation — scheduling orders on pfold({chain}), {workers} workers, \
         task per node\n"
    );
    let t = Table::new(&[26, 14, 10, 12, 12]);
    t.row(&[
        "configuration".into(),
        "max in use".into(),
        "steals".into(),
        "non-local".into(),
        "messages".into(),
    ]);
    t.sep();
    let mut baseline_in_use = 0;
    for exec in [ExecOrder::Lifo, ExecOrder::Fifo] {
        for steal in [StealEnd::Tail, StealEnd::Head] {
            let mut cfg = SchedulerConfig::paper(workers);
            cfg.exec_order = exec;
            cfg.steal_end = steal;
            let (_, stats) = Engine::run(cfg, pfold_task(chain, spawn_depth, Cont::ROOT));
            let label = format!(
                "{}-exec / {}-steal{}",
                match exec {
                    ExecOrder::Lifo => "LIFO",
                    ExecOrder::Fifo => "FIFO",
                },
                match steal {
                    StealEnd::Tail => "tail",
                    StealEnd::Head => "head",
                },
                if exec == ExecOrder::Lifo && steal == StealEnd::Tail {
                    "  [paper]"
                } else {
                    ""
                },
            );
            if exec == ExecOrder::Lifo && steal == StealEnd::Tail {
                baseline_in_use = stats.max_tasks_in_use;
            }
            t.row(&[
                label,
                format!("{}", stats.max_tasks_in_use),
                format!("{}", stats.tasks_stolen),
                format!("{}", stats.nonlocal_synchronizations),
                format!("{}", stats.messages_sent),
            ]);
        }
    }
    t.sep();
    println!("\nvictim policy (paper config otherwise):");
    let t2 = Table::new(&[26, 14, 10, 12, 12]);
    for victim in [VictimPolicy::UniformRandom, VictimPolicy::RoundRobin] {
        let mut cfg = SchedulerConfig::paper(workers);
        cfg.victim_policy = victim;
        let (_, stats) = Engine::run(cfg, pfold_task(chain, spawn_depth, Cont::ROOT));
        t2.row(&[
            format!("{victim:?}"),
            format!("{}", stats.max_tasks_in_use),
            format!("{}", stats.tasks_stolen),
            format!("{}", stats.nonlocal_synchronizations),
            format!("{}", stats.messages_sent),
        ]);
    }
    t2.sep();
    println!(
        "\nexpected shape: FIFO execution explodes the working set (the ready \
         list holds a whole tree level — breadth-first — instead of a \
         root-to-leaf spine); head-stealing takes leaves, so thieves return \
         begging almost immediately and steal counts jump. The paper's \
         LIFO/tail cell (max in use {baseline_in_use} here) should dominate \
         both columns."
    );
}
