//! **Figure 4** — Average execution time of pfold vs number of
//! participants.
//!
//! The paper plots the average per-participant wall-clock time of the
//! pfold application on SparcStation 1's for P = 1..32 (T₁ ≈ 660 s,
//! hyperbolic decay to ≈ 20 s at P = 32).
//!
//! The reproduction runs the *same computation* (every self-avoiding walk
//! of the chain is enumerated; the histogram is exact) through the
//! deterministic virtual-time microsimulator with 1994-Ethernet message
//! costs and per-task costs calibrated to the paper's ≈ 64 µs grain
//! (10.39 M tasks ≈ 730 CPU-seconds). Chain length 16 with one task per
//! node gives 10.2 M tasks — the paper's scale.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin fig4_pfold_time [--quick] [--chain N] [--csv PATH]
//! ```

use phish_apps::pfold::{count_walks, PfoldSpec};
use phish_bench::{arg, flag, fmt_virtual_secs, Table};
use phish_sim::microsim::ScaleCost;
use phish_sim::{run_microsim, MicroSimConfig};

fn csv_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let quick = flag("quick");
    let chain: usize = arg("chain", if quick { 13 } else { 16 });
    // One task per search-tree node, exactly like the paper's runs.
    let spawn_depth = chain;
    // Scale the ~300ns modelled interior-task cost up to the paper's
    // ~64µs SparcStation-1 grain.
    let cost_factor: u64 = arg("cost-factor", 200);

    println!(
        "Figure 4 — pfold average execution time vs participants \
         (chain = {chain}, task per node, virtual time)\n"
    );
    let ps = [1usize, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    let mut foldings = 0;
    for p in ps {
        let cfg = MicroSimConfig::ethernet(p);
        let spec = ScaleCost::new(PfoldSpec::new(chain, spawn_depth), cost_factor);
        let (hist, r) = run_microsim(&cfg, spec);
        foldings = count_walks(&hist);
        rows.push((p, r));
    }
    println!(
        "total foldings {} across {} tasks\n",
        foldings, rows[0].1.stats.tasks_executed
    );
    let t = Table::new(&[6, 14, 14, 12, 12]);
    t.row(&[
        "P".into(),
        "time".into(),
        "tasks".into(),
        "steals".into(),
        "efficiency".into(),
    ]);
    t.sep();
    let t1 = rows[0].1.completion_ns;
    for (p, r) in &rows {
        t.row(&[
            format!("{p}"),
            fmt_virtual_secs(r.completion_ns),
            format!("{}", r.stats.tasks_executed),
            format!("{}", r.stats.tasks_stolen),
            format!("{:.3}", r.efficiency()),
        ]);
    }
    t.sep();
    if let Some(path) = csv_path() {
        let mut csv = String::from("p,time_s,tasks,steals,efficiency\n");
        for (p, r) in &rows {
            csv.push_str(&format!(
                "{p},{:.6},{},{},{:.4}\n",
                r.completion_ns as f64 / 1e9,
                r.stats.tasks_executed,
                r.stats.tasks_stolen,
                r.efficiency()
            ));
        }
        std::fs::write(&path, csv).expect("write csv");
        println!("\nwrote {path}");
    }
    println!(
        "\npaper (Figure 4): T1 ~= 660 s on SparcStation 1's, decaying \
         hyperbolically to ~20 s at P = 32."
    );
    println!("expected shape:   time ~ T1/P (the curve of Figure 4).");
    println!("measured T1:      {}", fmt_virtual_secs(t1));
}
