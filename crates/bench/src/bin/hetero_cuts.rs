//! **§6 future work** — heterogeneous networks: "Our new scheduling
//! techniques attempt to preserve locality with respect to those network
//! cuts that have the least bandwidth."
//!
//! Two 8-workstation clusters with fast (ATM-class) links inside and a
//! slow (1994-Ethernet) link between them. The uniformly random victim
//! policy is cut-oblivious; the cluster-first policy tries `k` local
//! victims before each remote attempt. We sweep `k` and report traffic
//! across the thin cut and completion time.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin hetero_cuts [--chain N]
//! ```

use phish_apps::pfold::PfoldSpec;
use phish_bench::{arg, fmt_virtual_secs, Table};
use phish_sim::microsim::ScaleCost;
use phish_sim::{run_microsim, LinkModel, MicroSimConfig, MicroVictimPolicy, Topology};

fn main() {
    let chain: usize = arg("chain", 13);
    let cost_factor: u64 = arg("cost-factor", 200);
    println!(
        "§6 heterogeneity — 2 clusters × 8 workstations, fast intra / thin \
         inter link, pfold({chain})\n"
    );
    let topo = || Topology::clustered(2, 8, LinkModel::atm_1995(), LinkModel::ethernet_1994());
    let spec = || ScaleCost::new(PfoldSpec::new(chain, chain), cost_factor);

    let t = Table::new(&[24, 12, 12, 14, 14]);
    t.row(&[
        "victim policy".into(),
        "time".into(),
        "steals".into(),
        "cut steals".into(),
        "cut bytes".into(),
    ]);
    t.sep();
    let mut rows = Vec::new();
    let uniform = MicroSimConfig {
        topology: topo(),
        victim: MicroVictimPolicy::Uniform,
        seed: 9,
        sched_overhead: 200,
        msg_bytes: 64,
    };
    let (_, r) = run_microsim(&uniform, spec());
    rows.push(("uniform (paper §2)".to_string(), r));
    for k in [1u32, 2, 4, 8] {
        let cfg = MicroSimConfig {
            victim: MicroVictimPolicy::ClusterFirst { local_attempts: k },
            topology: topo(),
            seed: 9,
            sched_overhead: 200,
            msg_bytes: 64,
        };
        let (_, r) = run_microsim(&cfg, spec());
        rows.push((format!("cluster-first k={k}"), r));
    }
    for (label, r) in &rows {
        t.row(&[
            label.clone(),
            fmt_virtual_secs(r.completion_ns),
            format!("{}", r.stats.tasks_stolen),
            format!("{}", r.inter_cluster_steals),
            format!("{}", r.inter_cluster_bytes),
        ]);
    }
    t.sep();
    println!(
        "\nexpected shape: cluster-first stealing cuts inter-cluster steals \
         and bytes several-fold while completion time stays within a few \
         percent — locality is preserved with respect to the thin cut, the \
         §6 goal. (Total steals rise: local steals are cheap, so thieves \
         retry more; what matters is the traffic crossing the thin link.)"
    );
}
