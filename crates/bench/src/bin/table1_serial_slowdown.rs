//! **Table 1** — Serial slowdown.
//!
//! "The serial slowdown of an application is measured as the ratio of the
//! single-processor execution time of the parallel code to the execution
//! time of the best serial implementation of the same algorithm." (§4)
//!
//! Paper's numbers:
//!
//! |          | CM-5 (Strata) | SparcStation 10 (Phish) |
//! |----------|---------------|--------------------------|
//! | fib      | 4.44          | 5.90                     |
//! | nqueens  | 1.09          | 1.12                     |
//! | ray      | 1.00          | 1.04                     |
//!
//! Columns here: the *static-lean* runtime (SpecEngine — static processor
//! set, no continuation cells or mailboxes: our analogue of Strata on the
//! CM-5) and the full *dynamic* Phish runtime (the CPS engine with join
//! cells, mailboxes, and a dynamic processor set). Expect the orderings to
//! reproduce — fib ≫ nqueens > ray ≈ 1, and dynamic > static — but the
//! fib magnitudes to exceed 1994's: a modern CPU performs a plain recursive
//! call orders of magnitude faster than 1994 hardware, while per-task
//! scheduling (heap-allocated closures, locked deques) has not shrunk
//! proportionally. That widening CPU-vs-memory gap is the very trend the
//! paper cites (§2) as why locality matters.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin table1_serial_slowdown [--quick]
//! ```

use std::sync::Arc;

use phish_apps::pfold::DEFAULT_SPAWN_DEPTH as PFOLD_DEPTH;
use phish_apps::ray::{benchmark_scene, render_serial, render_task, RaySpec};
use phish_apps::{
    fib_serial, fib_task, nqueens_serial, nqueens_task, pfold_serial, pfold_task, FibSpec,
    NQueensSpec, PfoldSpec,
};
use phish_bench::{fmt_duration, median_time, Table};
use phish_core::{Cont, Engine, SchedulerConfig, SpecEngine};

fn main() {
    let quick = phish_bench::flag("quick");
    let reps = if quick { 1 } else { 3 };
    let fib_n: u64 = if quick { 24 } else { 28 };
    let nq_n: u32 = if quick { 9 } else { 11 };
    let ray_size: u32 = if quick { 64 } else { 160 };
    let pf_n: usize = if quick { 12 } else { 14 };

    println!("Table 1 — serial slowdown (1-worker parallel time / best-serial time)\n");
    let cfg = SchedulerConfig::paper(1);
    let t = Table::new(&[8, 12, 14, 12, 14, 12]);
    t.row(&[
        "app".into(),
        "serial".into(),
        "static-lean".into(),
        "slowdown".into(),
        "phish-dyn".into(),
        "slowdown".into(),
    ]);
    t.sep();

    // fib
    let (fv, fs) = median_time(reps, || fib_serial(fib_n));
    let (sv, ss) = median_time(reps, || SpecEngine::run(cfg, FibSpec { n: fib_n }).0);
    let (pv, ps) = median_time(reps, || Engine::run(cfg, fib_task(fib_n, Cont::ROOT)).0);
    assert_eq!(fv, sv);
    assert_eq!(fv, pv);
    t.row(&[
        format!("fib({fib_n})"),
        fmt_duration(fs),
        fmt_duration(ss),
        format!("{:.2}x", ss.as_secs_f64() / fs.as_secs_f64()),
        fmt_duration(ps),
        format!("{:.2}x", ps.as_secs_f64() / fs.as_secs_f64()),
    ]);

    // nqueens
    let (qv, qs) = median_time(reps, || nqueens_serial(nq_n));
    let (qsv, qss) = median_time(reps, || SpecEngine::run(cfg, NQueensSpec::new(nq_n, 3)).0);
    let (qpv, qps) = median_time(reps, || {
        Engine::run(cfg, nqueens_task(nq_n, 3, Cont::ROOT)).0
    });
    assert_eq!(qv, qsv);
    assert_eq!(qv, qpv);
    t.row(&[
        format!("nq({nq_n})"),
        fmt_duration(qs),
        fmt_duration(qss),
        format!("{:.2}x", qss.as_secs_f64() / qs.as_secs_f64()),
        fmt_duration(qps),
        format!("{:.2}x", qps.as_secs_f64() / qs.as_secs_f64()),
    ]);

    // pfold (not in Table 1, but the paper's flagship — included for
    // completeness at the same grain the paper ran it)
    let (hv, hs) = median_time(reps, || pfold_serial(pf_n));
    let (hsv, hss) = median_time(reps, || {
        SpecEngine::run(cfg, PfoldSpec::new(pf_n, PFOLD_DEPTH)).0
    });
    let (hpv, hps) = median_time(reps, || {
        Engine::run(cfg, pfold_task(pf_n, PFOLD_DEPTH, Cont::ROOT)).0
    });
    assert_eq!(hv, hsv);
    assert_eq!(hv, hpv);
    t.row(&[
        format!("pfold({pf_n})"),
        fmt_duration(hs),
        fmt_duration(hss),
        format!("{:.2}x", hss.as_secs_f64() / hs.as_secs_f64()),
        fmt_duration(hps),
        format!("{:.2}x", hps.as_secs_f64() / hs.as_secs_f64()),
    ]);

    // ray
    let (scene, cam) = benchmark_scene();
    let (rv, rs) = median_time(reps, || render_serial(&scene, &cam, ray_size, ray_size));
    let scene = Arc::new(scene);
    let spec = RaySpec {
        scene: Arc::clone(&scene),
        camera: cam,
        w: ray_size,
        h: ray_size,
        rows_per_band: 8,
        band: None,
    };
    let (rsv, rss) = median_time(reps, || {
        let (bands, _) = SpecEngine::run(cfg, spec.clone());
        phish_apps::ray::assemble(bands, ray_size, ray_size)
    });
    let (rpv, rps) = median_time(reps, || {
        Engine::run(
            cfg,
            render_task(Arc::clone(&scene), cam, ray_size, ray_size, 8, Cont::ROOT),
        )
        .0
        .pixels
    });
    assert_eq!(rv, rsv);
    assert_eq!(rv, rpv);
    t.row(&[
        format!("ray({ray_size})"),
        fmt_duration(rs),
        fmt_duration(rss),
        format!("{:.2}x", rss.as_secs_f64() / rs.as_secs_f64()),
        fmt_duration(rps),
        format!("{:.2}x", rps.as_secs_f64() / rs.as_secs_f64()),
    ]);

    t.sep();
    println!(
        "\npaper (Table 1):  fib 4.44 (CM-5/Strata) / 5.90 (Phish);  \
         nqueens 1.09 / 1.12;  ray 1.00 / 1.04"
    );
    println!(
        "expected shape:   fib >> nqueens > ray ~= 1, and the dynamic runtime \
         pays more than the static one.\n\
         fib's absolute ratio is larger than 1994's because a modern CPU's \
         plain call/return shrank far more than a heap-allocated task did."
    );
}
