//! **§2 space-sharing vs time-sharing** — the macro scheduler's motivating
//! comparison.
//!
//! "Empirical evidence [Tucker & Gupta] indicates that better throughput
//! may be achieved by space-sharing rather than time-sharing ... Also, with
//! space-sharing comes another possibility: suppose the available
//! parallelism in one of the jobs decreases. In this case, assigning some
//! processors to another job with excess available parallelism is better
//! than letting the processors sit idly." (§1–2)
//!
//! The scenario is the paper's own: 4 jobs sharing 32 processors, one of
//! which loses most of its parallelism partway through. Three strategies:
//! CM-5-style gang time-sharing (with context-switch cost), static
//! space-sharing (8+8+8+8, never reassigned), and Phish's adaptive
//! space-sharing.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin macro_sharing
//! ```

use phish_bench::Table;
use phish_sim::sharing::{GANG_QUANTUM, GANG_SWITCH_COST};
use phish_sim::{gang_timeshare, paper_scenario, space_share};

fn main() {
    println!("§2 — 4 jobs on 32 processors: gang time-sharing vs space-sharing\n");
    let jobs = paper_scenario();
    println!("jobs: wide-a (640 cpu-s, 32-way), wide-b (640 cpu-s, 32-way),");
    println!("      shrinking (320 cpu-s 32-way then 80 cpu-s 2-way), narrow (320 cpu-s, 8-way)\n");

    let strategies = [
        gang_timeshare(&jobs, 32, GANG_QUANTUM, GANG_SWITCH_COST),
        space_share(&jobs, 32, false),
        space_share(&jobs, 32, true),
    ];
    let t = Table::new(&[22, 12, 14, 12, 12]);
    t.row(&[
        "strategy".into(),
        "makespan".into(),
        "mean compl.".into(),
        "util %".into(),
        "ctx sw.".into(),
    ]);
    t.sep();
    for r in &strategies {
        t.row(&[
            r.strategy.to_string(),
            format!("{:.1} s", r.makespan as f64 / 1e9),
            format!("{:.1} s", r.mean_completion as f64 / 1e9),
            format!("{:.1}", r.utilization * 100.0),
            format!("{}", r.context_switches),
        ]);
    }
    t.sep();
    println!("\nper-job completion times (s):");
    let names = ["wide-a", "wide-b", "shrinking", "narrow"];
    let t2 = Table::new(&[22, 10, 10, 10, 10]);
    let mut hdr = vec!["strategy".to_string()];
    hdr.extend(names.iter().map(|n| n.to_string()));
    t2.row(&hdr);
    t2.sep();
    for r in &strategies {
        let mut row = vec![r.strategy.to_string()];
        row.extend(
            r.completions
                .iter()
                .map(|c| format!("{:.1}", *c as f64 / 1e9)),
        );
        t2.row(&row);
    }
    t2.sep();
    println!(
        "\nexpected shape: space-sharing beats gang time-sharing on \
         utilization and mean completion (context switches are pure loss); \
         adaptive space-sharing further beats static when the shrinking \
         job's processors are re-assigned instead of idling."
    );
}
