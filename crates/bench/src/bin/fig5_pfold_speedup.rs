//! **Figure 5** — Speedup of pfold vs number of participants.
//!
//! The paper computes `S_P = P · T₁ / Σᵢ T_P(i)` and shows near-perfect
//! linear speedup through P = 32 (with a visible droop at 32, attributed
//! to fixed startup overheads — especially Clearinghouse registration —
//! as the run gets short).
//!
//! The reproduction sweeps the same P values through the virtual-time
//! microsimulator (all participants start together, so Σ T_P(i) = P·T_P
//! and S_P = T₁/T_P) and additionally charges each participant a fixed
//! registration cost to reproduce the droop the paper explains.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin fig5_pfold_speedup [--quick] [--chain N] [--csv PATH]
//! ```

use phish_apps::pfold::PfoldSpec;
use phish_bench::{arg, flag, Table};
use phish_net::time::MILLISECOND;
use phish_sim::microsim::ScaleCost;
use phish_sim::{run_microsim, MicroSimConfig};

fn csv_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let quick = flag("quick");
    let chain: usize = arg("chain", if quick { 13 } else { 16 });
    let spawn_depth = chain;
    let cost_factor: u64 = arg("cost-factor", 200);
    // "some of the fixed overheads, especially registering with the
    // Clearinghouse, are becoming significant": a per-participant startup
    // charge, paid once, serial with the run.
    let registration_ns: u64 = arg("registration-ms", 500u64) * MILLISECOND;

    println!("Figure 5 — pfold speedup vs participants (chain = {chain}, virtual time)\n");
    let ps = [1usize, 2, 4, 8, 16, 32];
    let mut times = Vec::new();
    for p in ps {
        let cfg = MicroSimConfig::ethernet(p);
        let spec = ScaleCost::new(PfoldSpec::new(chain, spawn_depth), cost_factor);
        let (_, r) = run_microsim(&cfg, spec);
        // Registration happens before useful work; every participant pays
        // it and the job cannot finish before the last one has joined.
        times.push((p, r.completion_ns + registration_ns));
    }
    let t1 = times[0].1;
    let t = Table::new(&[6, 12, 12, 12]);
    t.row(&[
        "P".into(),
        "S_P".into(),
        "linear".into(),
        "efficiency".into(),
    ]);
    t.sep();
    for (p, tp) in &times {
        let s = t1 as f64 / *tp as f64;
        t.row(&[
            format!("{p}"),
            format!("{s:.2}"),
            format!("{p}.00"),
            format!("{:.3}", s / *p as f64),
        ]);
    }
    t.sep();
    if let Some(path) = csv_path() {
        let mut csv = String::from("p,speedup,efficiency\n");
        for (p, tp) in &times {
            let s = t1 as f64 / *tp as f64;
            csv.push_str(&format!("{p},{s:.4},{:.4}\n", s / *p as f64));
        }
        std::fs::write(&path, csv).expect("write csv");
        println!("\nwrote {path}");
    }
    println!(
        "\npaper (Figure 5): near-perfect linear speedup through 32 \
         participants, with a droop at 32 from fixed startup overheads."
    );
    println!(
        "expected shape:   S_P tracks the dashed linear reference and dips \
         slightly at P = 32."
    );
}
