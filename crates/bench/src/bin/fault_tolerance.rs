//! **§3 fault tolerance** — "Enough redundant state is maintained so that
//! lost work can be redone in the event of a machine crash" (and
//! implementation goal 3: applications run "for long periods of time with
//! almost no administrative effort").
//!
//! The paper gives no fault-tolerance table; this harness quantifies the
//! property it claims: pfold runs with 0, 1, 2, and 3 injected crashes;
//! every run must produce the bit-identical histogram, and the cost of
//! recovery is reported as redone work.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin fault_tolerance [--chain N]
//! ```

use phish_apps::pfold::{pfold_serial, PfoldSpec};
use phish_bench::{arg, Table};
use phish_ft::{CrashPlan, FtConfig, RecoveringEngine};

fn main() {
    let chain: usize = arg("chain", 13);
    let workers: usize = arg("workers", 4);
    let depth = 6;
    println!(
        "§3 fault tolerance — pfold({chain}) on {workers} workers with \
         injected crashes\n"
    );
    let expect = pfold_serial(chain);
    let cfg = FtConfig::fast(workers);

    // Baseline for the redo-overhead column.
    let (h0, clean) = RecoveringEngine::run(&cfg, PfoldSpec::new(chain, depth), &CrashPlan::none());
    assert_eq!(h0, expect);
    let base_tasks = clean.stats.tasks_executed;

    let plans: Vec<(&str, CrashPlan)> = vec![
        ("no crashes", CrashPlan::none()),
        ("1 crash (early)", CrashPlan::kill(1, 50)),
        (
            "2 crashes",
            CrashPlan {
                kill_after_tasks: vec![(1, 50), (2, base_tasks / workers as u64 / 2)],
            },
        ),
        (
            "3 crashes",
            CrashPlan {
                kill_after_tasks: vec![
                    (1, 50),
                    (2, base_tasks / workers as u64 / 2),
                    (3, base_tasks / workers as u64),
                ],
            },
        ),
    ];

    let t = Table::new(&[18, 10, 12, 12, 12, 12, 12]);
    t.row(&[
        "scenario".into(),
        "exact?".into(),
        "crashes".into(),
        "tasks".into(),
        "redone %".into(),
        "respawned".into(),
        "time ms".into(),
    ]);
    t.sep();
    for (label, plan) in &plans {
        let (hist, r) = RecoveringEngine::run(&cfg, PfoldSpec::new(chain, depth), plan);
        let exact = hist == expect;
        t.row(&[
            label.to_string(),
            if exact { "yes".into() } else { "NO".into() },
            format!("{}", r.crashes),
            format!("{}", r.stats.tasks_executed),
            format!(
                "{:.1}",
                (r.stats.tasks_executed as f64 / base_tasks as f64 - 1.0) * 100.0
            ),
            format!("{}", r.respawned_subtrees),
            format!("{:.1}", r.elapsed().as_secs_f64() * 1e3),
        ]);
        assert!(
            exact,
            "fault tolerance violated: wrong result under {label}"
        );
    }
    t.sep();
    println!(
        "\nexpected shape: every row exact; redone work grows with crash \
         count but stays a modest fraction — exactly the subtrees the dead \
         workers held, re-executed from their victims' ledgers."
    );
}
