//! **Table 2** — Message and scheduling statistics for pfold.
//!
//! The paper's numbers (4- and 8-participant executions):
//!
//! | statistic         | 4 participants | 8 participants |
//! |-------------------|----------------|----------------|
//! | Tasks executed    | 10,390,216     | 10,390,216     |
//! | Max tasks in use  | 59             | 59             |
//! | Tasks stolen      | 70             | 133            |
//! | Synchronizations  | 10,390,214     | 10,390,214     |
//! | Non-local synchs  | 55             | 122            |
//! | Messages sent     | 1,598          | 1,998          |
//! | Execution time    | 182 s          | 94 s           |
//!
//! This binary runs pfold through the real threaded CPS engine (join
//! cells, mailboxes, random tail-steals — the genuine runtime, not the
//! simulator) at 4 and 8 participants and prints the same seven rows.
//! Chain 16 at task-per-node grain executes 10.2M tasks, the paper's
//! scale; the default is chain 14 (≈1.5M tasks) to keep the run short —
//! pass `--chain 16` for the full-scale reproduction.
//!
//! Message totals here cover the worker-to-worker traffic the micro
//! scheduler causes (steal protocol + non-local synchs); the paper's
//! "Messages sent" also includes Clearinghouse registration/update
//! traffic, reported separately below.
//!
//! ```sh
//! cargo run --release -p phish-bench --bin table2_pfold_stats [--chain N]
//! ```

use phish_apps::pfold::{count_walks, pfold_task};
use phish_bench::{arg, Table};
use phish_core::{Cont, Engine, SchedulerConfig, StealProtocol};
use phish_macro::UPDATE_INTERVAL;

fn main() {
    let chain: usize = arg("chain", 14);
    let spawn_depth = chain; // task per node, like the paper's runs
    println!("Table 2 — pfold scheduling statistics (chain = {chain}, task per node)\n");

    let mut results = Vec::new();
    for p in [4usize, 8] {
        let mut cfg = SchedulerConfig::paper(p);
        // The real system steals by messages over the LAN.
        cfg.steal_protocol = StealProtocol::Message;
        let (hist, stats) = Engine::run(cfg, pfold_task(chain, spawn_depth, Cont::ROOT));
        results.push((p, count_walks(&hist), stats));
    }

    let t = Table::new(&[18, 16, 16]);
    t.row(&[
        "statistic".into(),
        "4 participants".into(),
        "8 participants".into(),
    ]);
    t.sep();
    let s4 = &results[0].2;
    let s8 = &results[1].2;
    let rows: Vec<(&str, u64, u64)> = vec![
        ("Tasks executed", s4.tasks_executed, s8.tasks_executed),
        ("Max tasks in use", s4.max_tasks_in_use, s8.max_tasks_in_use),
        ("Tasks stolen", s4.tasks_stolen, s8.tasks_stolen),
        ("Synchronizations", s4.synchronizations, s8.synchronizations),
        (
            "Non-local synchs",
            s4.nonlocal_synchronizations,
            s8.nonlocal_synchronizations,
        ),
        ("Messages sent", s4.messages_sent, s8.messages_sent),
    ];
    for (name, a, b) in rows {
        t.row(&[name.into(), format!("{a}"), format!("{b}")]);
    }
    t.row(&[
        "Execution time".into(),
        format!("{:.1} s", s4.elapsed_ns as f64 / 1e9),
        format!("{:.1} s", s8.elapsed_ns as f64 / 1e9),
    ]);
    t.sep();
    assert_eq!(results[0].1, results[1].1, "histograms must agree");
    println!("\ntotal foldings: {}", results[0].1);
    // Clearinghouse traffic for a run of this length (the remainder of the
    // paper's "Messages sent" row): 2 registration messages per
    // participant plus one update per participant per 2 minutes.
    for (p, _, s) in &results {
        let updates = (s.elapsed_ns / UPDATE_INTERVAL) * (*p as u64);
        println!(
            "clearinghouse messages at P={p}: {} (register/unregister) + {updates} (updates)",
            2 * p
        );
    }
    println!(
        "\npaper (Table 2): 10,390,216 tasks; 59 max in use; 70/133 stolen; \
         10,390,214 synchs; 55/122 non-local; 1,598/1,998 messages; 182/94 s."
    );
    println!(
        "expected shape:  synchs ~ tasks - O(1); max-in-use tens, independent \
         of P and of task count; steals and non-local synchs a few tens to \
         hundreds (growing with P, not with tasks); messages ~ 2-3x steals.\n\
         note: this host runs all participants on one core, so execution time \
         does not drop with P here — the time scaling lives in Figures 4/5."
    );
}
