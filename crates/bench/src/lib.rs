//! Shared harness utilities for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index); this crate holds the common
//! timing and table-formatting helpers so the binaries stay readable.

use std::time::{Duration, Instant};

/// Times a closure once.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Runs `f` once untimed (cache/branch-predictor warmup), then `n` timed
/// times, returning the median duration (with the last run's value).
/// Medians plus warmup resist the scheduling noise of a shared host.
pub fn median_time<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(n >= 1);
    let _ = f(); // warmup
    let mut times = Vec::with_capacity(n);
    let mut last = None;
    for _ in 0..n {
        let (v, d) = time(&mut f);
        times.push(d);
        last = Some(v);
    }
    times.sort();
    (last.expect("n >= 1"), times[n / 2])
}

/// A simple fixed-width table printer for experiment output.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// A table with the given column widths.
    pub fn new(widths: &[usize]) -> Self {
        Self {
            widths: widths.to_vec(),
        }
    }

    /// Prints a row, right-aligning all but the first column.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("  {cell:>w$}"));
            }
        }
        println!("{}", line.trim_end());
    }

    /// Prints a separator sized to the full table width.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
        println!("{}", "-".repeat(total));
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Formats virtual nanoseconds in seconds.
pub fn fmt_virtual_secs(ns: u64) -> String {
    format!("{:.2} s", ns as f64 / 1e9)
}

/// Parses `--key value` style arguments with a default.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == format!("--{name}") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// True when `--flag` is present.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures() {
        let (v, d) = time(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(5));
    }

    #[test]
    fn median_is_robust() {
        let mut i = 0;
        let (_, d) = median_time(5, || {
            i += 1;
            std::thread::sleep(Duration::from_millis(if i == 3 { 30 } else { 2 }));
        });
        assert!(
            d < Duration::from_millis(25),
            "median must ignore the spike"
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.5 ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.50 s");
        assert_eq!(fmt_virtual_secs(1_500_000_000), "1.50 s");
    }
}
