//! Virtual-time simulation of the micro-level scheduler.
//!
//! Executes a real [`SpecTask`] tree (the actual application logic runs;
//! results are exact) under the paper's scheduling discipline — local LIFO
//! execution, random-victim FIFO steals — but on a *virtual* clock whose
//! task and message costs come from calibrated models. This is how the
//! reproduction regenerates Figure 4 (execution time vs P) and Figure 5
//! (speedup vs P) up to 32+ participants on any host, and how the §6
//! heterogeneous-network experiment measures traffic across thin cuts.
//!
//! The simulator is the kernel's virtual-clock substrate: it is event-driven
//! rather than loop-driven, so instead of running
//! [`SchedulerCore::run`](phish_core::SchedulerCore::run) it drives the
//! kernel's per-worker [`KernelCtl`] primitives from its event handlers —
//! victim choice ([`KernelCtl::choose_victim`] over a substrate-filtered
//! candidate set, which is how [`MicroVictimPolicy::ClusterFirst`]
//! composes with the kernel's uniform draw), spec stepping
//! ([`SpecWorkload`] through a [`SpecSink`]), and all statistics
//! accounting. Each simulated worker owns a decorrelated RNG stream seeded
//! exactly like the threaded engines' workers.
//!
//! All inter-worker traffic rides a [`VirtualFabric`] — the same fabric
//! abstraction the threaded engines use, instantiated over virtual time.
//! A steal is a real message exchange: the thief's `StealRequest` travels
//! one way, the victim pops its deque on arrival and answers with a
//! `StealGrant` (carrying the task) or a `StealDeny`, and a granted thief
//! immediately charges the eventual result-return message, approximating
//! the non-local synchronization traffic of Table 2. Per-worker message
//! counts are read back from the fabric's counters, never hand-tallied.
//!
//! Model notes (documented deviations, all second-order for the measured
//! curves): the victim answers a steal request instantly on arrival (its
//! own busy time is not charged), and the result-return message is charged
//! at grant time rather than at stolen-subtree completion.

use std::collections::VecDeque;

use phish_core::kernel::{KernelCtl, SpecSink, SpecWorkload, Workload};
use phish_core::{JobStats, SpecStep, SpecTask, VictimPolicy};
use phish_net::time::Nanos;
use phish_net::{NodeId, VirtualFabric};

use crate::events::EventQueue;
use crate::netmodel::Topology;

/// Victim selection for the simulated thieves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroVictimPolicy {
    /// Uniformly random over all other participants (the paper's choice).
    Uniform,
    /// Cut-aware (§6 future work): try `local_attempts` random victims in
    /// the thief's own cluster before each random remote attempt.
    ClusterFirst {
        /// Local attempts per remote attempt.
        local_attempts: u32,
    },
}

/// Configuration of a microsim run.
#[derive(Debug, Clone)]
pub struct MicroSimConfig {
    /// Worker count and link costs.
    pub topology: Topology,
    /// Victim policy.
    pub victim: MicroVictimPolicy,
    /// RNG seed.
    pub seed: u64,
    /// Fixed scheduling overhead added to every task's virtual cost
    /// (deque operations, closure packaging — the Table 1 overhead).
    pub sched_overhead: Nanos,
    /// Size of a steal request/reply/result message.
    pub msg_bytes: usize,
}

impl MicroSimConfig {
    /// Paper-like defaults over a flat Ethernet of `workers` nodes.
    pub fn ethernet(workers: usize) -> Self {
        Self {
            topology: Topology::flat(workers, crate::netmodel::LinkModel::ethernet_1994()),
            victim: MicroVictimPolicy::Uniform,
            seed: 0x5EED,
            sched_overhead: 200,
            msg_bytes: 64,
        }
    }
}

/// Measurements from one microsim run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MicroReport {
    /// Virtual completion time (all participants start at 0).
    pub completion_ns: Nanos,
    /// Unified scheduler statistics in virtual time: tasks executed,
    /// steals (successful / failed), messages, spawns, and per-worker
    /// busy time all live here, counted by the same kernel code the
    /// threaded engines use. `elapsed_ns` equals `completion_ns`.
    pub stats: JobStats,
    /// Steals that crossed a cluster boundary.
    pub inter_cluster_steals: u64,
    /// Bytes carried across cluster boundaries.
    pub inter_cluster_bytes: u64,
}

impl MicroReport {
    /// Aggregate busy fraction: Σ busy / (P · completion).
    pub fn efficiency(&self) -> f64 {
        if self.completion_ns == 0 || self.stats.per_worker.is_empty() {
            return 0.0;
        }
        let busy: u128 = self
            .stats
            .per_worker
            .iter()
            .map(|w| w.busy_ns as u128)
            .sum();
        busy as f64 / (self.completion_ns as f64 * self.stats.per_worker.len() as f64)
    }
}

/// Wraps a spec, multiplying its virtual cost — the calibration knob that
/// matches a small test tree to the paper's workload scale (their pfold
/// runs took hundreds of seconds; a test tree evaluates in milliseconds of
/// virtual time, which would make steal round-trips look enormous).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleCost<S> {
    /// The wrapped spec.
    pub inner: S,
    /// Virtual-cost multiplier.
    pub factor: u64,
}

impl<S: SpecTask> ScaleCost<S> {
    /// Scales `inner`'s virtual cost by `factor`.
    pub fn new(inner: S, factor: u64) -> Self {
        Self { inner, factor }
    }
}

impl<S: SpecTask> SpecTask for ScaleCost<S> {
    type Output = S::Output;

    fn step(self) -> SpecStep<Self> {
        let factor = self.factor;
        match self.inner.step() {
            SpecStep::Leaf(out) => SpecStep::Leaf(out),
            SpecStep::Expand { children, partial } => SpecStep::Expand {
                children: children
                    .into_iter()
                    .map(|inner| ScaleCost { inner, factor })
                    .collect(),
                partial,
            },
        }
    }

    fn identity() -> S::Output {
        S::identity()
    }

    fn merge(a: S::Output, b: S::Output) -> S::Output {
        S::merge(a, b)
    }

    fn virtual_cost(&self) -> Nanos {
        self.inner.virtual_cost().saturating_mul(self.factor)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Worker finishes its current task.
    Finish { worker: usize },
    /// One or more fabric messages come due for delivery.
    NetDeliver,
}

/// The microsim's wire protocol, carried by the [`VirtualFabric`].
#[derive(Debug)]
enum MicroMsg<S> {
    /// A thief asks a victim for its oldest task.
    StealRequest,
    /// The victim hands over a task (FIFO end of its deque).
    StealGrant { spec: S },
    /// The victim's deque was empty.
    StealDeny,
    /// Result of a stolen subtree returning home (accounting only).
    Result,
}

struct WorkerState<S> {
    deque: VecDeque<S>,
    busy: bool,
    /// Current task, stepped at completion time.
    current: Option<S>,
    /// Consecutive failed local attempts (for ClusterFirst).
    local_failures: u32,
    /// Kernel control block: victim RNG stream and statistics.
    ctl: KernelCtl,
}

/// Routes one stepped spec's effects: results merge into the job
/// accumulator, children become ready on the finishing worker's deque
/// (outstanding-counted first), completion decrements the counter.
struct MicroSink<'a, S: SpecTask> {
    acc: &'a mut S::Output,
    outstanding: &'a mut u64,
    worker: &'a mut WorkerState<S>,
}

impl<S: SpecTask> SpecSink<S> for MicroSink<'_, S> {
    fn merge(&mut self, out: S::Output) {
        let prev = std::mem::replace(self.acc, S::identity());
        *self.acc = S::merge(prev, out);
    }

    fn spawn(&mut self, children: Vec<S>) {
        self.worker.ctl.note_spawn(children.len() as u64);
        *self.outstanding += children.len() as u64;
        self.worker.deque.extend(children);
    }

    fn finished(&mut self) {
        *self.outstanding -= 1;
    }
}

/// Runs the spec tree under the virtual-time scheduler. Returns the exact
/// result (the application logic really runs) and the measurements.
pub fn run_microsim<S: SpecTask>(cfg: &MicroSimConfig, root: S) -> (S::Output, MicroReport) {
    let p = cfg.topology.workers();
    assert!(p >= 1, "need at least one worker");
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut net: VirtualFabric<MicroMsg<S>> = VirtualFabric::new(p);
    let mut workers: Vec<WorkerState<S>> = (0..p)
        .map(|w| WorkerState {
            deque: VecDeque::new(),
            busy: false,
            current: None,
            local_failures: 0,
            ctl: KernelCtl::new(w, p, VictimPolicy::UniformRandom, cfg.seed),
        })
        .collect();
    let mut acc = S::identity();
    let mut outstanding: u64 = 1;
    let mut completion_ns: Nanos = 0;
    let mut inter_cluster_steals: u64 = 0;
    let mut inter_cluster_bytes: u64 = 0;

    // Seed: root on worker 0; everyone else immediately turns thief.
    workers[0].deque.push_back(root);
    for w in 0..p {
        start_or_steal(w, &mut workers, &mut q, &mut net, cfg);
    }

    while let Some((now, ev)) = q.pop() {
        if outstanding == 0 {
            break;
        }
        match ev {
            Ev::Finish { worker } => {
                let spec = workers[worker]
                    .current
                    .take()
                    .expect("finish without a current task");
                workers[worker].busy = false;
                workers[worker].ctl.note_exec();
                let mut sink = MicroSink {
                    acc: &mut acc,
                    outstanding: &mut outstanding,
                    worker: &mut workers[worker],
                };
                SpecWorkload::execute(spec, &mut sink);
                if outstanding == 0 {
                    completion_ns = now;
                    break;
                }
                start_or_steal(worker, &mut workers, &mut q, &mut net, cfg);
            }
            Ev::NetDeliver => {
                for env in net.deliver_due(now) {
                    handle_delivery(
                        env,
                        &mut workers,
                        &mut q,
                        &mut net,
                        cfg,
                        &mut inter_cluster_steals,
                        &mut inter_cluster_bytes,
                    );
                }
            }
        }
    }
    if completion_ns == 0 {
        completion_ns = q.now();
    }
    assert_eq!(outstanding, 0, "simulation drained without finishing");
    // Satellite rule: message counts come from the fabric, nowhere else.
    for (w, ws) in workers.iter_mut().enumerate() {
        ws.ctl.stats.messages_sent = net.messages_sent_by(w);
    }
    let per_worker = workers.iter().map(|w| w.ctl.stats).collect();
    let report = MicroReport {
        completion_ns,
        stats: JobStats::from_workers(per_worker, completion_ns),
        inter_cluster_steals,
        inter_cluster_bytes,
    };
    (acc, report)
}

fn start_or_steal<S: SpecTask>(
    worker: usize,
    workers: &mut [WorkerState<S>],
    q: &mut EventQueue<Ev>,
    net: &mut VirtualFabric<MicroMsg<S>>,
    cfg: &MicroSimConfig,
) {
    if workers[worker].deque.is_empty() {
        schedule_steal(worker, workers, q, net, cfg);
    } else {
        start_task(worker, workers, q, cfg);
    }
}

/// Puts one protocol message on the fabric and books its delivery event.
fn send_msg<S: SpecTask>(
    q: &mut EventQueue<Ev>,
    net: &mut VirtualFabric<MicroMsg<S>>,
    cfg: &MicroSimConfig,
    src: usize,
    dst: usize,
    body: MicroMsg<S>,
) {
    let latency = cfg.topology.link(src, dst).transfer_time(cfg.msg_bytes);
    net.send_sized(
        q.now(),
        latency,
        NodeId(src as u32),
        NodeId(dst as u32),
        body,
        cfg.msg_bytes,
    );
    q.schedule_in(latency, Ev::NetDeliver);
}

/// Delivers one fabric message: victims answer steal requests, thieves act
/// on grants and denials.
#[allow(clippy::too_many_arguments)]
fn handle_delivery<S: SpecTask>(
    env: phish_net::Envelope<MicroMsg<S>>,
    workers: &mut [WorkerState<S>],
    q: &mut EventQueue<Ev>,
    net: &mut VirtualFabric<MicroMsg<S>>,
    cfg: &MicroSimConfig,
    inter_cluster_steals: &mut u64,
    inter_cluster_bytes: &mut u64,
) {
    let (src, dst) = (env.src.index(), env.dst.index());
    match env.body {
        MicroMsg::StealRequest => {
            // FIFO steal: oldest task, front of the victim's deque. The
            // victim answers on arrival; its reply rides the same link
            // back, completing the thief-observed round trip.
            let reply = match workers[dst].deque.pop_front() {
                Some(spec) => MicroMsg::StealGrant { spec },
                None => MicroMsg::StealDeny,
            };
            send_msg(q, net, cfg, dst, src, reply);
        }
        MicroMsg::StealGrant { spec } => {
            let (thief, victim) = (dst, src);
            debug_assert!(!workers[thief].busy, "grant delivered to a busy thief");
            workers[thief].ctl.note_steal_success(victim);
            workers[thief].local_failures = 0;
            if !cfg.topology.same_cluster(thief, victim) {
                *inter_cluster_steals += 1;
                // Request + reply-with-task + eventual result return.
                *inter_cluster_bytes += 3 * cfg.msg_bytes as u64;
            }
            // Result-return message charged up front (bookkeeping only;
            // virtual time charges land in the RTT already paid).
            send_msg(q, net, cfg, thief, victim, MicroMsg::Result);
            workers[thief].deque.push_back(spec);
            start_task(thief, workers, q, cfg);
        }
        MicroMsg::StealDeny => {
            let (thief, victim) = (dst, src);
            workers[thief].ctl.note_steal_fail(victim);
            if cfg.topology.same_cluster(thief, victim) {
                workers[thief].local_failures += 1;
            }
            schedule_steal(thief, workers, q, net, cfg);
        }
        MicroMsg::Result => {
            // The stolen subtree's result arriving home: traffic already
            // counted at send time, nothing to schedule.
        }
    }
}

fn start_task<S: SpecTask>(
    worker: usize,
    workers: &mut [WorkerState<S>],
    q: &mut EventQueue<Ev>,
    cfg: &MicroSimConfig,
) {
    // LIFO execution: newest task, back of the deque.
    let spec = workers[worker]
        .deque
        .pop_back()
        .expect("start_task on empty deque");
    let cost = spec.virtual_cost() + cfg.sched_overhead;
    workers[worker].current = Some(spec);
    workers[worker].busy = true;
    workers[worker].ctl.stats.busy_ns += cost;
    q.schedule_in(cost, Ev::Finish { worker });
}

fn schedule_steal<S: SpecTask>(
    thief: usize,
    workers: &mut [WorkerState<S>],
    q: &mut EventQueue<Ev>,
    net: &mut VirtualFabric<MicroMsg<S>>,
    cfg: &MicroSimConfig,
) {
    let p = cfg.topology.workers();
    if p <= 1 {
        return; // nobody to steal from; waiting for own work (or the end)
    }
    let candidates = victim_candidates(thief, workers[thief].local_failures, cfg);
    let victim = workers[thief]
        .ctl
        .choose_victim(&candidates)
        .expect("p > 1 guarantees candidates");
    send_msg(q, net, cfg, thief, victim, MicroMsg::StealRequest);
}

/// The substrate side of victim selection: which workers are eligible.
/// The kernel's uniform draw over this set implements both policies —
/// `Uniform` offers every other worker; `ClusterFirst` narrows to the
/// thief's own cluster until its local attempts are exhausted.
fn victim_candidates(thief: usize, local_failures: u32, cfg: &MicroSimConfig) -> Vec<usize> {
    let p = cfg.topology.workers();
    let all_others = || (0..p).filter(|w| *w != thief).collect::<Vec<_>>();
    match cfg.victim {
        MicroVictimPolicy::Uniform => all_others(),
        MicroVictimPolicy::ClusterFirst { local_attempts } => {
            let my_cluster = cfg.topology.cluster_of[thief];
            let locals: Vec<usize> = (0..p)
                .filter(|w| *w != thief && cfg.topology.cluster_of[*w] == my_cluster)
                .collect();
            if locals.is_empty() || local_failures >= local_attempts {
                all_others()
            } else {
                locals
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::LinkModel;
    use phish_core::run_serial;

    /// Binary range-sum spec with a fixed virtual cost per task.
    #[derive(Debug, Clone)]
    struct CostedSum {
        lo: u64,
        hi: u64,
        cost: Nanos,
    }

    impl SpecTask for CostedSum {
        type Output = u64;
        fn step(self) -> SpecStep<Self> {
            if self.hi - self.lo <= 8 {
                SpecStep::Leaf((self.lo..=self.hi).sum())
            } else {
                let mid = (self.lo + self.hi) / 2;
                SpecStep::Expand {
                    children: vec![
                        CostedSum {
                            lo: self.lo,
                            hi: mid,
                            cost: self.cost,
                        },
                        CostedSum {
                            lo: mid + 1,
                            hi: self.hi,
                            cost: self.cost,
                        },
                    ],
                    partial: 0,
                }
            }
        }
        fn identity() -> u64 {
            0
        }
        fn merge(a: u64, b: u64) -> u64 {
            a + b
        }
        fn virtual_cost(&self) -> Nanos {
            self.cost
        }
    }

    fn root(cost: Nanos) -> CostedSum {
        CostedSum {
            lo: 1,
            hi: 100_000,
            cost,
        }
    }

    #[test]
    fn result_is_exact_at_any_p() {
        let expect = run_serial(root(1000));
        for p in [1, 2, 7, 32] {
            let cfg = MicroSimConfig::ethernet(p);
            let (v, _) = run_microsim(&cfg, root(1000));
            assert_eq!(v, expect, "P = {p}");
        }
    }

    #[test]
    fn virtual_time_shows_speedup() {
        // Coarse tasks on a LAN: near-linear speedup, as in Figure 5.
        let cost = 100_000; // 100µs tasks
        let t1 = run_microsim(&MicroSimConfig::ethernet(1), root(cost))
            .1
            .completion_ns;
        let t8 = run_microsim(&MicroSimConfig::ethernet(8), root(cost))
            .1
            .completion_ns;
        let s8 = t1 as f64 / t8 as f64;
        assert!(s8 > 6.0, "8-way speedup only {s8:.2}");
        let t32 = run_microsim(&MicroSimConfig::ethernet(32), root(cost))
            .1
            .completion_ns;
        let s32 = t1 as f64 / t32 as f64;
        assert!(s32 > 20.0, "32-way speedup only {s32:.2}");
    }

    #[test]
    fn steals_stay_rare_relative_to_tasks() {
        let cfg = MicroSimConfig::ethernet(8);
        let (_, r) = run_microsim(&cfg, root(100_000));
        assert!(r.stats.tasks_executed > 10_000);
        assert!(
            r.stats.tasks_stolen * 20 < r.stats.tasks_executed,
            "steals {} vs tasks {}",
            r.stats.tasks_stolen,
            r.stats.tasks_executed
        );
    }

    #[test]
    fn single_worker_never_steals() {
        let cfg = MicroSimConfig::ethernet(1);
        let (_, r) = run_microsim(&cfg, root(1000));
        assert_eq!(r.stats.tasks_stolen, 0);
        assert_eq!(r.stats.failed_steal_attempts, 0);
        assert_eq!(r.stats.messages_sent, 0);
        assert_eq!(r.stats.tasks_executed, r.stats.per_worker[0].tasks_executed);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MicroSimConfig::ethernet(4);
        let (_, a) = run_microsim(&cfg, root(10_000));
        let (_, b) = run_microsim(&cfg, root(10_000));
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_first_reduces_cut_traffic() {
        let topo = || Topology::clustered(2, 4, LinkModel::atm_1995(), LinkModel::ethernet_1994());
        // Individual runs see only a few dozen crossings, so compare the
        // policies across a handful of seeds rather than one noisy draw.
        let (mut cut_uniform, mut cut_biased) = (0u64, 0u64);
        for seed in 1..=5 {
            let uniform = MicroSimConfig {
                topology: topo(),
                victim: MicroVictimPolicy::Uniform,
                seed,
                sched_overhead: 200,
                msg_bytes: 64,
            };
            let biased = MicroSimConfig {
                topology: topo(),
                victim: MicroVictimPolicy::ClusterFirst { local_attempts: 4 },
                seed,
                sched_overhead: 200,
                msg_bytes: 64,
            };
            cut_uniform += run_microsim(&uniform, root(50_000)).1.inter_cluster_steals;
            cut_biased += run_microsim(&biased, root(50_000)).1.inter_cluster_steals;
        }
        assert!(
            cut_biased < cut_uniform,
            "biased {cut_biased} vs uniform {cut_uniform}"
        );
    }

    #[test]
    fn efficiency_between_zero_and_one() {
        let cfg = MicroSimConfig::ethernet(4);
        let (_, r) = run_microsim(&cfg, root(50_000));
        let e = r.efficiency();
        assert!(e > 0.5 && e <= 1.0, "efficiency {e}");
    }
}
