//! Virtual-time simulation of the micro-level scheduler.
//!
//! Executes a real [`SpecTask`] tree (the actual application logic runs;
//! results are exact) under the paper's scheduling discipline — local LIFO
//! execution, random-victim FIFO steals — but on a *virtual* clock whose
//! task and message costs come from calibrated models. This is how the
//! reproduction regenerates Figure 4 (execution time vs P) and Figure 5
//! (speedup vs P) up to 32+ participants on any host, and how the §6
//! heterogeneous-network experiment measures traffic across thin cuts.
//!
//! Model notes (documented deviations, all second-order for the measured
//! curves): a steal attempt resolves atomically at the thief after one
//! round trip — the victim-side pop is not separately timed; task results
//! are charged one message per stolen subtree completion, approximating the
//! non-local synchronization traffic of Table 2.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use phish_core::{SpecStep, SpecTask};
use phish_net::time::Nanos;

use crate::events::EventQueue;
use crate::netmodel::Topology;

/// Victim selection for the simulated thieves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroVictimPolicy {
    /// Uniformly random over all other participants (the paper's choice).
    Uniform,
    /// Cut-aware (§6 future work): try `local_attempts` random victims in
    /// the thief's own cluster before each random remote attempt.
    ClusterFirst {
        /// Local attempts per remote attempt.
        local_attempts: u32,
    },
}

/// Configuration of a microsim run.
#[derive(Debug, Clone)]
pub struct MicroSimConfig {
    /// Worker count and link costs.
    pub topology: Topology,
    /// Victim policy.
    pub victim: MicroVictimPolicy,
    /// RNG seed.
    pub seed: u64,
    /// Fixed scheduling overhead added to every task's virtual cost
    /// (deque operations, closure packaging — the Table 1 overhead).
    pub sched_overhead: Nanos,
    /// Size of a steal request/reply/result message.
    pub msg_bytes: usize,
}

impl MicroSimConfig {
    /// Paper-like defaults over a flat Ethernet of `workers` nodes.
    pub fn ethernet(workers: usize) -> Self {
        Self {
            topology: Topology::flat(workers, crate::netmodel::LinkModel::ethernet_1994()),
            victim: MicroVictimPolicy::Uniform,
            seed: 0x5EED,
            sched_overhead: 200,
            msg_bytes: 64,
        }
    }
}

/// Measurements from one microsim run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MicroReport {
    /// Virtual completion time (all participants start at 0).
    pub completion_ns: Nanos,
    /// Virtual busy time per worker.
    pub per_worker_busy: Vec<Nanos>,
    /// Tasks executed per worker.
    pub per_worker_tasks: Vec<u64>,
    /// Total tasks executed.
    pub tasks_executed: u64,
    /// Successful steals.
    pub steals: u64,
    /// Steals that crossed a cluster boundary.
    pub inter_cluster_steals: u64,
    /// Failed steal attempts.
    pub failed_attempts: u64,
    /// Total messages (steal requests + replies + result returns).
    pub messages: u64,
    /// Bytes carried across cluster boundaries.
    pub inter_cluster_bytes: u64,
}

impl MicroReport {
    /// Aggregate busy fraction: Σ busy / (P · completion).
    pub fn efficiency(&self) -> f64 {
        if self.completion_ns == 0 || self.per_worker_busy.is_empty() {
            return 0.0;
        }
        let busy: u128 = self.per_worker_busy.iter().map(|b| *b as u128).sum();
        busy as f64 / (self.completion_ns as f64 * self.per_worker_busy.len() as f64)
    }
}

/// Wraps a spec, multiplying its virtual cost — the calibration knob that
/// matches a small test tree to the paper's workload scale (their pfold
/// runs took hundreds of seconds; a test tree evaluates in milliseconds of
/// virtual time, which would make steal round-trips look enormous).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleCost<S> {
    /// The wrapped spec.
    pub inner: S,
    /// Virtual-cost multiplier.
    pub factor: u64,
}

impl<S: SpecTask> ScaleCost<S> {
    /// Scales `inner`'s virtual cost by `factor`.
    pub fn new(inner: S, factor: u64) -> Self {
        Self { inner, factor }
    }
}

impl<S: SpecTask> SpecTask for ScaleCost<S> {
    type Output = S::Output;

    fn step(self) -> SpecStep<Self> {
        let factor = self.factor;
        match self.inner.step() {
            SpecStep::Leaf(out) => SpecStep::Leaf(out),
            SpecStep::Expand { children, partial } => SpecStep::Expand {
                children: children
                    .into_iter()
                    .map(|inner| ScaleCost { inner, factor })
                    .collect(),
                partial,
            },
        }
    }

    fn identity() -> S::Output {
        S::identity()
    }

    fn merge(a: S::Output, b: S::Output) -> S::Output {
        S::merge(a, b)
    }

    fn virtual_cost(&self) -> Nanos {
        self.inner.virtual_cost().saturating_mul(self.factor)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Worker finishes its current task.
    Finish { worker: usize },
    /// A steal attempt by `thief` against `victim` resolves.
    StealResolve { thief: usize, victim: usize },
}

struct WorkerState<S> {
    deque: VecDeque<S>,
    busy: bool,
    busy_ns: Nanos,
    tasks: u64,
    /// Current task, stepped at completion time.
    current: Option<S>,
    /// Consecutive failed local attempts (for ClusterFirst).
    local_failures: u32,
}

/// Runs the spec tree under the virtual-time scheduler. Returns the exact
/// result (the application logic really runs) and the measurements.
pub fn run_microsim<S: SpecTask>(cfg: &MicroSimConfig, root: S) -> (S::Output, MicroReport) {
    let p = cfg.topology.workers();
    assert!(p >= 1, "need at least one worker");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut workers: Vec<WorkerState<S>> = (0..p)
        .map(|_| WorkerState {
            deque: VecDeque::new(),
            busy: false,
            busy_ns: 0,
            tasks: 0,
            current: None,
            local_failures: 0,
        })
        .collect();
    let mut acc = S::identity();
    let mut outstanding: u64 = 1;
    let mut report = MicroReport::default();

    // Seed: root on worker 0; everyone else immediately turns thief.
    workers[0].deque.push_back(root);
    start_or_steal(0, &mut workers, &mut q, cfg, &mut rng, &mut report);
    for w in 1..p {
        start_or_steal(w, &mut workers, &mut q, cfg, &mut rng, &mut report);
    }

    while let Some((now, ev)) = q.pop() {
        if outstanding == 0 {
            break;
        }
        match ev {
            Ev::Finish { worker } => {
                let spec = workers[worker]
                    .current
                    .take()
                    .expect("finish without a current task");
                workers[worker].busy = false;
                workers[worker].tasks += 1;
                report.tasks_executed += 1;
                match spec.step() {
                    SpecStep::Leaf(out) => {
                        acc = S::merge(acc, out);
                    }
                    SpecStep::Expand { children, partial } => {
                        acc = S::merge(acc, partial);
                        outstanding += children.len() as u64;
                        for c in children {
                            workers[worker].deque.push_back(c);
                        }
                    }
                }
                outstanding -= 1;
                if outstanding == 0 {
                    report.completion_ns = now;
                    break;
                }
                start_or_steal(worker, &mut workers, &mut q, cfg, &mut rng, &mut report);
            }
            Ev::StealResolve { thief, victim } => {
                if workers[thief].busy {
                    // Stale event (should not happen, but harmless).
                    continue;
                }
                // FIFO steal: oldest task, front of the victim's deque.
                if let Some(spec) = workers[victim].deque.pop_front() {
                    report.steals += 1;
                    workers[thief].local_failures = 0;
                    let crossing = !cfg.topology.same_cluster(thief, victim);
                    if crossing {
                        report.inter_cluster_steals += 1;
                        // Request + reply-with-task + eventual result return.
                        report.inter_cluster_bytes += 3 * cfg.msg_bytes as u64;
                    }
                    // Result-return message charged up front (bookkeeping
                    // only; virtual time charges land in the RTT already
                    // paid).
                    report.messages += 1;
                    workers[thief].deque.push_back(spec);
                    start_task(thief, &mut workers, &mut q, cfg, &mut report);
                } else {
                    report.failed_attempts += 1;
                    if cfg.topology.same_cluster(thief, victim) {
                        workers[thief].local_failures += 1;
                    }
                    schedule_steal(thief, &mut workers, &mut q, cfg, &mut rng, &mut report);
                }
            }
        }
    }
    if report.completion_ns == 0 {
        report.completion_ns = q.now();
    }
    report.per_worker_busy = workers.iter().map(|w| w.busy_ns).collect();
    report.per_worker_tasks = workers.iter().map(|w| w.tasks).collect();
    assert_eq!(outstanding, 0, "simulation drained without finishing");
    (acc, report)
}

fn start_or_steal<S: SpecTask>(
    worker: usize,
    workers: &mut [WorkerState<S>],
    q: &mut EventQueue<Ev>,
    cfg: &MicroSimConfig,
    rng: &mut SmallRng,
    report: &mut MicroReport,
) {
    if workers[worker].deque.is_empty() {
        schedule_steal(worker, workers, q, cfg, rng, report);
    } else {
        start_task(worker, workers, q, cfg, report);
    }
}

fn start_task<S: SpecTask>(
    worker: usize,
    workers: &mut [WorkerState<S>],
    q: &mut EventQueue<Ev>,
    cfg: &MicroSimConfig,
    _report: &mut MicroReport,
) {
    // LIFO execution: newest task, back of the deque.
    let spec = workers[worker]
        .deque
        .pop_back()
        .expect("start_task on empty deque");
    let cost = spec.virtual_cost() + cfg.sched_overhead;
    workers[worker].current = Some(spec);
    workers[worker].busy = true;
    workers[worker].busy_ns += cost;
    q.schedule_in(cost, Ev::Finish { worker });
}

fn schedule_steal<S: SpecTask>(
    thief: usize,
    workers: &mut [WorkerState<S>],
    q: &mut EventQueue<Ev>,
    cfg: &MicroSimConfig,
    rng: &mut SmallRng,
    report: &mut MicroReport,
) {
    let p = cfg.topology.workers();
    if p <= 1 {
        return; // nobody to steal from; waiting for own work (or the end)
    }
    let victim = pick_victim(thief, workers[thief].local_failures, cfg, rng);
    let rtt = cfg.topology.link(thief, victim).round_trip(cfg.msg_bytes);
    report.messages += 2; // request + reply
    q.schedule_in(rtt, Ev::StealResolve { thief, victim });
}

fn pick_victim(thief: usize, local_failures: u32, cfg: &MicroSimConfig, rng: &mut SmallRng) -> usize {
    let p = cfg.topology.workers();
    let uniform_other = |rng: &mut SmallRng| {
        let mut v = rng.gen_range(0..p - 1);
        if v >= thief {
            v += 1;
        }
        v
    };
    match cfg.victim {
        MicroVictimPolicy::Uniform => uniform_other(rng),
        MicroVictimPolicy::ClusterFirst { local_attempts } => {
            let my_cluster = cfg.topology.cluster_of[thief];
            let locals: Vec<usize> = (0..p)
                .filter(|w| *w != thief && cfg.topology.cluster_of[*w] == my_cluster)
                .collect();
            if locals.is_empty() || local_failures >= local_attempts {
                uniform_other(rng)
            } else {
                locals[rng.gen_range(0..locals.len())]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::LinkModel;
    use phish_core::run_serial;

    /// Binary range-sum spec with a fixed virtual cost per task.
    #[derive(Debug, Clone)]
    struct CostedSum {
        lo: u64,
        hi: u64,
        cost: Nanos,
    }

    impl SpecTask for CostedSum {
        type Output = u64;
        fn step(self) -> SpecStep<Self> {
            if self.hi - self.lo <= 8 {
                SpecStep::Leaf((self.lo..=self.hi).sum())
            } else {
                let mid = (self.lo + self.hi) / 2;
                SpecStep::Expand {
                    children: vec![
                        CostedSum { lo: self.lo, hi: mid, cost: self.cost },
                        CostedSum { lo: mid + 1, hi: self.hi, cost: self.cost },
                    ],
                    partial: 0,
                }
            }
        }
        fn identity() -> u64 {
            0
        }
        fn merge(a: u64, b: u64) -> u64 {
            a + b
        }
        fn virtual_cost(&self) -> Nanos {
            self.cost
        }
    }

    fn root(cost: Nanos) -> CostedSum {
        CostedSum { lo: 1, hi: 100_000, cost }
    }

    #[test]
    fn result_is_exact_at_any_p() {
        let expect = run_serial(root(1000));
        for p in [1, 2, 7, 32] {
            let cfg = MicroSimConfig::ethernet(p);
            let (v, _) = run_microsim(&cfg, root(1000));
            assert_eq!(v, expect, "P = {p}");
        }
    }

    #[test]
    fn virtual_time_shows_speedup() {
        // Coarse tasks on a LAN: near-linear speedup, as in Figure 5.
        let cost = 100_000; // 100µs tasks
        let t1 = run_microsim(&MicroSimConfig::ethernet(1), root(cost)).1.completion_ns;
        let t8 = run_microsim(&MicroSimConfig::ethernet(8), root(cost)).1.completion_ns;
        let s8 = t1 as f64 / t8 as f64;
        assert!(s8 > 6.0, "8-way speedup only {s8:.2}");
        let t32 = run_microsim(&MicroSimConfig::ethernet(32), root(cost))
            .1
            .completion_ns;
        let s32 = t1 as f64 / t32 as f64;
        assert!(s32 > 20.0, "32-way speedup only {s32:.2}");
    }

    #[test]
    fn steals_stay_rare_relative_to_tasks() {
        let cfg = MicroSimConfig::ethernet(8);
        let (_, r) = run_microsim(&cfg, root(100_000));
        assert!(r.tasks_executed > 10_000);
        assert!(
            r.steals * 20 < r.tasks_executed,
            "steals {} vs tasks {}",
            r.steals,
            r.tasks_executed
        );
    }

    #[test]
    fn single_worker_never_steals() {
        let cfg = MicroSimConfig::ethernet(1);
        let (_, r) = run_microsim(&cfg, root(1000));
        assert_eq!(r.steals, 0);
        assert_eq!(r.failed_attempts, 0);
        assert_eq!(r.messages, 0);
        assert_eq!(r.tasks_executed, r.per_worker_tasks[0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MicroSimConfig::ethernet(4);
        let (_, a) = run_microsim(&cfg, root(10_000));
        let (_, b) = run_microsim(&cfg, root(10_000));
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_first_reduces_cut_traffic() {
        let topo = || {
            Topology::clustered(
                2,
                4,
                LinkModel::atm_1995(),
                LinkModel::ethernet_1994(),
            )
        };
        let uniform = MicroSimConfig {
            topology: topo(),
            victim: MicroVictimPolicy::Uniform,
            seed: 1,
            sched_overhead: 200,
            msg_bytes: 64,
        };
        let biased = MicroSimConfig {
            topology: topo(),
            victim: MicroVictimPolicy::ClusterFirst { local_attempts: 4 },
            seed: 1,
            sched_overhead: 200,
            msg_bytes: 64,
        };
        let (_, ru) = run_microsim(&uniform, root(50_000));
        let (_, rb) = run_microsim(&biased, root(50_000));
        assert!(
            rb.inter_cluster_steals < ru.inter_cluster_steals,
            "biased {} vs uniform {}",
            rb.inter_cluster_steals,
            ru.inter_cluster_steals
        );
    }

    #[test]
    fn efficiency_between_zero_and_one() {
        let cfg = MicroSimConfig::ethernet(4);
        let (_, r) = run_microsim(&cfg, root(50_000));
        let e = r.efficiency();
        assert!(e > 0.5 && e <= 1.0, "efficiency {e}");
    }
}
