//! Space-sharing versus gang time-sharing.
//!
//! §2 motivates the macro scheduler with the CM-5's gang-scheduled
//! time-shared partitions: "if 4 jobs wish to run in a 32-node time-shared
//! partition, then each job runs on all 32 processors for some quantum ...
//! Clearly, this technique ... may not be the most efficient choice",
//! citing Tucker & Gupta for space-sharing (context-switch overhead) and the
//! further win of reassigning processors when a job's parallelism drops.
//!
//! This module is a closed-form-ish simulator of three strategies over the
//! same job set:
//!
//! * **Gang time-sharing** — every job gets all P processors for a quantum,
//!   paying a context-switch cost per switch; a job with parallelism < P
//!   wastes the surplus processors during its quantum.
//! * **Static space-sharing** — P/k processors per job, never reassigned.
//! * **Adaptive space-sharing** — the macro scheduler's behaviour:
//!   processors freed by completion *or by shrunken parallelism* move to
//!   jobs that can use them.

use phish_net::time::{Nanos, MILLISECOND, SECOND};

use crate::fleet::{Phase, SimJobSpec};

/// Outcome of one strategy over a job set.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingReport {
    /// Strategy label.
    pub strategy: &'static str,
    /// Completion time per job (submission order).
    pub completions: Vec<Nanos>,
    /// Time the last job finished.
    pub makespan: Nanos,
    /// Mean completion time.
    pub mean_completion: Nanos,
    /// Useful work done divided by P × makespan.
    pub utilization: f64,
    /// Context switches performed (gang scheduling only).
    pub context_switches: u64,
}

fn mean(xs: &[Nanos]) -> Nanos {
    if xs.is_empty() {
        0
    } else {
        (xs.iter().map(|x| *x as u128).sum::<u128>() / xs.len() as u128) as Nanos
    }
}

#[derive(Debug, Clone)]
struct RunJob {
    phases: Vec<Phase>,
    phase_idx: usize,
    remaining: f64,
    done_at: Option<Nanos>,
}

impl RunJob {
    fn new(spec: &SimJobSpec) -> Self {
        Self {
            phases: spec.phases.clone(),
            phase_idx: 0,
            remaining: spec.phases.first().map_or(0.0, |p| p.work as f64),
            done_at: None,
        }
    }

    fn parallelism(&self) -> u32 {
        self.phases.get(self.phase_idx).map_or(0, |p| p.parallelism)
    }

    fn done(&self) -> bool {
        self.phase_idx >= self.phases.len()
    }

    /// Runs on `procs` processors for up to `dt`; returns (time actually
    /// used, useful processor-time consumed).
    fn advance(&mut self, procs: u32, dt: f64) -> (f64, f64) {
        let mut used = 0.0;
        let mut useful = 0.0;
        let mut left = dt;
        while left > 1e-9 && !self.done() {
            let rate = procs.min(self.parallelism()) as f64;
            if rate == 0.0 {
                break;
            }
            let need = self.remaining / rate;
            let step = need.min(left);
            self.remaining -= step * rate;
            useful += step * rate;
            used += step;
            left -= step;
            if self.remaining <= 1e-6 {
                self.phase_idx += 1;
                self.remaining = self
                    .phases
                    .get(self.phase_idx)
                    .map_or(0.0, |p| p.work as f64);
            }
        }
        (used, useful)
    }
}

/// Gang time-sharing: round-robin quanta on all `procs` processors.
pub fn gang_timeshare(
    jobs: &[SimJobSpec],
    procs: u32,
    quantum: Nanos,
    context_switch: Nanos,
) -> SharingReport {
    let mut run: Vec<RunJob> = jobs.iter().map(RunJob::new).collect();
    let mut now: f64 = 0.0;
    let mut useful_total = 0.0;
    let mut switches: u64 = 0;
    let mut active = true;
    while active {
        active = false;
        for job in run.iter_mut() {
            if job.done() {
                continue;
            }
            active = true;
            // Pay the gang context switch, then run a quantum.
            now += context_switch as f64;
            switches += 1;
            let (used, useful) = job.advance(procs, quantum as f64);
            now += used;
            useful_total += useful;
            if job.done() && job.done_at.is_none() {
                job.done_at = Some(now as Nanos);
            }
        }
    }
    let completions: Vec<Nanos> = run.iter().map(|j| j.done_at.unwrap_or(0)).collect();
    let makespan = completions.iter().copied().max().unwrap_or(0);
    SharingReport {
        strategy: "gang-timeshare",
        mean_completion: mean(&completions),
        utilization: if makespan == 0 {
            0.0
        } else {
            useful_total / (procs as f64 * makespan as f64)
        },
        completions,
        makespan,
        context_switches: switches,
    }
}

/// Space sharing with an even static split; optionally adaptive
/// (reassigning processors freed by completion or shrunken parallelism).
pub fn space_share(jobs: &[SimJobSpec], procs: u32, adaptive: bool) -> SharingReport {
    let k = jobs.len() as u32;
    assert!(k > 0 && procs >= k, "need at least one processor per job");
    let mut run: Vec<RunJob> = jobs.iter().map(RunJob::new).collect();
    let mut alloc: Vec<u32> = (0..k)
        .map(|i| procs / k + u32::from(i < procs % k))
        .collect();
    let mut now: f64 = 0.0;
    let mut useful_total = 0.0;
    loop {
        if run.iter().all(|j| j.done()) {
            break;
        }
        if adaptive {
            rebalance(&run, &mut alloc, procs);
        }
        // Next event horizon: earliest phase boundary or completion at
        // current allocations.
        let mut horizon = f64::INFINITY;
        for (j, job) in run.iter().enumerate() {
            if job.done() {
                continue;
            }
            let rate = alloc[j].min(job.parallelism()) as f64;
            if rate > 0.0 {
                horizon = horizon.min(job.remaining / rate);
            }
        }
        if !horizon.is_finite() {
            break; // starved: no job can progress
        }
        let dt = horizon.max(1.0);
        for (j, job) in run.iter_mut().enumerate() {
            if job.done() {
                continue;
            }
            let (_, useful) = job.advance(alloc[j], dt);
            useful_total += useful;
            if job.done() && job.done_at.is_none() {
                job.done_at = Some((now + dt) as Nanos);
            }
        }
        now += dt;
    }
    let completions: Vec<Nanos> = run.iter().map(|j| j.done_at.unwrap_or(0)).collect();
    let makespan = completions.iter().copied().max().unwrap_or(0);
    SharingReport {
        strategy: if adaptive {
            "space-share-adaptive"
        } else {
            "space-share-static"
        },
        mean_completion: mean(&completions),
        utilization: if makespan == 0 {
            0.0
        } else {
            useful_total / (procs as f64 * makespan as f64)
        },
        completions,
        makespan,
        context_switches: 0,
    }
}

/// Gives each live job what it can use, spreading leftovers over jobs with
/// spare appetite.
fn rebalance(run: &[RunJob], alloc: &mut [u32], procs: u32) {
    let live: Vec<usize> = (0..run.len()).filter(|j| !run[*j].done()).collect();
    for a in alloc.iter_mut() {
        *a = 0;
    }
    if live.is_empty() {
        return;
    }
    let mut left = procs;
    // First pass: give every live job min(fair share, its parallelism).
    let fair = (procs / live.len() as u32).max(1);
    for &j in &live {
        let want = run[j].parallelism().min(fair);
        let give = want.min(left);
        alloc[j] = give;
        left -= give;
    }
    // Second pass: hand leftovers to jobs that can still use them.
    loop {
        let mut gave = false;
        for &j in &live {
            if left == 0 {
                break;
            }
            if alloc[j] < run[j].parallelism() {
                alloc[j] += 1;
                left -= 1;
                gave = true;
            }
        }
        if left == 0 || !gave {
            break;
        }
    }
}

/// The paper's motivating scenario: 4 jobs on 32 processors.
pub fn paper_scenario() -> Vec<SimJobSpec> {
    vec![
        SimJobSpec::uniform("wide-a", 640 * SECOND, 32),
        SimJobSpec::uniform("wide-b", 640 * SECOND, 32),
        SimJobSpec {
            name: "shrinking".into(),
            phases: vec![
                Phase {
                    work: 320 * SECOND,
                    parallelism: 32,
                },
                Phase {
                    work: 80 * SECOND,
                    parallelism: 2,
                },
            ],
            max_participants: None,
        },
        SimJobSpec::uniform("narrow", 320 * SECOND, 8),
    ]
}

/// A typical 1990s gang quantum and context-switch cost (Tucker–Gupta
/// report switch costs dominated by cache/TLB refill).
pub const GANG_QUANTUM: Nanos = 100 * MILLISECOND;
/// Per-switch cost.
pub const GANG_SWITCH_COST: Nanos = 10 * MILLISECOND;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wide_job_is_equivalent_everywhere() {
        let jobs = vec![SimJobSpec::uniform("j", 320 * SECOND, 32)];
        let gang = gang_timeshare(&jobs, 32, GANG_QUANTUM, 0);
        let space = space_share(&jobs, 32, true);
        // 320 cpu-seconds at 32-way = 10 seconds.
        assert!((gang.makespan as i64 - 10 * SECOND as i64).abs() < SECOND as i64 / 10);
        assert!((space.makespan as i64 - 10 * SECOND as i64).abs() < SECOND as i64 / 10);
    }

    #[test]
    fn context_switch_cost_hurts_gang() {
        let jobs = paper_scenario();
        let free = gang_timeshare(&jobs, 32, GANG_QUANTUM, 0);
        let costly = gang_timeshare(&jobs, 32, GANG_QUANTUM, GANG_SWITCH_COST);
        assert!(costly.makespan > free.makespan);
        assert!(costly.context_switches > 100);
    }

    #[test]
    fn space_sharing_beats_gang_on_the_paper_scenario() {
        let jobs = paper_scenario();
        let gang = gang_timeshare(&jobs, 32, GANG_QUANTUM, GANG_SWITCH_COST);
        let space = space_share(&jobs, 32, true);
        assert!(
            space.utilization > gang.utilization,
            "space {:.3} vs gang {:.3}",
            space.utilization,
            gang.utilization
        );
        assert!(space.mean_completion < gang.mean_completion);
    }

    #[test]
    fn adaptive_beats_static_when_parallelism_shrinks() {
        let jobs = paper_scenario();
        let stat = space_share(&jobs, 32, false);
        let adap = space_share(&jobs, 32, true);
        assert!(
            adap.makespan <= stat.makespan,
            "adaptive {} vs static {}",
            adap.makespan,
            stat.makespan
        );
        // The scenario's critical path is the shrinking job's 2-way tail,
        // so the makespans can tie; the throughput win shows up in mean
        // completion time (the wide jobs absorb the freed processors).
        assert!(
            adap.mean_completion < stat.mean_completion,
            "adaptive mean {} vs static mean {}",
            adap.mean_completion,
            stat.mean_completion
        );
    }

    #[test]
    fn static_split_starves_nobody() {
        let jobs = paper_scenario();
        let r = space_share(&jobs, 32, false);
        assert!(r.completions.iter().all(|c| *c > 0), "{:?}", r.completions);
    }

    #[test]
    fn all_strategies_complete_all_jobs() {
        let jobs = paper_scenario();
        for r in [
            gang_timeshare(&jobs, 32, GANG_QUANTUM, GANG_SWITCH_COST),
            space_share(&jobs, 32, false),
            space_share(&jobs, 32, true),
        ] {
            assert_eq!(r.completions.len(), 4, "{}", r.strategy);
            assert!(r.completions.iter().all(|c| *c > 0), "{}", r.strategy);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
        }
    }
}
