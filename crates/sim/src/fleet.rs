//! Fleet simulation: the macro-level scheduler over many workstations.
//!
//! Drives one [`JobQ`] and N real [`JobManager`] state machines (the same
//! code a threaded deployment runs) against seeded owner-activity traces on
//! a virtual clock. Jobs are modelled abstractly: a pool of CPU-work split
//! into phases, each with a bound on useful parallelism — enough to exercise
//! every macro-level behaviour the paper describes: idle workstations
//! joining, owners reclaiming machines, parallelism shrinking and freeing
//! workstations for other jobs, and the 30-second/2-minute message cadences
//! whose coarseness underlies the §3 scalability conjecture.

use phish_macro::{
    AssignPolicy, ExitReason, IdlenessPolicy, JobId, JobManager, JobQ, JobSpec, LoadBelowThreshold,
    ManagerAction, NobodyLoggedIn, UPDATE_INTERVAL,
};
use phish_net::time::{Nanos, SECOND};

use crate::events::EventQueue;
use crate::workstation::{OwnerProfile, OwnerTrace};

/// One phase of a simulated job's lifetime.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// CPU-work in this phase, in processor-nanoseconds.
    pub work: Nanos,
    /// Maximum participants that can be productive in this phase.
    pub parallelism: u32,
}

/// A job submitted to the simulated fleet.
#[derive(Debug, Clone)]
pub struct SimJobSpec {
    /// Name (for reports).
    pub name: String,
    /// Phases, consumed in order.
    pub phases: Vec<Phase>,
    /// Cap on simultaneous participants (None = unlimited).
    pub max_participants: Option<u32>,
}

impl SimJobSpec {
    /// A single-phase job.
    pub fn uniform(name: impl Into<String>, work: Nanos, parallelism: u32) -> Self {
        Self {
            name: name.into(),
            phases: vec![Phase { work, parallelism }],
            max_participants: None,
        }
    }

    /// Total CPU-work across phases.
    pub fn total_work(&self) -> Nanos {
        self.phases.iter().map(|p| p.work).sum()
    }
}

/// Configuration of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of workstations.
    pub workstations: usize,
    /// Owner behaviour for every workstation.
    pub owner_profile: OwnerProfile,
    /// RNG seed (owner traces).
    pub seed: u64,
    /// Jobs submitted at time zero.
    pub jobs: Vec<SimJobSpec>,
    /// How long a surplus participant takes to notice parallelism shrank
    /// (repeated failed steals) and exit.
    pub shrink_detect_delay: Nanos,
    /// Simulation cutoff.
    pub max_time: Nanos,
    /// JobQ assignment policy (round-robin in the paper).
    pub assign_policy: AssignPolicy,
    /// Idleness policy every workstation owner chose (§2: owners set their
    /// own; fleet-wide here for clean comparisons).
    pub idleness: IdlenessChoice,
}

/// Which idleness policy the fleet's owners use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IdlenessChoice {
    /// The paper's conservative default.
    NobodyLoggedIn,
    /// Harvest whenever owner load is below the threshold, logins or not.
    LoadBelow(f64),
}

impl IdlenessChoice {
    fn build(self) -> Box<dyn IdlenessPolicy> {
        match self {
            IdlenessChoice::NobodyLoggedIn => Box::new(NobodyLoggedIn),
            IdlenessChoice::LoadBelow(max_load) => Box::new(LoadBelowThreshold { max_load }),
        }
    }
}

impl FleetConfig {
    /// A dedicated (always-idle) fleet of `n` workstations.
    pub fn dedicated(n: usize, jobs: Vec<SimJobSpec>) -> Self {
        Self {
            workstations: n,
            owner_profile: OwnerProfile::always_idle(),
            seed: 0x5EED,
            jobs,
            shrink_detect_delay: 2 * SECOND,
            max_time: 24 * 3600 * SECOND,
            assign_policy: AssignPolicy::RoundRobin,
            idleness: IdlenessChoice::NobodyLoggedIn,
        }
    }
}

/// Results of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Virtual time when the last job finished (or the cutoff).
    pub makespan: Nanos,
    /// Completion time per job, in submission order (None = unfinished).
    pub completions: Vec<Option<Nanos>>,
    /// Σ participant-time actually spent per job.
    pub busy_time: Vec<Nanos>,
    /// Peak simultaneous participants per job.
    pub peak_participants: Vec<u32>,
    /// Messages that reached the JobQ (requests), its replies, and
    /// worker-exit notices — the central-server load of the §3 conjecture.
    pub jobq_messages: u64,
    /// Estimated Clearinghouse messages: registrations, unregistrations,
    /// and one roster update per participant per 2 minutes.
    pub clearinghouse_messages: u64,
    /// Total workstation-time spent participating.
    pub total_participation: Nanos,
    /// Total workstation-time the owners left idle.
    pub total_idle_capacity: Nanos,
}

impl FleetReport {
    /// Fraction of owner-idle capacity actually harvested for jobs.
    pub fn utilization(&self) -> f64 {
        if self.total_idle_capacity == 0 {
            return 0.0;
        }
        self.total_participation as f64 / self.total_idle_capacity as f64
    }

    /// JobQ messages per second of simulated time.
    pub fn jobq_msgs_per_sec(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.jobq_messages as f64 / (self.makespan as f64 / 1e9)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A JobManager's timer fires.
    ManagerTimer { ws: usize },
    /// Re-evaluate a job's projected completion / phase boundary.
    JobCheck { job: usize, gen: u64 },
    /// A surplus participant notices shrunken parallelism.
    ShrinkExit { ws: usize, job: usize, gen: u64 },
}

struct JobState {
    id: JobId,
    phases: Vec<Phase>,
    phase_idx: usize,
    /// Work remaining in the current phase.
    phase_remaining: f64,
    participants: Vec<usize>,
    last_accrual: Nanos,
    gen: u64,
    completed_at: Option<Nanos>,
    busy_time: Nanos,
    peak: u32,
}

impl JobState {
    fn parallelism(&self) -> u32 {
        self.phases.get(self.phase_idx).map_or(0, |p| p.parallelism)
    }

    fn rate(&self) -> u64 {
        (self.participants.len() as u32).min(self.parallelism()) as u64
    }

    fn done(&self) -> bool {
        self.phase_idx >= self.phases.len()
    }

    /// Accrues work up to `now`, advancing phases as they exhaust.
    fn accrue(&mut self, now: Nanos) {
        let mut t = self.last_accrual;
        while t < now && !self.done() {
            let rate = self.rate();
            if rate == 0 {
                break;
            }
            let dt = (now - t) as f64;
            let can_do = dt * rate as f64;
            if can_do < self.phase_remaining {
                self.phase_remaining -= can_do;
                self.busy_time += (now - t) * self.participants.len() as u64;
                t = now;
            } else {
                let used = self.phase_remaining / rate as f64;
                self.busy_time += used as u64 * self.participants.len() as u64;
                t += used as Nanos;
                self.phase_idx += 1;
                self.phase_remaining = self
                    .phases
                    .get(self.phase_idx)
                    .map_or(0.0, |p| p.work as f64);
            }
        }
        self.last_accrual = now;
    }

    /// Time at which the *current* phase exhausts at the current rate.
    fn next_boundary(&self, now: Nanos) -> Option<Nanos> {
        if self.done() {
            return None;
        }
        let rate = self.rate();
        if rate == 0 {
            return None;
        }
        Some(now + (self.phase_remaining / rate as f64).ceil() as Nanos)
    }
}

/// Runs the fleet to completion (or cutoff).
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut jobq = JobQ::with_policy(cfg.assign_policy);
    let mut jobs: Vec<JobState> = cfg
        .jobs
        .iter()
        .map(|spec| {
            let id = jobq.submit(JobSpec {
                name: spec.name.clone(),
                priority: 0,
                max_participants: spec.max_participants,
            });
            JobState {
                id,
                phases: spec.phases.clone(),
                phase_idx: 0,
                phase_remaining: spec.phases.first().map_or(0.0, |p| p.work as f64),
                participants: Vec::new(),
                last_accrual: 0,
                gen: 0,
                completed_at: None,
                busy_time: 0,
                peak: 0,
            }
        })
        .collect();
    let mut managers: Vec<JobManager> = (0..cfg.workstations)
        .map(|_| JobManager::new(cfg.idleness.build(), 0))
        .collect();
    let mut traces: Vec<OwnerTrace> = (0..cfg.workstations)
        .map(|i| OwnerTrace::new(cfg.owner_profile, cfg.seed ^ (i as u64 * 7919 + 1)))
        .collect();
    // Which job each workstation participates in.
    let mut participating: Vec<Option<usize>> = vec![None; cfg.workstations];
    let mut jobq_messages: u64 = 0;
    let mut registrations: u64 = 0;

    for (ws, m) in managers.iter().enumerate() {
        q.schedule_at(m.next_timer(), Ev::ManagerTimer { ws });
    }

    let job_index_of =
        |jobs: &[JobState], id: JobId| -> Option<usize> { jobs.iter().position(|j| j.id == id) };

    while let Some((now, ev)) = q.pop() {
        if now > cfg.max_time {
            break;
        }
        if jobs.iter().all(|j| j.completed_at.is_some()) {
            break;
        }
        match ev {
            Ev::ManagerTimer { ws } => {
                let obs = traces[ws].observe(now);
                let actions = managers[ws].tick(now, &obs);
                let mut reschedule = true;
                for action in actions {
                    match action {
                        ManagerAction::RequestJob => {
                            // Request + reply: two JobQ messages.
                            jobq_messages += 2;
                            let reply = jobq.request();
                            let more = managers[ws].on_job_reply(now, reply.clone());
                            for a in more {
                                if let ManagerAction::StartWorker(assign) = a {
                                    if let Some(ji) = job_index_of(&jobs, assign.job) {
                                        join_job(
                                            ws,
                                            ji,
                                            now,
                                            &mut jobs,
                                            &mut participating,
                                            &mut q,
                                        );
                                        registrations += 1;
                                    }
                                }
                            }
                        }
                        ManagerAction::KillWorker(_) => {
                            if let Some(ji) = participating[ws].take() {
                                leave_job(ws, ji, now, &mut jobs, &mut jobq, &mut q);
                            }
                        }
                        ManagerAction::StartWorker(_) => unreachable!("start only follows reply"),
                    }
                    reschedule = true;
                }
                if reschedule {
                    q.schedule_at(
                        managers[ws].next_timer().max(now + 1),
                        Ev::ManagerTimer { ws },
                    );
                }
            }
            Ev::JobCheck { job, gen } => {
                if jobs[job].gen != gen || jobs[job].completed_at.is_some() {
                    continue;
                }
                jobs[job].accrue(now);
                if !jobs[job].done() {
                    reschedule_job(job, now, &mut jobs, &mut q);
                    schedule_shrink_exits(job, now, cfg, &mut jobs, &mut q);
                }
            }
            Ev::ShrinkExit { ws, job, gen } => {
                if jobs[job].gen != gen
                    || jobs[job].completed_at.is_some()
                    || participating[ws] != Some(job)
                {
                    continue;
                }
                jobs[job].accrue(now);
                if jobs[job].participants.len() as u32 <= jobs[job].parallelism() {
                    continue; // parallelism recovered
                }
                participating[ws] = None;
                leave_job(ws, job, now, &mut jobs, &mut jobq, &mut q);
                // The manager's worker exits and immediately re-requests.
                jobq_messages += 1; // exit notice
                let actions = managers[ws].on_worker_exit(now, ExitReason::ParallelismShrank);
                for action in actions {
                    if let ManagerAction::RequestJob = action {
                        jobq_messages += 2;
                        let reply = jobq.request();
                        let more = managers[ws].on_job_reply(now, reply.clone());
                        for a in more {
                            if let ManagerAction::StartWorker(assign) = a {
                                if let Some(ji) = job_index_of(&jobs, assign.job) {
                                    join_job(ws, ji, now, &mut jobs, &mut participating, &mut q);
                                    registrations += 1;
                                }
                            }
                        }
                    }
                }
                q.schedule_at(
                    managers[ws].next_timer().max(now + 1),
                    Ev::ManagerTimer { ws },
                );
            }
        }
        // A job's final accrual can happen inside join/leave (participant
        // churn), after which no JobCheck is ever rescheduled — so sweep for
        // newly finished jobs here. Completing one job migrates its
        // participants, which can finish another; repeat until stable.
        while let Some(ji) = jobs
            .iter()
            .position(|j| j.done() && j.completed_at.is_none())
        {
            complete_job(
                ji,
                now,
                &mut jobs,
                &mut jobq,
                &mut managers,
                &mut participating,
                &mut jobq_messages,
                &mut q,
            );
        }
    }

    let makespan = jobs
        .iter()
        .filter_map(|j| j.completed_at)
        .max()
        .unwrap_or_else(|| q.now().min(cfg.max_time));
    let total_participation: Nanos = jobs.iter().map(|j| j.busy_time).sum();
    // Idle capacity: integrate owner-idle time per workstation up to makespan.
    let mut total_idle_capacity: Nanos = 0;
    for tr in traces.iter_mut() {
        let mut t = 0;
        while t < makespan {
            let next = tr.next_transition_after(t).min(makespan);
            if !tr.busy_at(t) {
                total_idle_capacity += next - t;
            }
            t = next;
        }
    }
    // Clearinghouse traffic: register/unregister pairs plus one update per
    // participant per 2 minutes of participation.
    let updates: u64 = jobs.iter().map(|j| j.busy_time / UPDATE_INTERVAL).sum();
    FleetReport {
        makespan,
        completions: jobs.iter().map(|j| j.completed_at).collect(),
        busy_time: jobs.iter().map(|j| j.busy_time).collect(),
        peak_participants: jobs.iter().map(|j| j.peak).collect(),
        jobq_messages,
        clearinghouse_messages: registrations * 2 + updates,
        total_participation,
        total_idle_capacity,
    }
}

fn join_job(
    ws: usize,
    job: usize,
    now: Nanos,
    jobs: &mut [JobState],
    participating: &mut [Option<usize>],
    q: &mut EventQueue<Ev>,
) {
    jobs[job].accrue(now);
    jobs[job].participants.push(ws);
    let n = jobs[job].participants.len() as u32;
    jobs[job].peak = jobs[job].peak.max(n);
    participating[ws] = Some(job);
    reschedule_job(job, now, jobs, q);
}

fn leave_job(
    ws: usize,
    job: usize,
    now: Nanos,
    jobs: &mut [JobState],
    jobq: &mut JobQ,
    q: &mut EventQueue<Ev>,
) {
    jobs[job].accrue(now);
    jobs[job].participants.retain(|w| *w != ws);
    jobq.release(jobs[job].id);
    reschedule_job(job, now, jobs, q);
}

fn reschedule_job(job: usize, now: Nanos, jobs: &mut [JobState], q: &mut EventQueue<Ev>) {
    jobs[job].gen += 1;
    let gen = jobs[job].gen;
    if let Some(t) = jobs[job].next_boundary(now) {
        q.schedule_at(t.max(now + 1), Ev::JobCheck { job, gen });
    }
}

fn schedule_shrink_exits(
    job: usize,
    now: Nanos,
    cfg: &FleetConfig,
    jobs: &mut [JobState],
    q: &mut EventQueue<Ev>,
) {
    let surplus = jobs[job]
        .participants
        .len()
        .saturating_sub(jobs[job].parallelism() as usize);
    if surplus == 0 {
        return;
    }
    let gen = jobs[job].gen;
    // Most recent joiners leave first.
    let victims: Vec<usize> = jobs[job]
        .participants
        .iter()
        .rev()
        .take(surplus)
        .copied()
        .collect();
    for ws in victims {
        q.schedule_at(
            now + cfg.shrink_detect_delay,
            Ev::ShrinkExit { ws, job, gen },
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn complete_job(
    job: usize,
    now: Nanos,
    jobs: &mut [JobState],
    jobq: &mut JobQ,
    managers: &mut [JobManager],
    participating: &mut [Option<usize>],
    jobq_messages: &mut u64,
    q: &mut EventQueue<Ev>,
) {
    jobs[job].completed_at = Some(now);
    jobq.complete(jobs[job].id);
    let members = std::mem::take(&mut jobs[job].participants);
    for ws in members {
        participating[ws] = None;
        // Worker exit + immediate re-request (handled at the manager's
        // pace by scheduling its timer now).
        let actions = managers[ws].on_worker_exit(now, ExitReason::JobFinished);
        for action in actions {
            if let ManagerAction::RequestJob = action {
                *jobq_messages += 2;
                let reply = jobq.request();
                let more = managers[ws].on_job_reply(now, reply);
                for a in more {
                    if let ManagerAction::StartWorker(assign) = a {
                        if let Some(ji) = jobs.iter().position(|j| j.id == assign.job) {
                            join_job(ws, ji, now, jobs, participating, q);
                        }
                    }
                }
            }
        }
        q.schedule_at(
            managers[ws].next_timer().max(now + 1),
            Ev::ManagerTimer { ws },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINUTE: Nanos = 60 * SECOND;

    #[test]
    fn dedicated_fleet_completes_one_job() {
        // 8 always-idle workstations, one 80-cpu-second job, 8-way parallel:
        // should take ~10s of engine time once everyone joins (joining
        // takes up to 5 minutes: the initial owner poll).
        let job = SimJobSpec::uniform("pfold", 80 * SECOND, 8);
        let cfg = FleetConfig::dedicated(8, vec![job]);
        let r = run_fleet(&cfg);
        let done = r.completions[0].expect("job must finish");
        assert!(done < 10 * MINUTE, "finished at {}s", done / SECOND);
        assert_eq!(r.peak_participants[0], 8, "all 8 should join");
        assert!(r.busy_time[0] >= 80 * SECOND);
    }

    #[test]
    fn parallelism_cap_limits_participants() {
        let job = SimJobSpec {
            name: "narrow".into(),
            phases: vec![Phase {
                work: 40 * SECOND,
                parallelism: 2,
            }],
            max_participants: Some(2),
        };
        let cfg = FleetConfig::dedicated(8, vec![job]);
        let r = run_fleet(&cfg);
        assert!(r.completions[0].is_some());
        assert!(r.peak_participants[0] <= 2);
    }

    #[test]
    fn shrinking_parallelism_frees_workstations_for_other_jobs() {
        // Job A: wide then narrow. Job B: wide throughout. When A narrows,
        // its surplus workstations must drift to B.
        let a = SimJobSpec {
            name: "a".into(),
            phases: vec![
                Phase {
                    work: 64 * SECOND,
                    parallelism: 16,
                },
                Phase {
                    work: 64 * SECOND,
                    parallelism: 2,
                },
            ],
            max_participants: None,
        };
        let b = SimJobSpec::uniform("b", 400 * SECOND, 32);
        let cfg = FleetConfig::dedicated(16, vec![a, b]);
        let r = run_fleet(&cfg);
        assert!(r.completions[0].is_some(), "job a unfinished");
        assert!(r.completions[1].is_some(), "job b unfinished");
        // B must at some point have gained more than its initial
        // round-robin half of the fleet.
        assert!(
            r.peak_participants[1] > 8,
            "b peaked at {} participants",
            r.peak_participants[1]
        );
    }

    #[test]
    fn owners_returning_evict_workers_but_job_still_finishes() {
        let job = SimJobSpec::uniform("steady", 200 * SECOND, 8);
        let cfg = FleetConfig {
            workstations: 8,
            owner_profile: OwnerProfile {
                mean_busy: 20 * MINUTE,
                mean_idle: 40 * MINUTE,
                starts_busy: false,
                lingering_fraction: 0.0,
            },
            seed: 17,
            jobs: vec![job],
            shrink_detect_delay: 2 * SECOND,
            max_time: 24 * 3600 * SECOND,
            assign_policy: AssignPolicy::RoundRobin,
            idleness: IdlenessChoice::NobodyLoggedIn,
        };
        let r = run_fleet(&cfg);
        assert!(r.completions[0].is_some(), "job must survive churn");
        assert!(r.utilization() > 0.0);
    }

    #[test]
    fn load_policy_harvests_lingering_sessions() {
        let jobs = || vec![SimJobSpec::uniform("j", 2000 * SECOND, 16)];
        let base = FleetConfig {
            workstations: 16,
            owner_profile: OwnerProfile::lingering_office_worker(0.5),
            seed: 5,
            jobs: jobs(),
            shrink_detect_delay: 2 * SECOND,
            max_time: 72 * 3600 * SECOND,
            assign_policy: AssignPolicy::RoundRobin,
            idleness: IdlenessChoice::NobodyLoggedIn,
        };
        let conservative = run_fleet(&base);
        let liberal = run_fleet(&FleetConfig {
            idleness: IdlenessChoice::LoadBelow(0.25),
            jobs: jobs(),
            ..base
        });
        let c = conservative.completions[0].expect("finishes eventually");
        let l = liberal.completions[0].expect("finishes");
        assert!(
            l < c,
            "load policy must finish sooner: {l} vs {c} (lingering sessions harvested)"
        );
    }

    #[test]
    fn jobq_traffic_is_coarse() {
        // The §3 conjecture: JobQ messages stay ~1 per 30s per hunting
        // workstation. With a fleet of 50 and an hour of simulated time the
        // rate must stay far below 50/s.
        let job = SimJobSpec::uniform("long", 3000 * SECOND, 4);
        let cfg = FleetConfig::dedicated(50, vec![job]);
        let r = run_fleet(&cfg);
        assert!(
            r.jobq_msgs_per_sec() < 10.0,
            "JobQ rate {}/s",
            r.jobq_msgs_per_sec()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let job = SimJobSpec::uniform("j", 100 * SECOND, 4);
            FleetConfig {
                seed: 99,
                ..FleetConfig::dedicated(8, vec![job])
            }
        };
        let a = run_fleet(&mk());
        let b = run_fleet(&mk());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.jobq_messages, b.jobq_messages);
        assert_eq!(a.completions, b.completions);
    }
}
