//! The discrete-event core: a deterministic time-ordered event queue.
//!
//! Ties (equal timestamps) break by insertion sequence, so a simulation's
//! behaviour is a pure function of its inputs and seeds — every experiment
//! in EXPERIMENTS.md can be replayed exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use phish_net::Nanos;

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled<E> {
    time: Nanos,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    now: Nanos,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules `event` at absolute time `at`. Scheduling in the past is a
    /// logic error and panics.
    pub fn schedule_at(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            time: at,
            seq,
            event,
        }));
    }

    /// Schedules `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.time >= self.now);
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "first");
        q.schedule_at(5, "second");
        q.schedule_at(5, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(50, "x");
        q.pop();
        q.schedule_in(25, "y");
        assert_eq!(q.pop(), Some((75, "y")));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        q.pop();
        q.schedule_at(50, ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(7, ());
        q.schedule_at(3, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3));
    }
}
