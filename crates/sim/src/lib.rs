#![warn(missing_docs)]

//! # phish-sim — a deterministic simulator of a network of workstations
//!
//! The paper ran on a 1994 LAN of SparcStations with real owners logging in
//! and out; this crate is the substitute substrate. Everything is
//! discrete-event and seeded, so every experiment replays exactly.
//!
//! * [`events`] — the deterministic event queue.
//! * [`workstation`] — seeded owner login/logout traces.
//! * [`netmodel`] — message cost models (1994 Ethernet, CM-5 interconnect,
//!   ATM) and clustered topologies for the §6 heterogeneity experiment.
//! * [`fleet`] — the macro-level scheduler (real `JobManager`/`JobQ` code)
//!   over N simulated workstations: join/leave dynamics, utilization, and
//!   the §3 central-server scalability conjecture.
//! * [`microsim`] — virtual-time execution of real [`phish_core::SpecTask`]
//!   trees under the micro-level scheduler: regenerates the Figure 4/5
//!   speedup curves at participant counts the host machine cannot provide.
//! * [`sharing`] — the §2 space-sharing vs gang-time-sharing comparison.

pub mod events;
pub mod fleet;
pub mod microsim;
pub mod netmodel;
pub mod sharing;
pub mod workstation;

pub use events::EventQueue;
pub use fleet::{run_fleet, FleetConfig, FleetReport, IdlenessChoice, Phase, SimJobSpec};
pub use microsim::{run_microsim, MicroReport, MicroSimConfig, MicroVictimPolicy};
pub use netmodel::{LinkModel, Topology};
pub use sharing::{gang_timeshare, paper_scenario, space_share, SharingReport};
pub use workstation::{OwnerProfile, OwnerTrace};
