//! The network cost model.
//!
//! The paper's motivating observation: "the software overhead incurred when
//! sending a message on a typical workstation is often at least two orders
//! of magnitude greater than the corresponding overhead on a parallel
//! supercomputer. Also, the bisection bandwidth of a typical workstation
//! network is again often at least two orders of magnitude less." (§1)
//!
//! [`LinkModel`] charges `overhead + size/bandwidth + latency` per message.
//! [`Topology`] groups workers into clusters with different intra- and
//! inter-cluster links — the substrate for the paper's §6 future-work
//! experiment on heterogeneous networks ("preserve locality with respect to
//! those network cuts that have the least bandwidth").

use phish_net::time::{Nanos, MICROSECOND};

/// Cost parameters of one link class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// Per-message sender software overhead.
    pub overhead: Nanos,
    /// Propagation latency.
    pub latency: Nanos,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: u64,
}

impl LinkModel {
    /// A 1994 Ethernet LAN with an untuned UDP/IP stack: ~1ms software
    /// overhead, ~0.5ms latency, 10 Mbit/s.
    pub fn ethernet_1994() -> Self {
        Self {
            overhead: 1000 * MICROSECOND,
            latency: 500 * MICROSECOND,
            bandwidth_bps: 10_000_000 / 8,
        }
    }

    /// A CM-5-class supercomputer interconnect: both overhead and
    /// bandwidth roughly two orders of magnitude better, per §1.
    pub fn cm5_interconnect() -> Self {
        Self {
            overhead: 10 * MICROSECOND,
            latency: 5 * MICROSECOND,
            bandwidth_bps: 1_000_000_000 / 8,
        }
    }

    /// An ATM-class "improved workstation network" (§1 cites ATM research
    /// closing the gap).
    pub fn atm_1995() -> Self {
        Self {
            overhead: 100 * MICROSECOND,
            latency: 50 * MICROSECOND,
            bandwidth_bps: 155_000_000 / 8,
        }
    }

    /// One-way delivery time for a message of `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> Nanos {
        let serialization =
            (bytes as u128 * 1_000_000_000u128 / u128::from(self.bandwidth_bps.max(1))) as Nanos;
        self.overhead + self.latency + serialization
    }

    /// Round-trip time for a small request/reply pair of `bytes` each.
    pub fn round_trip(&self, bytes: usize) -> Nanos {
        2 * self.transfer_time(bytes)
    }
}

/// Cluster membership plus per-class links.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Cluster index of each worker.
    pub cluster_of: Vec<usize>,
    /// Link used within a cluster.
    pub intra: LinkModel,
    /// Link used across clusters (the thin cut).
    pub inter: LinkModel,
}

impl Topology {
    /// A single cluster of `n` workers over `link`.
    pub fn flat(n: usize, link: LinkModel) -> Self {
        Self {
            cluster_of: vec![0; n],
            intra: link,
            inter: link,
        }
    }

    /// `clusters` equal clusters of `per_cluster` workers, fast links
    /// inside and a thin link between.
    pub fn clustered(
        clusters: usize,
        per_cluster: usize,
        intra: LinkModel,
        inter: LinkModel,
    ) -> Self {
        let cluster_of = (0..clusters * per_cluster)
            .map(|w| w / per_cluster)
            .collect();
        Self {
            cluster_of,
            intra,
            inter,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.cluster_of.len()
    }

    /// True when `a` and `b` share a cluster.
    pub fn same_cluster(&self, a: usize, b: usize) -> bool {
        self.cluster_of[a] == self.cluster_of[b]
    }

    /// The link between two workers.
    pub fn link(&self, a: usize, b: usize) -> &LinkModel {
        if self.same_cluster(a, b) {
            &self.intra
        } else {
            &self.inter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_components() {
        let link = LinkModel {
            overhead: 100,
            latency: 50,
            bandwidth_bps: 1_000_000_000, // 1 GB/s → 1ns per byte
        };
        assert_eq!(link.transfer_time(0), 150);
        assert_eq!(link.transfer_time(1000), 1150);
        assert_eq!(link.round_trip(0), 300);
    }

    #[test]
    fn ethernet_is_two_orders_slower_than_cm5() {
        let lan = LinkModel::ethernet_1994();
        let cm5 = LinkModel::cm5_interconnect();
        assert!(lan.overhead >= 100 * cm5.overhead);
        assert!(cm5.bandwidth_bps >= 100 * lan.bandwidth_bps / 2);
        // A small scheduling message is dominated by overhead on the LAN.
        assert!(lan.transfer_time(64) > 50 * cm5.transfer_time(64));
    }

    #[test]
    fn flat_topology_has_one_cluster() {
        let t = Topology::flat(8, LinkModel::ethernet_1994());
        assert_eq!(t.workers(), 8);
        assert!(t.same_cluster(0, 7));
        assert_eq!(t.link(0, 7), &t.intra);
    }

    #[test]
    fn clustered_topology_separates_cuts() {
        let t = Topology::clustered(2, 4, LinkModel::atm_1995(), LinkModel::ethernet_1994());
        assert_eq!(t.workers(), 8);
        assert!(t.same_cluster(0, 3));
        assert!(!t.same_cluster(3, 4));
        assert_eq!(t.link(0, 3), &t.intra);
        assert_eq!(t.link(0, 4), &t.inter);
        assert!(t.link(0, 4).transfer_time(64) > t.link(0, 3).transfer_time(64));
    }
}
