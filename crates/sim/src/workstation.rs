//! Simulated workstation owners.
//!
//! An [`OwnerTrace`] is a deterministic, seeded sequence of login/logout
//! periods — the "owner activity" a JobManager polls. Busy and idle period
//! lengths are exponentially distributed with configurable means, matching
//! the empirical observation the paper cites (ref. 20, Condor) that "much of a
//! typical workstation's computing capacity goes unused".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use phish_macro::OwnerObservation;
use phish_net::time::{Nanos, SECOND};

/// Parameters of an owner's behaviour.
#[derive(Debug, Clone, Copy)]
pub struct OwnerProfile {
    /// Mean length of a logged-in period.
    pub mean_busy: Nanos,
    /// Mean length of a logged-out period.
    pub mean_idle: Nanos,
    /// Whether the trace starts with the owner logged in.
    pub starts_busy: bool,
    /// Fraction of "away" periods during which the owner *stays logged
    /// in* (locked screen, forgotten session) while the machine does
    /// nothing. The conservative nobody-logged-in policy cannot harvest
    /// these; a load-threshold policy can — the §2 owner-policy trade-off.
    pub lingering_fraction: f64,
}

impl OwnerProfile {
    /// A nine-to-five-ish owner: busy ~45 min at a time, idle ~90 min.
    pub fn office_worker() -> Self {
        Self {
            mean_busy: 45 * 60 * SECOND,
            mean_idle: 90 * 60 * SECOND,
            starts_busy: true,
            lingering_fraction: 0.0,
        }
    }

    /// An office worker who often leaves a session logged in while away.
    pub fn lingering_office_worker(fraction: f64) -> Self {
        Self {
            lingering_fraction: fraction,
            ..Self::office_worker()
        }
    }

    /// A machine that is almost always free (a pool workstation).
    pub fn mostly_idle() -> Self {
        Self {
            mean_busy: 10 * 60 * SECOND,
            mean_idle: 8 * 3600 * SECOND,
            starts_busy: false,
            lingering_fraction: 0.0,
        }
    }

    /// A permanently idle machine (dedicated-cluster mode).
    pub fn always_idle() -> Self {
        Self {
            mean_busy: 0,
            mean_idle: Nanos::MAX / 4,
            starts_busy: false,
            lingering_fraction: 0.0,
        }
    }
}

/// A lazily generated, deterministic owner activity trace.
///
/// Queries must be (weakly) time-ordered, which the event-driven simulator
/// guarantees.
#[derive(Debug)]
pub struct OwnerTrace {
    profile: OwnerProfile,
    rng: SmallRng,
    /// Breakpoints: `(start_time, busy?)`, extended on demand. The first
    /// entry always starts at 0.
    segments: Vec<(Nanos, bool)>,
    /// Start of the segment *after* the last generated one.
    horizon: Nanos,
}

impl OwnerTrace {
    /// A trace for `profile` drawn from `seed`.
    pub fn new(profile: OwnerProfile, seed: u64) -> Self {
        Self {
            profile,
            rng: SmallRng::seed_from_u64(seed),
            segments: vec![(0, profile.starts_busy)],
            horizon: 0,
        }
    }

    fn sample_exp(&mut self, mean: Nanos) -> Nanos {
        if mean == 0 {
            return 1; // degenerate: instant transition
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let d = -(u.ln()) * mean as f64;
        d.min(Nanos::MAX as f64 / 8.0) as Nanos + 1
    }

    fn extend_to(&mut self, t: Nanos) {
        while self.horizon <= t {
            let (_, last_busy) = *self.segments.last().expect("never empty");
            let mean = if last_busy {
                self.profile.mean_busy
            } else {
                self.profile.mean_idle
            };
            let dur = self.sample_exp(mean);
            self.horizon = self.horizon.saturating_add(dur);
            self.segments.push((self.horizon, !last_busy));
        }
    }

    /// Is the owner logged in at time `t`?
    pub fn busy_at(&mut self, t: Nanos) -> bool {
        self.extend_to(t);
        // Last segment starting at or before t.
        let idx = self
            .segments
            .partition_point(|(start, _)| *start <= t)
            .saturating_sub(1);
        self.segments[idx].1
    }

    /// The observation a JobManager would make at `t`.
    pub fn observe(&mut self, t: Nanos) -> OwnerObservation {
        if self.busy_at(t) {
            OwnerObservation {
                users_logged_in: 1,
                cpu_load: 0.6,
            }
        } else if self.lingers_at(t) {
            // Away, but the session is still logged in and nearly idle.
            OwnerObservation {
                users_logged_in: 1,
                cpu_load: 0.03,
            }
        } else {
            OwnerObservation::vacant()
        }
    }

    /// Whether the current away-period has a lingering login. Decided
    /// deterministically per segment from the profile's fraction.
    fn lingers_at(&mut self, t: Nanos) -> bool {
        if self.profile.lingering_fraction <= 0.0 {
            return false;
        }
        self.extend_to(t);
        let idx = self
            .segments
            .partition_point(|(start, _)| *start <= t)
            .saturating_sub(1);
        // Hash the segment index with a golden-ratio multiplier for a
        // deterministic pseudo-random per-segment coin.
        let h = (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let coin = (h >> 11) as f64 / (1u64 << 53) as f64;
        coin < self.profile.lingering_fraction
    }

    /// The time of the first owner-state transition strictly after `t`.
    pub fn next_transition_after(&mut self, t: Nanos) -> Nanos {
        self.extend_to(t);
        loop {
            if let Some(&(start, _)) = self.segments.iter().find(|(start, _)| *start > t) {
                return start;
            }
            self.extend_to(self.horizon + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_idle_never_busy() {
        let mut tr = OwnerTrace::new(OwnerProfile::always_idle(), 1);
        for t in [0, SECOND, 3600 * SECOND, 86_400 * SECOND] {
            assert!(!tr.busy_at(t));
        }
    }

    #[test]
    fn starts_busy_is_respected() {
        let mut tr = OwnerTrace::new(OwnerProfile::office_worker(), 2);
        assert!(tr.busy_at(0));
        let mut tr = OwnerTrace::new(OwnerProfile::mostly_idle(), 2);
        assert!(!tr.busy_at(0));
    }

    #[test]
    fn trace_alternates() {
        let mut tr = OwnerTrace::new(OwnerProfile::office_worker(), 3);
        let t1 = tr.next_transition_after(0);
        let t2 = tr.next_transition_after(t1);
        assert!(t2 > t1);
        assert!(tr.busy_at(0));
        assert!(!tr.busy_at(t1), "first transition flips to idle");
        assert!(tr.busy_at(t2), "second transition flips back");
    }

    #[test]
    fn same_seed_same_trace() {
        let mut a = OwnerTrace::new(OwnerProfile::office_worker(), 42);
        let mut b = OwnerTrace::new(OwnerProfile::office_worker(), 42);
        for i in 0..100 {
            let t = i * 137 * SECOND;
            assert_eq!(a.busy_at(t), b.busy_at(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = OwnerTrace::new(OwnerProfile::office_worker(), 1);
        let mut b = OwnerTrace::new(OwnerProfile::office_worker(), 2);
        let same = (0..200).all(|i| {
            let t = i * 311 * SECOND;
            a.busy_at(t) == b.busy_at(t)
        });
        assert!(!same, "distinct seeds should diverge somewhere");
    }

    #[test]
    fn observation_reflects_login_state() {
        let mut tr = OwnerTrace::new(OwnerProfile::office_worker(), 5);
        let obs = tr.observe(0);
        assert_eq!(obs.users_logged_in, 1);
        let idle_at = tr.next_transition_after(0);
        let obs = tr.observe(idle_at);
        assert_eq!(obs.users_logged_in, 0);
    }

    #[test]
    fn lingering_sessions_show_logged_in_but_quiet() {
        let mut tr = OwnerTrace::new(OwnerProfile::lingering_office_worker(1.0), 3);
        let idle_at = tr.next_transition_after(0); // first away period
        let obs = tr.observe(idle_at);
        assert_eq!(obs.users_logged_in, 1, "session lingers");
        assert!(obs.cpu_load < 0.1, "but the machine is quiet");
        // With fraction 0, the same moment reads vacant.
        let mut tr0 = OwnerTrace::new(OwnerProfile::office_worker(), 3);
        let idle0 = tr0.next_transition_after(0);
        assert_eq!(tr0.observe(idle0).users_logged_in, 0);
    }

    #[test]
    fn lingering_fraction_is_roughly_respected() {
        let mut tr = OwnerTrace::new(OwnerProfile::lingering_office_worker(0.5), 9);
        let mut lingering = 0;
        let mut away = 0;
        let mut t = 0;
        for _ in 0..400 {
            t = tr.next_transition_after(t);
            if !tr.busy_at(t) {
                away += 1;
                if tr.observe(t).users_logged_in == 1 {
                    lingering += 1;
                }
            }
        }
        let frac = lingering as f64 / away as f64;
        assert!((0.3..0.7).contains(&frac), "lingering fraction {frac}");
    }

    #[test]
    fn mean_durations_are_roughly_right() {
        // Statistical sanity: average busy segment ≈ mean_busy (±50%).
        let profile = OwnerProfile {
            mean_busy: 1000 * SECOND,
            mean_idle: 1000 * SECOND,
            starts_busy: true,
            lingering_fraction: 0.0,
        };
        let mut tr = OwnerTrace::new(profile, 7);
        tr.extend_to(4_000_000 * SECOND);
        let n = tr.segments.len() - 1;
        assert!(n > 500, "need many segments, got {n}");
        let total = tr.segments[n].0;
        let avg = total / n as u64;
        assert!(
            (500 * SECOND..1500 * SECOND).contains(&avg),
            "avg segment {avg} vs mean 1000s"
        );
    }
}
