//! Offline stand-in for `criterion`.
//!
//! Implements the criterion 0.5 API shape this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` + `bench_with_input`, `Bencher::iter`, `black_box`,
//! `BenchmarkId`) with a simple auto-calibrating timer: each benchmark is
//! warmed up, then measured over enough iterations to fill a fixed window,
//! and the median per-iteration time is printed. No HTML reports, no
//! statistical regression analysis.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Debug for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call, in nanoseconds.
    last_median_ns: f64,
    measurement_window: Duration,
}

impl Bencher {
    /// Times `routine`, printing nothing; the caller prints the summary.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~1/5 of the window has elapsed, counting
        // iterations to calibrate the batch size.
        let warm_target = self.measurement_window / 5;
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warm_target || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
        // Aim for ~25 samples over the remaining window.
        let sample_iters =
            (self.measurement_window.as_nanos() as u64 / 25 / per_iter.max(1)).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(32);
        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement_window || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..sample_iters {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / sample_iters as f64);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_median_ns = samples[samples.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.measurement_window = window;
        self
    }

    /// Compatibility no-op (sample count is derived from the window here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            last_median_ns: 0.0,
            measurement_window: self.measurement_window,
        };
        f(&mut b);
        println!("{name:<44} time: {}", fmt_ns(b.last_median_ns));
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Compatibility no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` invoking the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_something() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(30));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn ids_format() {
        assert_eq!(format!("{:?}", BenchmarkId::new("f", 3)), "f/3");
        assert_eq!(format!("{:?}", BenchmarkId::from_parameter("x")), "x");
    }
}
