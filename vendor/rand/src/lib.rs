//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of the rand 0.8 API it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over integer and `f64` ranges. The generator is xoshiro256++ seeded via
//! SplitMix64 — the same family rand's `SmallRng` uses on 64-bit targets.
//! Streams are deterministic for a given seed but do **not** bit-match
//! upstream rand.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive; integer or
    /// `f64`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range from which a uniform sample can be drawn.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform sample from `rng`.
    fn sample(self, rng: &mut impl RngCore) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift uniform reduction (bias < 2^-64, fine for
                // scheduling decisions).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as $wide).wrapping_sub(start as $wide) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((start as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
    )*};
}

int_range! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn integer_ranges_are_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
