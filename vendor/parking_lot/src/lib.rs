//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the parking_lot 0.12 surface this workspace uses: a
//! poison-transparent [`Mutex`] whose `lock()` returns the guard directly,
//! and a [`Condvar`] with `wait_until`. Fairness and micro-contention
//! behaviour are whatever `std` provides.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutex whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the `std` guard in an `Option` so [`Condvar::wait_until`] can take
/// it by `&mut` (std's condvar consumes and returns guards by value).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        // Guard is usable again after the wait.
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*done {
            assert!(!cv.wait_until(&mut done, deadline).timed_out());
        }
        h.join().unwrap();
    }
}
