//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate implements the
//! subset of the proptest 1.x API the workspace's property tests use:
//! [`Strategy`] with `prop_map`/`boxed`, `any` for primitives, [`Just`],
//! ranges, tuples, `prop::collection::vec`, `prop::option::of`, the
//! [`proptest!`]/[`prop_oneof!`]/`prop_assert*` macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a fixed per-case seed
//! (fully reproducible, no persisted failure files) and failing inputs are
//! **not shrunk** — the panic message reports the raw failing case instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic RNG driving case generation.

    /// xoshiro256++ seeded per test case; fixed seeds keep CI reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG for the `case`-th execution of a property.
        pub fn for_case(case: u64) -> Self {
            let mut st = 0xC0FF_EE11_D00D_F00Du64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = st;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier scheduler
        // properties inside a reasonable CI budget.
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            pred,
            whence,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    #[allow(clippy::type_complexity)]
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.inner)(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (primitives only in this stand-in).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo as i128 == <$t>::MIN as i128 && hi as i128 == <$t>::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// Weighted choice between boxed strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    choices: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: fmt::Debug> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs.
    pub fn new(choices: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = choices.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { choices, total }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.choices {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection and combinator strategies under the `prop::` path.
pub mod prop {
    /// Strategies for collections.
    pub mod collection {
        use super::super::{fmt, Range, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors whose length is uniform in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                assert!(self.len.start < self.len.end, "empty length range");
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Strategies for `Option`.
    pub mod option {
        use super::super::{fmt, Strategy, TestRng};

        /// Strategy for `Option<S::Value>`; `None` with probability 1/4
        /// (matching upstream's default bias toward `Some`).
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `Some` from `inner` most of the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Weighted or unweighted choice between strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines `#[test]` functions that run a body over generated inputs.
///
/// Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    let __case_desc = format!(
                        concat!("case ", "{}", $(concat!(": ", stringify!($arg), " = {:?}")),+),
                        __case $(, &$arg)+
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(e) = __result {
                        eprintln!("proptest failure in {}: {}", stringify!($name), __case_desc);
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in -4i64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_work(
            v in prop_oneof![
                3 => any::<u32>().prop_map(|x| (x % 10) as u64),
                1 => Just(99u64),
            ],
            opt in prop::option::of(1u32..6),
        ) {
            prop_assert!(v < 10 || v == 99);
            if let Some(o) = opt {
                prop_assert!((1..6).contains(&o));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_limits_cases(_x in 0u8..=255) {
            // Compiles and runs with an explicit config and inclusive range.
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = (0..4).map(|c| TestRng::for_case(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| TestRng::for_case(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}
