//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build container has no crates.io access, so this crate implements the
//! slice of crossbeam 0.8 the workspace uses — [`channel`] (unbounded MPMC
//! with timeouts and disconnect semantics), [`queue::SegQueue`], and
//! [`deque`] (Chase–Lev-shaped owner/stealer API) — on top of `std::sync`.
//! Semantics (blocking, disconnection, steal outcomes) match upstream; the
//! lock-free performance characteristics do not.

pub mod channel {
    //! Unbounded MPMC channels with `std::sync::mpsc`-style error types.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.inner.lock().push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::Acquire) == 0
        }

        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.lock();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks until a message arrives, every sender disconnects, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

pub mod queue {
    //! Concurrent queues.

    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// An unbounded MPMC FIFO queue (upstream: lock-free segmented; here a
    /// mutexed ring buffer with the same API and ordering).
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Enqueues `value` at the back.
        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        /// Dequeues from the front.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }
}

pub mod deque {
    //! Work-stealing deques with the Chase–Lev owner/stealer API shape.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// The outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The deque was observed empty.
        Empty,
        /// The attempt lost a race; retry.
        Retry,
    }

    struct Buf<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Buf<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The owner's handle: LIFO push/pop at the back.
    pub struct Worker<T> {
        buf: Arc<Buf<T>>,
    }

    /// A thief's handle: FIFO steals from the front.
    pub struct Stealer<T> {
        buf: Arc<Buf<T>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO worker deque.
        pub fn new_lifo() -> Self {
            Worker {
                buf: Arc::new(Buf {
                    inner: Mutex::new(VecDeque::new()),
                }),
            }
        }

        /// Pushes onto the owner's end.
        pub fn push(&self, value: T) {
            self.buf.lock().push_back(value);
        }

        /// Pops from the owner's end (most recent push first).
        pub fn pop(&self) -> Option<T> {
            self.buf.lock().pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.buf.lock().is_empty()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                buf: Arc::clone(&self.buf),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest element.
        pub fn steal(&self) -> Steal<T> {
            match self.buf.lock().pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                buf: Arc::clone(&self.buf),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn channel_blocking_recv_crosses_threads() {
        let (tx, rx) = channel::unbounded();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn segqueue_is_fifo() {
        let q = queue::SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn deque_owner_lifo_thief_fifo() {
        let w = deque::Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert!(matches!(s.steal(), deque::Steal::Success(1)));
        assert_eq!(w.pop(), Some(2));
        assert!(matches!(s.steal(), deque::Steal::Empty));
    }
}
