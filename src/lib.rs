#![warn(missing_docs)]

//! # Phish-RS
//!
//! A Rust reproduction of **"Scheduling Large-Scale Parallel Computations
//! on Networks of Workstations"** (Robert D. Blumofe and David S. Park,
//! HPDC '94) — the *Phish* system, the direct precursor of Cilk and of the
//! work-stealing schedulers in Rayon, TBB, and ForkJoinPool.
//!
//! Phish schedules dynamic parallel computations over a network of
//! workstations with **idle-initiated** scheduling at two levels:
//!
//! * **Macro** ([`machine`]): idle workstations pull jobs from a central
//!   pool; owners retain sovereignty; space-sharing is preferred over
//!   time-sharing; workstations join and leave computations as both idle
//!   cycles and parallelism come and go.
//! * **Micro** ([`scheduler`]): each participant executes its local ready
//!   tasks in LIFO order and steals from uniformly random victims in FIFO
//!   order, preserving memory and communication locality.
//!
//! This facade re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`scheduler`] | `phish-core` | micro-level work stealing (engines, deques, join cells, stats) |
//! | [`machine`] | `phish-macro` | JobQ, JobManager, idleness policies, Clearinghouse |
//! | [`net`] | `phish-net` | transports: channels, lossy datagrams, retransmission, split-phase |
//! | [`sim`] | `phish-sim` | deterministic discrete-event simulator (fleet, microsim, sharing) |
//! | [`ft`] | `phish-ft` | steal ledgers and the crash-recovering engine |
//! | [`apps`] | `phish-apps` | fib, nqueens, pfold, ray — serial, parallel, and spec forms |
//! | [`proc`] | `phish-proc` | multi-process runtime: `phishd`/`phish-worker` over real UDP |
//!
//! ## Quickstart
//!
//! ```
//! use phish::scheduler::{Cont, Engine, SchedulerConfig};
//! use phish::apps::fib_task;
//!
//! let (value, stats) = Engine::run(SchedulerConfig::paper(4), fib_task(20, Cont::ROOT));
//! assert_eq!(value, 6765);
//! println!("{stats}"); // the Table 2 statistics block
//! ```

pub mod livejob;

pub use livejob::SpecPoolJob;

/// Micro-level scheduler (re-export of `phish-core`).
pub mod scheduler {
    pub use phish_core::*;
}

/// Macro-level scheduler (re-export of `phish-macro`).
pub mod machine {
    pub use phish_macro::*;
}

/// Network substrate (re-export of `phish-net`).
pub mod net {
    pub use phish_net::*;
}

/// Discrete-event simulator (re-export of `phish-sim`).
pub mod sim {
    pub use phish_sim::*;
}

/// Fault tolerance (re-export of `phish-ft`).
pub mod ft {
    pub use phish_ft::*;
}

/// Applications (re-export of `phish-apps`).
pub mod apps {
    pub use phish_apps::*;
}

/// Multi-process runtime (re-export of `phish-proc`).
pub mod proc {
    pub use phish_proc::*;
}
