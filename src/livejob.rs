//! A spec-task job for the live deployment: the glue between the
//! macro level (workstations joining and leaving) and the micro level
//! (a dynamic pool of self-describing tasks).
//!
//! [`SpecPoolJob`] holds a job's shared state — a frontier of ready specs,
//! an outstanding-task counter, and the merged partial result — and
//! implements [`WorkerBody`] so any number of workstations can participate
//! concurrently, join mid-run, and leave at any moment:
//!
//! * an **evicted** participant pushes its unexecuted local tasks back to
//!   the shared frontier before leaving ("the process's data migrates
//!   before termination to another process of the same parallel job", §2);
//! * a participant that finds the frontier empty while others still hold
//!   work exits with `ParallelismShrank`, releasing its workstation to the
//!   macro scheduler ("as the parallelism in an application shrinks, some
//!   of its participating processes die", §2);
//! * the last task's completion marks the job finished for everyone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use phish_core::{SpecStep, SpecTask};
use phish_macro::{ParticipantExit, WorkerBody};

/// Shared state of one spec job running under a [`phish_macro::Deployment`].
pub struct SpecPoolJob<S: SpecTask> {
    frontier: Mutex<Vec<S>>,
    /// Specs spawned but not yet stepped (including those in participants'
    /// local stacks). Zero ⇒ job complete.
    outstanding: AtomicU64,
    acc: Mutex<S::Output>,
    done: AtomicBool,
    /// Failed frontier grabs before a participant decides parallelism
    /// shrank.
    patience: u32,
    /// How many tasks a participant takes from the frontier per grab.
    grab: usize,
}

impl<S: SpecTask> SpecPoolJob<S> {
    /// A job rooted at `root`.
    pub fn new(root: S) -> Self {
        Self {
            frontier: Mutex::new(vec![root]),
            outstanding: AtomicU64::new(1),
            acc: Mutex::new(S::identity()),
            done: AtomicBool::new(false),
            patience: 50,
            grab: 4,
        }
    }

    /// True once every task has executed.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Takes the final result; panics if the job is not done. Idempotent
    /// callers should take it once.
    pub fn take_result(&self) -> S::Output {
        assert!(self.is_done(), "job not finished");
        std::mem::replace(&mut *self.acc.lock(), S::identity())
    }

    fn merge_into_global(&self, local: S::Output) {
        let mut acc = self.acc.lock();
        let old = std::mem::replace(&mut *acc, S::identity());
        *acc = S::merge(old, local);
    }

    fn finish_tasks(&self, n: u64) {
        if self.outstanding.fetch_sub(n, Ordering::AcqRel) == n {
            self.done.store(true, Ordering::Release);
        }
    }
}

impl<S: SpecTask> WorkerBody for SpecPoolJob<S> {
    fn run(&self, _ws: usize, evict: &std::sync::atomic::AtomicBool) -> ParticipantExit {
        let mut local: Vec<S> = Vec::new();
        let mut local_acc = S::identity();
        let mut dry_grabs = 0u32;
        loop {
            if evict.load(Ordering::Acquire) {
                // Data migration: unfinished tasks go back to the pool.
                if !local.is_empty() {
                    self.frontier.lock().append(&mut local);
                }
                self.merge_into_global(local_acc);
                return ParticipantExit::Evicted;
            }
            if self.is_done() {
                self.merge_into_global(local_acc);
                return ParticipantExit::JobFinished;
            }
            let Some(spec) = local.pop() else {
                // Local stack dry: grab a batch from the shared frontier
                // (the macro-level analogue of stealing).
                let mut f = self.frontier.lock();
                let n = f.len().min(self.grab);
                if n == 0 {
                    drop(f);
                    dry_grabs += 1;
                    if dry_grabs > self.patience {
                        // Parallelism shrank below the participant count.
                        self.merge_into_global(local_acc);
                        return ParticipantExit::ParallelismShrank;
                    }
                    std::thread::yield_now();
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    continue;
                }
                let split_at = f.len() - n;
                local.extend(f.drain(split_at..));
                drop(f);
                dry_grabs = 0;
                continue;
            };
            match spec.step() {
                SpecStep::Leaf(out) => {
                    local_acc = S::merge(local_acc, out);
                    self.finish_tasks(1);
                }
                SpecStep::Expand { children, partial } => {
                    local_acc = S::merge(local_acc, partial);
                    self.outstanding
                        .fetch_add(children.len() as u64, Ordering::AcqRel);
                    local.extend(children);
                    self.finish_tasks(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use phish_apps::pfold::{pfold_serial, PfoldSpec};
    use phish_apps::{nqueens_serial, NQueensSpec};
    use phish_macro::{Deployment, DeploymentConfig, JobSpec, OwnerScript};

    #[test]
    fn spec_pool_job_completes_exactly() {
        let dep = Deployment::start(DeploymentConfig::dedicated(3));
        let job = Arc::new(SpecPoolJob::new(PfoldSpec::new(11, 6)));
        let id = dep.submit(JobSpec::named("pfold"), Arc::clone(&job) as _);
        assert!(dep.wait_job(id, Duration::from_secs(30)), "job timed out");
        assert!(job.is_done());
        assert_eq!(job.take_result(), pfold_serial(11));
        dep.shutdown();
    }

    #[test]
    fn eviction_migrates_work_and_result_stays_exact() {
        // Workstation 0's owner returns after 50ms and stays; the job is
        // big enough to still be running then. The remaining workstation
        // finishes everything the evicted one returned to the pool.
        let owner: OwnerScript = Arc::new(|t| t > 50_000_000);
        let cfg = DeploymentConfig::dedicated(2).with_owner(0, owner);
        let dep = Deployment::start(cfg);
        let job = Arc::new(SpecPoolJob::new(NQueensSpec::new(11, 5)));
        let id = dep.submit(JobSpec::named("nqueens"), Arc::clone(&job) as _);
        assert!(dep.wait_job(id, Duration::from_secs(60)), "job timed out");
        assert_eq!(job.take_result(), nqueens_serial(11));
        dep.shutdown();
    }

    #[test]
    fn participants_leave_when_parallelism_shrinks() {
        // A tiny job on many workstations: most participants find the pool
        // dry and exit with ParallelismShrank.
        let dep = Deployment::start(DeploymentConfig::dedicated(4));
        let job = Arc::new(SpecPoolJob::new(PfoldSpec::new(7, 4)));
        let id = dep.submit(JobSpec::named("tiny"), Arc::clone(&job) as _);
        assert!(dep.wait_job(id, Duration::from_secs(30)));
        assert_eq!(job.take_result(), pfold_serial(7));
        let stats = dep.shutdown();
        assert!(
            stats.finished_exits >= 1,
            "someone must finish the job: {stats:?}"
        );
    }
}
