/root/repo/target/release/deps/phish_ft-a3ab6a824ddcccb0.d: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

/root/repo/target/release/deps/libphish_ft-a3ab6a824ddcccb0.rlib: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

/root/repo/target/release/deps/libphish_ft-a3ab6a824ddcccb0.rmeta: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

crates/ft/src/lib.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/engine.rs:
crates/ft/src/ledger.rs:
