/root/repo/target/release/deps/apps_equivalence-836a19e6e2238805.d: tests/apps_equivalence.rs

/root/repo/target/release/deps/apps_equivalence-836a19e6e2238805: tests/apps_equivalence.rs

tests/apps_equivalence.rs:
