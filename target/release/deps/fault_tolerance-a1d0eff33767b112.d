/root/repo/target/release/deps/fault_tolerance-a1d0eff33767b112.d: crates/bench/src/bin/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-a1d0eff33767b112: crates/bench/src/bin/fault_tolerance.rs

crates/bench/src/bin/fault_tolerance.rs:
