/root/repo/target/release/deps/rand-2506783419672046.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-2506783419672046.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-2506783419672046.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
