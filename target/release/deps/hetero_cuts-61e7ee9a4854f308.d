/root/repo/target/release/deps/hetero_cuts-61e7ee9a4854f308.d: crates/bench/src/bin/hetero_cuts.rs

/root/repo/target/release/deps/hetero_cuts-61e7ee9a4854f308: crates/bench/src/bin/hetero_cuts.rs

crates/bench/src/bin/hetero_cuts.rs:
