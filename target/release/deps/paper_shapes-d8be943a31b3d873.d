/root/repo/target/release/deps/paper_shapes-d8be943a31b3d873.d: tests/paper_shapes.rs

/root/repo/target/release/deps/paper_shapes-d8be943a31b3d873: tests/paper_shapes.rs

tests/paper_shapes.rs:
