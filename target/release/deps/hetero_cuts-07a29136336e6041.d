/root/repo/target/release/deps/hetero_cuts-07a29136336e6041.d: crates/bench/src/bin/hetero_cuts.rs

/root/repo/target/release/deps/hetero_cuts-07a29136336e6041: crates/bench/src/bin/hetero_cuts.rs

crates/bench/src/bin/hetero_cuts.rs:
