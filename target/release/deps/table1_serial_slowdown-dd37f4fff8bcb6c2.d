/root/repo/target/release/deps/table1_serial_slowdown-dd37f4fff8bcb6c2.d: crates/bench/src/bin/table1_serial_slowdown.rs

/root/repo/target/release/deps/table1_serial_slowdown-dd37f4fff8bcb6c2: crates/bench/src/bin/table1_serial_slowdown.rs

crates/bench/src/bin/table1_serial_slowdown.rs:
