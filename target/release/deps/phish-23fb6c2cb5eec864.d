/root/repo/target/release/deps/phish-23fb6c2cb5eec864.d: src/lib.rs src/livejob.rs

/root/repo/target/release/deps/phish-23fb6c2cb5eec864: src/lib.rs src/livejob.rs

src/lib.rs:
src/livejob.rs:
