/root/repo/target/release/deps/phish_bench-57a9044e76a3f68c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/phish_bench-57a9044e76a3f68c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
