/root/repo/target/release/deps/proc_e2e-b39333abc8ed5df0.d: crates/proc/tests/proc_e2e.rs

/root/repo/target/release/deps/proc_e2e-b39333abc8ed5df0: crates/proc/tests/proc_e2e.rs

crates/proc/tests/proc_e2e.rs:

# env-dep:CARGO_BIN_EXE_phish-worker=/root/repo/target/release/phish-worker
