/root/repo/target/release/deps/rpc_services-836357e46e59c6f1.d: tests/rpc_services.rs

/root/repo/target/release/deps/rpc_services-836357e46e59c6f1: tests/rpc_services.rs

tests/rpc_services.rs:
