/root/repo/target/release/deps/scale_conjecture-66b58e9c2d9d96be.d: crates/bench/src/bin/scale_conjecture.rs

/root/repo/target/release/deps/scale_conjecture-66b58e9c2d9d96be: crates/bench/src/bin/scale_conjecture.rs

crates/bench/src/bin/scale_conjecture.rs:
