/root/repo/target/release/deps/macro_policies-364f472062191f21.d: crates/bench/src/bin/macro_policies.rs

/root/repo/target/release/deps/macro_policies-364f472062191f21: crates/bench/src/bin/macro_policies.rs

crates/bench/src/bin/macro_policies.rs:
