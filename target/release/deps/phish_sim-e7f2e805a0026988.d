/root/repo/target/release/deps/phish_sim-e7f2e805a0026988.d: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

/root/repo/target/release/deps/phish_sim-e7f2e805a0026988: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

crates/sim/src/lib.rs:
crates/sim/src/events.rs:
crates/sim/src/fleet.rs:
crates/sim/src/microsim.rs:
crates/sim/src/netmodel.rs:
crates/sim/src/sharing.rs:
crates/sim/src/workstation.rs:
