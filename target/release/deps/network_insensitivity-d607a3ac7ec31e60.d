/root/repo/target/release/deps/network_insensitivity-d607a3ac7ec31e60.d: crates/bench/src/bin/network_insensitivity.rs

/root/repo/target/release/deps/network_insensitivity-d607a3ac7ec31e60: crates/bench/src/bin/network_insensitivity.rs

crates/bench/src/bin/network_insensitivity.rs:
