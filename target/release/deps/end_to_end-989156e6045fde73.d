/root/repo/target/release/deps/end_to_end-989156e6045fde73.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-989156e6045fde73: tests/end_to_end.rs

tests/end_to_end.rs:
