/root/repo/target/release/deps/phishd-b0c7c88cafd4572b.d: crates/proc/src/bin/phishd.rs

/root/repo/target/release/deps/phishd-b0c7c88cafd4572b: crates/proc/src/bin/phishd.rs

crates/proc/src/bin/phishd.rs:
