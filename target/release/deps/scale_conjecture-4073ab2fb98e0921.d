/root/repo/target/release/deps/scale_conjecture-4073ab2fb98e0921.d: crates/bench/src/bin/scale_conjecture.rs

/root/repo/target/release/deps/scale_conjecture-4073ab2fb98e0921: crates/bench/src/bin/scale_conjecture.rs

crates/bench/src/bin/scale_conjecture.rs:
