/root/repo/target/release/deps/phish_macro-fb178eab32c14043.d: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

/root/repo/target/release/deps/phish_macro-fb178eab32c14043: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

crates/macro/src/lib.rs:
crates/macro/src/clearinghouse.rs:
crates/macro/src/clearinghouse_service.rs:
crates/macro/src/deployment.rs:
crates/macro/src/idleness.rs:
crates/macro/src/jobmanager.rs:
crates/macro/src/jobq.rs:
crates/macro/src/jobq_service.rs:
