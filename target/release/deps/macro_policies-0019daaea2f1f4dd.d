/root/repo/target/release/deps/macro_policies-0019daaea2f1f4dd.d: crates/bench/src/bin/macro_policies.rs

/root/repo/target/release/deps/macro_policies-0019daaea2f1f4dd: crates/bench/src/bin/macro_policies.rs

crates/bench/src/bin/macro_policies.rs:
