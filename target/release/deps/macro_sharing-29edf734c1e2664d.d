/root/repo/target/release/deps/macro_sharing-29edf734c1e2664d.d: crates/bench/src/bin/macro_sharing.rs

/root/repo/target/release/deps/macro_sharing-29edf734c1e2664d: crates/bench/src/bin/macro_sharing.rs

crates/bench/src/bin/macro_sharing.rs:
