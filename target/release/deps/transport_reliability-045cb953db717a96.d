/root/repo/target/release/deps/transport_reliability-045cb953db717a96.d: tests/transport_reliability.rs

/root/repo/target/release/deps/transport_reliability-045cb953db717a96: tests/transport_reliability.rs

tests/transport_reliability.rs:
