/root/repo/target/release/deps/fig5_pfold_speedup-10f0cfed0b010c8b.d: crates/bench/src/bin/fig5_pfold_speedup.rs

/root/repo/target/release/deps/fig5_pfold_speedup-10f0cfed0b010c8b: crates/bench/src/bin/fig5_pfold_speedup.rs

crates/bench/src/bin/fig5_pfold_speedup.rs:
