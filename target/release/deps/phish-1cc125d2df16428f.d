/root/repo/target/release/deps/phish-1cc125d2df16428f.d: src/lib.rs src/livejob.rs

/root/repo/target/release/deps/libphish-1cc125d2df16428f.rlib: src/lib.rs src/livejob.rs

/root/repo/target/release/deps/libphish-1cc125d2df16428f.rmeta: src/lib.rs src/livejob.rs

src/lib.rs:
src/livejob.rs:
