/root/repo/target/release/deps/rand-0858737a1d5e1920.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-0858737a1d5e1920: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
