/root/repo/target/release/deps/engine-10466bc834fb5fe6.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-10466bc834fb5fe6: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
