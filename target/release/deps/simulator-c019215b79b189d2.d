/root/repo/target/release/deps/simulator-c019215b79b189d2.d: tests/simulator.rs

/root/repo/target/release/deps/simulator-c019215b79b189d2: tests/simulator.rs

tests/simulator.rs:
