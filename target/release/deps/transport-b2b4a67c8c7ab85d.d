/root/repo/target/release/deps/transport-b2b4a67c8c7ab85d.d: crates/bench/benches/transport.rs

/root/repo/target/release/deps/transport-b2b4a67c8c7ab85d: crates/bench/benches/transport.rs

crates/bench/benches/transport.rs:
