/root/repo/target/release/deps/table2_pfold_stats-366159f56e233849.d: crates/bench/src/bin/table2_pfold_stats.rs

/root/repo/target/release/deps/table2_pfold_stats-366159f56e233849: crates/bench/src/bin/table2_pfold_stats.rs

crates/bench/src/bin/table2_pfold_stats.rs:
