/root/repo/target/release/deps/phish_net-ca0db477ee9671cb.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs

/root/repo/target/release/deps/libphish_net-ca0db477ee9671cb.rlib: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs

/root/repo/target/release/deps/libphish_net-ca0db477ee9671cb.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/rpc.rs:
crates/net/src/splitphase.rs:
crates/net/src/time.rs:
crates/net/src/udp.rs:
