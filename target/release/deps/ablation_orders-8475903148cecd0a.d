/root/repo/target/release/deps/ablation_orders-8475903148cecd0a.d: crates/bench/src/bin/ablation_orders.rs

/root/repo/target/release/deps/ablation_orders-8475903148cecd0a: crates/bench/src/bin/ablation_orders.rs

crates/bench/src/bin/ablation_orders.rs:
