/root/repo/target/release/deps/fig5_pfold_speedup-7d2c99d2005445dc.d: crates/bench/src/bin/fig5_pfold_speedup.rs

/root/repo/target/release/deps/fig5_pfold_speedup-7d2c99d2005445dc: crates/bench/src/bin/fig5_pfold_speedup.rs

crates/bench/src/bin/fig5_pfold_speedup.rs:
