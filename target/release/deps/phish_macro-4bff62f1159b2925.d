/root/repo/target/release/deps/phish_macro-4bff62f1159b2925.d: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

/root/repo/target/release/deps/libphish_macro-4bff62f1159b2925.rlib: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

/root/repo/target/release/deps/libphish_macro-4bff62f1159b2925.rmeta: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

crates/macro/src/lib.rs:
crates/macro/src/clearinghouse.rs:
crates/macro/src/clearinghouse_service.rs:
crates/macro/src/deployment.rs:
crates/macro/src/idleness.rs:
crates/macro/src/jobmanager.rs:
crates/macro/src/jobq.rs:
crates/macro/src/jobq_service.rs:
