/root/repo/target/release/deps/phish-f5b3bbb392b9eac7.d: src/lib.rs src/livejob.rs

/root/repo/target/release/deps/libphish-f5b3bbb392b9eac7.rlib: src/lib.rs src/livejob.rs

/root/repo/target/release/deps/libphish-f5b3bbb392b9eac7.rmeta: src/lib.rs src/livejob.rs

src/lib.rs:
src/livejob.rs:
