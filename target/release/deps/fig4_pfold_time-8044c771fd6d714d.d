/root/repo/target/release/deps/fig4_pfold_time-8044c771fd6d714d.d: crates/bench/src/bin/fig4_pfold_time.rs

/root/repo/target/release/deps/fig4_pfold_time-8044c771fd6d714d: crates/bench/src/bin/fig4_pfold_time.rs

crates/bench/src/bin/fig4_pfold_time.rs:
