/root/repo/target/release/deps/table1_serial_slowdown-817ad0db4c4b45f9.d: crates/bench/src/bin/table1_serial_slowdown.rs

/root/repo/target/release/deps/table1_serial_slowdown-817ad0db4c4b45f9: crates/bench/src/bin/table1_serial_slowdown.rs

crates/bench/src/bin/table1_serial_slowdown.rs:
