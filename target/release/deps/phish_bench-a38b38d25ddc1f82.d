/root/repo/target/release/deps/phish_bench-a38b38d25ddc1f82.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libphish_bench-a38b38d25ddc1f82.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libphish_bench-a38b38d25ddc1f82.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
