/root/repo/target/release/deps/fig4_pfold_time-dc2d0fdf958478e4.d: crates/bench/src/bin/fig4_pfold_time.rs

/root/repo/target/release/deps/fig4_pfold_time-dc2d0fdf958478e4: crates/bench/src/bin/fig4_pfold_time.rs

crates/bench/src/bin/fig4_pfold_time.rs:
