/root/repo/target/release/deps/phish_net-235e0ae37f405994.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/delayed.rs crates/net/src/lossy.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/reliable.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs

/root/repo/target/release/deps/phish_net-235e0ae37f405994: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/delayed.rs crates/net/src/lossy.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/reliable.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/delayed.rs:
crates/net/src/lossy.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/reliable.rs:
crates/net/src/rpc.rs:
crates/net/src/splitphase.rs:
crates/net/src/time.rs:
