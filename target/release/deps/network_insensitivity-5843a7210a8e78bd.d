/root/repo/target/release/deps/network_insensitivity-5843a7210a8e78bd.d: crates/bench/src/bin/network_insensitivity.rs

/root/repo/target/release/deps/network_insensitivity-5843a7210a8e78bd: crates/bench/src/bin/network_insensitivity.rs

crates/bench/src/bin/network_insensitivity.rs:
