/root/repo/target/release/deps/phish_proc-7749199eb84959db.d: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs

/root/repo/target/release/deps/libphish_proc-7749199eb84959db.rlib: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs

/root/repo/target/release/deps/libphish_proc-7749199eb84959db.rmeta: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs

crates/proc/src/lib.rs:
crates/proc/src/app.rs:
crates/proc/src/deploy.rs:
crates/proc/src/driver.rs:
crates/proc/src/proto.rs:
crates/proc/src/signal.rs:
crates/proc/src/worker.rs:
