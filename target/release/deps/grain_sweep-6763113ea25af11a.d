/root/repo/target/release/deps/grain_sweep-6763113ea25af11a.d: crates/bench/src/bin/grain_sweep.rs

/root/repo/target/release/deps/grain_sweep-6763113ea25af11a: crates/bench/src/bin/grain_sweep.rs

crates/bench/src/bin/grain_sweep.rs:
