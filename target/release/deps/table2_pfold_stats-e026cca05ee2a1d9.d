/root/repo/target/release/deps/table2_pfold_stats-e026cca05ee2a1d9.d: crates/bench/src/bin/table2_pfold_stats.rs

/root/repo/target/release/deps/table2_pfold_stats-e026cca05ee2a1d9: crates/bench/src/bin/table2_pfold_stats.rs

crates/bench/src/bin/table2_pfold_stats.rs:
