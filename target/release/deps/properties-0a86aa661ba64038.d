/root/repo/target/release/deps/properties-0a86aa661ba64038.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-0a86aa661ba64038: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
