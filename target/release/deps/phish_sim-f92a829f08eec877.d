/root/repo/target/release/deps/phish_sim-f92a829f08eec877.d: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

/root/repo/target/release/deps/libphish_sim-f92a829f08eec877.rlib: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

/root/repo/target/release/deps/libphish_sim-f92a829f08eec877.rmeta: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

crates/sim/src/lib.rs:
crates/sim/src/events.rs:
crates/sim/src/fleet.rs:
crates/sim/src/microsim.rs:
crates/sim/src/netmodel.rs:
crates/sim/src/sharing.rs:
crates/sim/src/workstation.rs:
