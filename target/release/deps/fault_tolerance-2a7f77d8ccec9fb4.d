/root/repo/target/release/deps/fault_tolerance-2a7f77d8ccec9fb4.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-2a7f77d8ccec9fb4: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
