/root/repo/target/release/deps/grain_sweep-5257458db3d4a456.d: crates/bench/src/bin/grain_sweep.rs

/root/repo/target/release/deps/grain_sweep-5257458db3d4a456: crates/bench/src/bin/grain_sweep.rs

crates/bench/src/bin/grain_sweep.rs:
