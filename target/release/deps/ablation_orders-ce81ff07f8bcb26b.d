/root/repo/target/release/deps/ablation_orders-ce81ff07f8bcb26b.d: crates/bench/src/bin/ablation_orders.rs

/root/repo/target/release/deps/ablation_orders-ce81ff07f8bcb26b: crates/bench/src/bin/ablation_orders.rs

crates/bench/src/bin/ablation_orders.rs:
