/root/repo/target/release/deps/idleness_policies-ab59ce7410ffa136.d: crates/bench/src/bin/idleness_policies.rs

/root/repo/target/release/deps/idleness_policies-ab59ce7410ffa136: crates/bench/src/bin/idleness_policies.rs

crates/bench/src/bin/idleness_policies.rs:
