/root/repo/target/release/deps/fault_tolerance-24b95a3bfcbb66f3.d: crates/bench/src/bin/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-24b95a3bfcbb66f3: crates/bench/src/bin/fault_tolerance.rs

crates/bench/src/bin/fault_tolerance.rs:
