/root/repo/target/release/deps/phish_worker-01d305ed75e4df30.d: crates/proc/src/bin/phish-worker.rs

/root/repo/target/release/deps/phish_worker-01d305ed75e4df30: crates/proc/src/bin/phish-worker.rs

crates/proc/src/bin/phish-worker.rs:
