/root/repo/target/release/deps/phish_ft-be9108416b096843.d: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

/root/repo/target/release/deps/phish_ft-be9108416b096843: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

crates/ft/src/lib.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/engine.rs:
crates/ft/src/ledger.rs:
