/root/repo/target/release/deps/idleness_policies-1b783eabd9ec3e4e.d: crates/bench/src/bin/idleness_policies.rs

/root/repo/target/release/deps/idleness_policies-1b783eabd9ec3e4e: crates/bench/src/bin/idleness_policies.rs

crates/bench/src/bin/idleness_policies.rs:
