/root/repo/target/release/deps/jobq_properties-6fe647e8750a7345.d: crates/macro/tests/jobq_properties.rs

/root/repo/target/release/deps/jobq_properties-6fe647e8750a7345: crates/macro/tests/jobq_properties.rs

crates/macro/tests/jobq_properties.rs:
