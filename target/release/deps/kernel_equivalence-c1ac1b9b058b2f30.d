/root/repo/target/release/deps/kernel_equivalence-c1ac1b9b058b2f30.d: tests/kernel_equivalence.rs

/root/repo/target/release/deps/kernel_equivalence-c1ac1b9b058b2f30: tests/kernel_equivalence.rs

tests/kernel_equivalence.rs:
