/root/repo/target/release/deps/macro_sharing-3c35c149bb0b616a.d: crates/bench/src/bin/macro_sharing.rs

/root/repo/target/release/deps/macro_sharing-3c35c149bb0b616a: crates/bench/src/bin/macro_sharing.rs

crates/bench/src/bin/macro_sharing.rs:
