/root/repo/target/release/examples/checkpoint_restart-b169a341717674b2.d: examples/checkpoint_restart.rs

/root/repo/target/release/examples/checkpoint_restart-b169a341717674b2: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
