/root/repo/target/release/examples/hp_protein-e27ff3e68e9fb5d6.d: examples/hp_protein.rs

/root/repo/target/release/examples/hp_protein-e27ff3e68e9fb5d6: examples/hp_protein.rs

examples/hp_protein.rs:
