/root/repo/target/release/examples/quickstart-4b5060ce66d069e5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-4b5060ce66d069e5: examples/quickstart.rs

examples/quickstart.rs:
