/root/repo/target/release/examples/live_deployment-8c8b37a78a4549f8.d: examples/live_deployment.rs

/root/repo/target/release/examples/live_deployment-8c8b37a78a4549f8: examples/live_deployment.rs

examples/live_deployment.rs:
