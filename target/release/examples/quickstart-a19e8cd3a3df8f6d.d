/root/repo/target/release/examples/quickstart-a19e8cd3a3df8f6d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a19e8cd3a3df8f6d: examples/quickstart.rs

examples/quickstart.rs:
