/root/repo/target/release/examples/trace_dump-f47cc8eec72d6936.d: examples/trace_dump.rs

/root/repo/target/release/examples/trace_dump-f47cc8eec72d6936: examples/trace_dump.rs

examples/trace_dump.rs:
