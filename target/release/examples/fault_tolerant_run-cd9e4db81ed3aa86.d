/root/repo/target/release/examples/fault_tolerant_run-cd9e4db81ed3aa86.d: examples/fault_tolerant_run.rs

/root/repo/target/release/examples/fault_tolerant_run-cd9e4db81ed3aa86: examples/fault_tolerant_run.rs

examples/fault_tolerant_run.rs:
