/root/repo/target/release/examples/_dbg_fleet-96bf5f09a21b82f1.d: examples/_dbg_fleet.rs

/root/repo/target/release/examples/_dbg_fleet-96bf5f09a21b82f1: examples/_dbg_fleet.rs

examples/_dbg_fleet.rs:
