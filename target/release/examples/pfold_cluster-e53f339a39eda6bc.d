/root/repo/target/release/examples/pfold_cluster-e53f339a39eda6bc.d: examples/pfold_cluster.rs

/root/repo/target/release/examples/pfold_cluster-e53f339a39eda6bc: examples/pfold_cluster.rs

examples/pfold_cluster.rs:
