/root/repo/target/release/examples/raytrace_scene-f10f5a6f12dacd6d.d: examples/raytrace_scene.rs

/root/repo/target/release/examples/raytrace_scene-f10f5a6f12dacd6d: examples/raytrace_scene.rs

examples/raytrace_scene.rs:
