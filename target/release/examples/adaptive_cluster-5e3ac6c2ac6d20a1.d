/root/repo/target/release/examples/adaptive_cluster-5e3ac6c2ac6d20a1.d: examples/adaptive_cluster.rs

/root/repo/target/release/examples/adaptive_cluster-5e3ac6c2ac6d20a1: examples/adaptive_cluster.rs

examples/adaptive_cluster.rs:
