/root/repo/target/debug/examples/hp_protein-95c2a207269f7361.d: examples/hp_protein.rs

/root/repo/target/debug/examples/hp_protein-95c2a207269f7361: examples/hp_protein.rs

examples/hp_protein.rs:
