/root/repo/target/debug/examples/fault_tolerant_run-d4f8a0c1165ea20f.d: examples/fault_tolerant_run.rs

/root/repo/target/debug/examples/fault_tolerant_run-d4f8a0c1165ea20f: examples/fault_tolerant_run.rs

examples/fault_tolerant_run.rs:
