/root/repo/target/debug/examples/raytrace_scene-edd15ff2f0d7c503.d: examples/raytrace_scene.rs

/root/repo/target/debug/examples/raytrace_scene-edd15ff2f0d7c503: examples/raytrace_scene.rs

examples/raytrace_scene.rs:
