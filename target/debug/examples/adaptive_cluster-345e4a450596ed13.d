/root/repo/target/debug/examples/adaptive_cluster-345e4a450596ed13.d: examples/adaptive_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_cluster-345e4a450596ed13.rmeta: examples/adaptive_cluster.rs Cargo.toml

examples/adaptive_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
