/root/repo/target/debug/examples/pfold_cluster-6e7dc1519f3f0013.d: examples/pfold_cluster.rs

/root/repo/target/debug/examples/pfold_cluster-6e7dc1519f3f0013: examples/pfold_cluster.rs

examples/pfold_cluster.rs:
