/root/repo/target/debug/examples/adaptive_cluster-b0dfbd325f38181e.d: examples/adaptive_cluster.rs

/root/repo/target/debug/examples/adaptive_cluster-b0dfbd325f38181e: examples/adaptive_cluster.rs

examples/adaptive_cluster.rs:
