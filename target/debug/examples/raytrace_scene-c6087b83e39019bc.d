/root/repo/target/debug/examples/raytrace_scene-c6087b83e39019bc.d: examples/raytrace_scene.rs Cargo.toml

/root/repo/target/debug/examples/libraytrace_scene-c6087b83e39019bc.rmeta: examples/raytrace_scene.rs Cargo.toml

examples/raytrace_scene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
