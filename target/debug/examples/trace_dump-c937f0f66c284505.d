/root/repo/target/debug/examples/trace_dump-c937f0f66c284505.d: examples/trace_dump.rs

/root/repo/target/debug/examples/trace_dump-c937f0f66c284505: examples/trace_dump.rs

examples/trace_dump.rs:
