/root/repo/target/debug/examples/live_deployment-0f3cda76ca210f79.d: examples/live_deployment.rs Cargo.toml

/root/repo/target/debug/examples/liblive_deployment-0f3cda76ca210f79.rmeta: examples/live_deployment.rs Cargo.toml

examples/live_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
