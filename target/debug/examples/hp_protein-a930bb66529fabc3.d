/root/repo/target/debug/examples/hp_protein-a930bb66529fabc3.d: examples/hp_protein.rs

/root/repo/target/debug/examples/hp_protein-a930bb66529fabc3: examples/hp_protein.rs

examples/hp_protein.rs:
