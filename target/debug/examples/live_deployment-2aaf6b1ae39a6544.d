/root/repo/target/debug/examples/live_deployment-2aaf6b1ae39a6544.d: examples/live_deployment.rs

/root/repo/target/debug/examples/live_deployment-2aaf6b1ae39a6544: examples/live_deployment.rs

examples/live_deployment.rs:
