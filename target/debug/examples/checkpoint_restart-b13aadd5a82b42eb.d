/root/repo/target/debug/examples/checkpoint_restart-b13aadd5a82b42eb.d: examples/checkpoint_restart.rs

/root/repo/target/debug/examples/checkpoint_restart-b13aadd5a82b42eb: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
