/root/repo/target/debug/examples/live_deployment-29cdfa560a86096d.d: examples/live_deployment.rs Cargo.toml

/root/repo/target/debug/examples/liblive_deployment-29cdfa560a86096d.rmeta: examples/live_deployment.rs Cargo.toml

examples/live_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
