/root/repo/target/debug/examples/hp_protein-fee01df7e23fc895.d: examples/hp_protein.rs Cargo.toml

/root/repo/target/debug/examples/libhp_protein-fee01df7e23fc895.rmeta: examples/hp_protein.rs Cargo.toml

examples/hp_protein.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
