/root/repo/target/debug/examples/trace_dump-20368c4016375f98.d: examples/trace_dump.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_dump-20368c4016375f98.rmeta: examples/trace_dump.rs Cargo.toml

examples/trace_dump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
