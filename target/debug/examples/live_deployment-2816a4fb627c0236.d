/root/repo/target/debug/examples/live_deployment-2816a4fb627c0236.d: examples/live_deployment.rs

/root/repo/target/debug/examples/live_deployment-2816a4fb627c0236: examples/live_deployment.rs

examples/live_deployment.rs:
