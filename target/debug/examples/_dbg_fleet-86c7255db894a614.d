/root/repo/target/debug/examples/_dbg_fleet-86c7255db894a614.d: examples/_dbg_fleet.rs

/root/repo/target/debug/examples/_dbg_fleet-86c7255db894a614: examples/_dbg_fleet.rs

examples/_dbg_fleet.rs:
