/root/repo/target/debug/examples/pfold_cluster-245d7a6295718874.d: examples/pfold_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libpfold_cluster-245d7a6295718874.rmeta: examples/pfold_cluster.rs Cargo.toml

examples/pfold_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
