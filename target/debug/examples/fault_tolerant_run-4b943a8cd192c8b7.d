/root/repo/target/debug/examples/fault_tolerant_run-4b943a8cd192c8b7.d: examples/fault_tolerant_run.rs Cargo.toml

/root/repo/target/debug/examples/libfault_tolerant_run-4b943a8cd192c8b7.rmeta: examples/fault_tolerant_run.rs Cargo.toml

examples/fault_tolerant_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
