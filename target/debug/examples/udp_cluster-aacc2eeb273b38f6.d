/root/repo/target/debug/examples/udp_cluster-aacc2eeb273b38f6.d: examples/udp_cluster.rs

/root/repo/target/debug/examples/udp_cluster-aacc2eeb273b38f6: examples/udp_cluster.rs

examples/udp_cluster.rs:
