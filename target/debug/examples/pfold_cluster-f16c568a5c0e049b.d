/root/repo/target/debug/examples/pfold_cluster-f16c568a5c0e049b.d: examples/pfold_cluster.rs

/root/repo/target/debug/examples/pfold_cluster-f16c568a5c0e049b: examples/pfold_cluster.rs

examples/pfold_cluster.rs:
