/root/repo/target/debug/examples/trace_dump-b9a2e413580528e1.d: examples/trace_dump.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_dump-b9a2e413580528e1.rmeta: examples/trace_dump.rs Cargo.toml

examples/trace_dump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
