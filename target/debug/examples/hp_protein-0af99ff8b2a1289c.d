/root/repo/target/debug/examples/hp_protein-0af99ff8b2a1289c.d: examples/hp_protein.rs Cargo.toml

/root/repo/target/debug/examples/libhp_protein-0af99ff8b2a1289c.rmeta: examples/hp_protein.rs Cargo.toml

examples/hp_protein.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
