/root/repo/target/debug/examples/raytrace_scene-79212e8c3dc139f1.d: examples/raytrace_scene.rs

/root/repo/target/debug/examples/raytrace_scene-79212e8c3dc139f1: examples/raytrace_scene.rs

examples/raytrace_scene.rs:
