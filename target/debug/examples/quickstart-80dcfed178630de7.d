/root/repo/target/debug/examples/quickstart-80dcfed178630de7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-80dcfed178630de7: examples/quickstart.rs

examples/quickstart.rs:
