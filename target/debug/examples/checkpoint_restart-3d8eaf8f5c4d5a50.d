/root/repo/target/debug/examples/checkpoint_restart-3d8eaf8f5c4d5a50.d: examples/checkpoint_restart.rs Cargo.toml

/root/repo/target/debug/examples/libcheckpoint_restart-3d8eaf8f5c4d5a50.rmeta: examples/checkpoint_restart.rs Cargo.toml

examples/checkpoint_restart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
