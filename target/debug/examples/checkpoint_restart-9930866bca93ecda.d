/root/repo/target/debug/examples/checkpoint_restart-9930866bca93ecda.d: examples/checkpoint_restart.rs

/root/repo/target/debug/examples/checkpoint_restart-9930866bca93ecda: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
