/root/repo/target/debug/examples/trace_dump-4cbc907861b5f806.d: examples/trace_dump.rs

/root/repo/target/debug/examples/trace_dump-4cbc907861b5f806: examples/trace_dump.rs

examples/trace_dump.rs:
