/root/repo/target/debug/examples/fault_tolerant_run-ae03a4f18991a41e.d: examples/fault_tolerant_run.rs Cargo.toml

/root/repo/target/debug/examples/libfault_tolerant_run-ae03a4f18991a41e.rmeta: examples/fault_tolerant_run.rs Cargo.toml

examples/fault_tolerant_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
