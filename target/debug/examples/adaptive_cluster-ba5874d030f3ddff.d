/root/repo/target/debug/examples/adaptive_cluster-ba5874d030f3ddff.d: examples/adaptive_cluster.rs

/root/repo/target/debug/examples/adaptive_cluster-ba5874d030f3ddff: examples/adaptive_cluster.rs

examples/adaptive_cluster.rs:
