/root/repo/target/debug/examples/quickstart-162bbff945ec9238.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-162bbff945ec9238: examples/quickstart.rs

examples/quickstart.rs:
