/root/repo/target/debug/examples/udp_cluster-7b2c47f79f5df9a0.d: examples/udp_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libudp_cluster-7b2c47f79f5df9a0.rmeta: examples/udp_cluster.rs Cargo.toml

examples/udp_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
