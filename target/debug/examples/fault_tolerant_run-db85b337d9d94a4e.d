/root/repo/target/debug/examples/fault_tolerant_run-db85b337d9d94a4e.d: examples/fault_tolerant_run.rs

/root/repo/target/debug/examples/fault_tolerant_run-db85b337d9d94a4e: examples/fault_tolerant_run.rs

examples/fault_tolerant_run.rs:
