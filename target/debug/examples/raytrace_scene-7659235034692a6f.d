/root/repo/target/debug/examples/raytrace_scene-7659235034692a6f.d: examples/raytrace_scene.rs Cargo.toml

/root/repo/target/debug/examples/libraytrace_scene-7659235034692a6f.rmeta: examples/raytrace_scene.rs Cargo.toml

examples/raytrace_scene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
