/root/repo/target/debug/deps/fig5_pfold_speedup-c65bb2ac7ae5f425.d: crates/bench/src/bin/fig5_pfold_speedup.rs

/root/repo/target/debug/deps/fig5_pfold_speedup-c65bb2ac7ae5f425: crates/bench/src/bin/fig5_pfold_speedup.rs

crates/bench/src/bin/fig5_pfold_speedup.rs:
