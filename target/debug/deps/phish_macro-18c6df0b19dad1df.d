/root/repo/target/debug/deps/phish_macro-18c6df0b19dad1df.d: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

/root/repo/target/debug/deps/phish_macro-18c6df0b19dad1df: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

crates/macro/src/lib.rs:
crates/macro/src/clearinghouse.rs:
crates/macro/src/clearinghouse_service.rs:
crates/macro/src/deployment.rs:
crates/macro/src/idleness.rs:
crates/macro/src/jobmanager.rs:
crates/macro/src/jobq.rs:
crates/macro/src/jobq_service.rs:
