/root/repo/target/debug/deps/phish_net-0671c271e53b1cc8.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs Cargo.toml

/root/repo/target/debug/deps/libphish_net-0671c271e53b1cc8.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/rpc.rs:
crates/net/src/splitphase.rs:
crates/net/src/time.rs:
crates/net/src/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
