/root/repo/target/debug/deps/apps_equivalence-7971b77d7263b5bb.d: tests/apps_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libapps_equivalence-7971b77d7263b5bb.rmeta: tests/apps_equivalence.rs Cargo.toml

tests/apps_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
