/root/repo/target/debug/deps/phish_bench-0d4725df52845eae.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libphish_bench-0d4725df52845eae.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
