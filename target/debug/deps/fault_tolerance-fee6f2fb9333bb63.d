/root/repo/target/debug/deps/fault_tolerance-fee6f2fb9333bb63.d: crates/bench/src/bin/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-fee6f2fb9333bb63: crates/bench/src/bin/fault_tolerance.rs

crates/bench/src/bin/fault_tolerance.rs:
