/root/repo/target/debug/deps/kernel_equivalence-24d8775006601796.d: tests/kernel_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_equivalence-24d8775006601796.rmeta: tests/kernel_equivalence.rs Cargo.toml

tests/kernel_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
