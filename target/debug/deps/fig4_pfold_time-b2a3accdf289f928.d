/root/repo/target/debug/deps/fig4_pfold_time-b2a3accdf289f928.d: crates/bench/src/bin/fig4_pfold_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_pfold_time-b2a3accdf289f928.rmeta: crates/bench/src/bin/fig4_pfold_time.rs Cargo.toml

crates/bench/src/bin/fig4_pfold_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
