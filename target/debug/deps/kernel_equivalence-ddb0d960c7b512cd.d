/root/repo/target/debug/deps/kernel_equivalence-ddb0d960c7b512cd.d: tests/kernel_equivalence.rs

/root/repo/target/debug/deps/kernel_equivalence-ddb0d960c7b512cd: tests/kernel_equivalence.rs

tests/kernel_equivalence.rs:
