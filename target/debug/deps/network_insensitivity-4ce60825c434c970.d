/root/repo/target/debug/deps/network_insensitivity-4ce60825c434c970.d: crates/bench/src/bin/network_insensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork_insensitivity-4ce60825c434c970.rmeta: crates/bench/src/bin/network_insensitivity.rs Cargo.toml

crates/bench/src/bin/network_insensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
