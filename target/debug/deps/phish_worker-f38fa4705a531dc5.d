/root/repo/target/debug/deps/phish_worker-f38fa4705a531dc5.d: crates/proc/src/bin/phish-worker.rs Cargo.toml

/root/repo/target/debug/deps/libphish_worker-f38fa4705a531dc5.rmeta: crates/proc/src/bin/phish-worker.rs Cargo.toml

crates/proc/src/bin/phish-worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
