/root/repo/target/debug/deps/engine-488bb6f869325751.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/engine-488bb6f869325751: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
