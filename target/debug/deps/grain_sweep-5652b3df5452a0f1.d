/root/repo/target/debug/deps/grain_sweep-5652b3df5452a0f1.d: crates/bench/src/bin/grain_sweep.rs

/root/repo/target/debug/deps/grain_sweep-5652b3df5452a0f1: crates/bench/src/bin/grain_sweep.rs

crates/bench/src/bin/grain_sweep.rs:
