/root/repo/target/debug/deps/table1_serial_slowdown-d26d5df49f7c70ae.d: crates/bench/src/bin/table1_serial_slowdown.rs

/root/repo/target/debug/deps/table1_serial_slowdown-d26d5df49f7c70ae: crates/bench/src/bin/table1_serial_slowdown.rs

crates/bench/src/bin/table1_serial_slowdown.rs:
