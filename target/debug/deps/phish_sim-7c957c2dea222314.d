/root/repo/target/debug/deps/phish_sim-7c957c2dea222314.d: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

/root/repo/target/debug/deps/phish_sim-7c957c2dea222314: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

crates/sim/src/lib.rs:
crates/sim/src/events.rs:
crates/sim/src/fleet.rs:
crates/sim/src/microsim.rs:
crates/sim/src/netmodel.rs:
crates/sim/src/sharing.rs:
crates/sim/src/workstation.rs:
