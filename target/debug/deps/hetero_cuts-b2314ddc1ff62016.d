/root/repo/target/debug/deps/hetero_cuts-b2314ddc1ff62016.d: crates/bench/src/bin/hetero_cuts.rs Cargo.toml

/root/repo/target/debug/deps/libhetero_cuts-b2314ddc1ff62016.rmeta: crates/bench/src/bin/hetero_cuts.rs Cargo.toml

crates/bench/src/bin/hetero_cuts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
