/root/repo/target/debug/deps/table1_serial_slowdown-4f7e8566dddad96d.d: crates/bench/src/bin/table1_serial_slowdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_serial_slowdown-4f7e8566dddad96d.rmeta: crates/bench/src/bin/table1_serial_slowdown.rs Cargo.toml

crates/bench/src/bin/table1_serial_slowdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
