/root/repo/target/debug/deps/phishd-6cf1d7030e64cc8f.d: crates/proc/src/bin/phishd.rs Cargo.toml

/root/repo/target/debug/deps/libphishd-6cf1d7030e64cc8f.rmeta: crates/proc/src/bin/phishd.rs Cargo.toml

crates/proc/src/bin/phishd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
