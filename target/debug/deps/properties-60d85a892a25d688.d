/root/repo/target/debug/deps/properties-60d85a892a25d688.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-60d85a892a25d688: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
