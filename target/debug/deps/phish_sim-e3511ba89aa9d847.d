/root/repo/target/debug/deps/phish_sim-e3511ba89aa9d847.d: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

/root/repo/target/debug/deps/libphish_sim-e3511ba89aa9d847.rlib: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

/root/repo/target/debug/deps/libphish_sim-e3511ba89aa9d847.rmeta: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs

crates/sim/src/lib.rs:
crates/sim/src/events.rs:
crates/sim/src/fleet.rs:
crates/sim/src/microsim.rs:
crates/sim/src/netmodel.rs:
crates/sim/src/sharing.rs:
crates/sim/src/workstation.rs:
