/root/repo/target/debug/deps/rpc_services-7a1b2a0ea0ad6f4c.d: tests/rpc_services.rs Cargo.toml

/root/repo/target/debug/deps/librpc_services-7a1b2a0ea0ad6f4c.rmeta: tests/rpc_services.rs Cargo.toml

tests/rpc_services.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
