/root/repo/target/debug/deps/fig5_pfold_speedup-952a4d7d1c182e8c.d: crates/bench/src/bin/fig5_pfold_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pfold_speedup-952a4d7d1c182e8c.rmeta: crates/bench/src/bin/fig5_pfold_speedup.rs Cargo.toml

crates/bench/src/bin/fig5_pfold_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
