/root/repo/target/debug/deps/transport_reliability-3f4d6946b9778c68.d: tests/transport_reliability.rs

/root/repo/target/debug/deps/transport_reliability-3f4d6946b9778c68: tests/transport_reliability.rs

tests/transport_reliability.rs:
