/root/repo/target/debug/deps/simulator-bb8412b4c59e307e.d: tests/simulator.rs

/root/repo/target/debug/deps/simulator-bb8412b4c59e307e: tests/simulator.rs

tests/simulator.rs:
