/root/repo/target/debug/deps/paper_shapes-faffa28493a56f18.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-faffa28493a56f18: tests/paper_shapes.rs

tests/paper_shapes.rs:
