/root/repo/target/debug/deps/deque-846e17b5e1344959.d: crates/bench/benches/deque.rs Cargo.toml

/root/repo/target/debug/deps/libdeque-846e17b5e1344959.rmeta: crates/bench/benches/deque.rs Cargo.toml

crates/bench/benches/deque.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
