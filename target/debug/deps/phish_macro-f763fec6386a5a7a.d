/root/repo/target/debug/deps/phish_macro-f763fec6386a5a7a.d: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs Cargo.toml

/root/repo/target/debug/deps/libphish_macro-f763fec6386a5a7a.rmeta: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs Cargo.toml

crates/macro/src/lib.rs:
crates/macro/src/clearinghouse.rs:
crates/macro/src/clearinghouse_service.rs:
crates/macro/src/deployment.rs:
crates/macro/src/idleness.rs:
crates/macro/src/jobmanager.rs:
crates/macro/src/jobq.rs:
crates/macro/src/jobq_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
