/root/repo/target/debug/deps/phish_ft-ab9025fb61476f64.d: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs Cargo.toml

/root/repo/target/debug/deps/libphish_ft-ab9025fb61476f64.rmeta: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs Cargo.toml

crates/ft/src/lib.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/engine.rs:
crates/ft/src/ledger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
