/root/repo/target/debug/deps/phish_macro-10a8f88a3904d12a.d: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

/root/repo/target/debug/deps/libphish_macro-10a8f88a3904d12a.rlib: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

/root/repo/target/debug/deps/libphish_macro-10a8f88a3904d12a.rmeta: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs

crates/macro/src/lib.rs:
crates/macro/src/clearinghouse.rs:
crates/macro/src/clearinghouse_service.rs:
crates/macro/src/deployment.rs:
crates/macro/src/idleness.rs:
crates/macro/src/jobmanager.rs:
crates/macro/src/jobq.rs:
crates/macro/src/jobq_service.rs:
