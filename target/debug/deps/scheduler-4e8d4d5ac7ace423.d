/root/repo/target/debug/deps/scheduler-4e8d4d5ac7ace423.d: crates/bench/benches/scheduler.rs

/root/repo/target/debug/deps/scheduler-4e8d4d5ac7ace423: crates/bench/benches/scheduler.rs

crates/bench/benches/scheduler.rs:
