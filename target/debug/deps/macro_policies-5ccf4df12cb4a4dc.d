/root/repo/target/debug/deps/macro_policies-5ccf4df12cb4a4dc.d: crates/bench/src/bin/macro_policies.rs

/root/repo/target/debug/deps/macro_policies-5ccf4df12cb4a4dc: crates/bench/src/bin/macro_policies.rs

crates/bench/src/bin/macro_policies.rs:
