/root/repo/target/debug/deps/macro_policies-c39521054d7adf4c.d: crates/bench/src/bin/macro_policies.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_policies-c39521054d7adf4c.rmeta: crates/bench/src/bin/macro_policies.rs Cargo.toml

crates/bench/src/bin/macro_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
