/root/repo/target/debug/deps/table2_pfold_stats-b576546d7c62762b.d: crates/bench/src/bin/table2_pfold_stats.rs

/root/repo/target/debug/deps/table2_pfold_stats-b576546d7c62762b: crates/bench/src/bin/table2_pfold_stats.rs

crates/bench/src/bin/table2_pfold_stats.rs:
