/root/repo/target/debug/deps/fig5_pfold_speedup-8663c28ddbf93a8a.d: crates/bench/src/bin/fig5_pfold_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pfold_speedup-8663c28ddbf93a8a.rmeta: crates/bench/src/bin/fig5_pfold_speedup.rs Cargo.toml

crates/bench/src/bin/fig5_pfold_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
