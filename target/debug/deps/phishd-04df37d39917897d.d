/root/repo/target/debug/deps/phishd-04df37d39917897d.d: crates/proc/src/bin/phishd.rs

/root/repo/target/debug/deps/phishd-04df37d39917897d: crates/proc/src/bin/phishd.rs

crates/proc/src/bin/phishd.rs:
