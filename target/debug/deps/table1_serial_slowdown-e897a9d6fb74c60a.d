/root/repo/target/debug/deps/table1_serial_slowdown-e897a9d6fb74c60a.d: crates/bench/src/bin/table1_serial_slowdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_serial_slowdown-e897a9d6fb74c60a.rmeta: crates/bench/src/bin/table1_serial_slowdown.rs Cargo.toml

crates/bench/src/bin/table1_serial_slowdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
