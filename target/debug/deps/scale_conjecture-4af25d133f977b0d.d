/root/repo/target/debug/deps/scale_conjecture-4af25d133f977b0d.d: crates/bench/src/bin/scale_conjecture.rs Cargo.toml

/root/repo/target/debug/deps/libscale_conjecture-4af25d133f977b0d.rmeta: crates/bench/src/bin/scale_conjecture.rs Cargo.toml

crates/bench/src/bin/scale_conjecture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
