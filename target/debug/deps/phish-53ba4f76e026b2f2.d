/root/repo/target/debug/deps/phish-53ba4f76e026b2f2.d: src/lib.rs src/livejob.rs

/root/repo/target/debug/deps/phish-53ba4f76e026b2f2: src/lib.rs src/livejob.rs

src/lib.rs:
src/livejob.rs:
