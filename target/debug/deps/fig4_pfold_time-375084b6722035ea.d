/root/repo/target/debug/deps/fig4_pfold_time-375084b6722035ea.d: crates/bench/src/bin/fig4_pfold_time.rs

/root/repo/target/debug/deps/fig4_pfold_time-375084b6722035ea: crates/bench/src/bin/fig4_pfold_time.rs

crates/bench/src/bin/fig4_pfold_time.rs:
