/root/repo/target/debug/deps/grain_sweep-db9b4e349aa329ab.d: crates/bench/src/bin/grain_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libgrain_sweep-db9b4e349aa329ab.rmeta: crates/bench/src/bin/grain_sweep.rs Cargo.toml

crates/bench/src/bin/grain_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
