/root/repo/target/debug/deps/grain_sweep-6768ba39f74bfd69.d: crates/bench/src/bin/grain_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libgrain_sweep-6768ba39f74bfd69.rmeta: crates/bench/src/bin/grain_sweep.rs Cargo.toml

crates/bench/src/bin/grain_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
