/root/repo/target/debug/deps/transport-1133193c0350e3d8.d: crates/bench/benches/transport.rs

/root/repo/target/debug/deps/transport-1133193c0350e3d8: crates/bench/benches/transport.rs

crates/bench/benches/transport.rs:
