/root/repo/target/debug/deps/paper_shapes-d6e3868696deba07.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-d6e3868696deba07: tests/paper_shapes.rs

tests/paper_shapes.rs:
