/root/repo/target/debug/deps/phish-ea6caf23a99857a8.d: src/lib.rs src/livejob.rs

/root/repo/target/debug/deps/libphish-ea6caf23a99857a8.rlib: src/lib.rs src/livejob.rs

/root/repo/target/debug/deps/libphish-ea6caf23a99857a8.rmeta: src/lib.rs src/livejob.rs

src/lib.rs:
src/livejob.rs:
