/root/repo/target/debug/deps/hetero_cuts-587ad17fae2f009d.d: crates/bench/src/bin/hetero_cuts.rs

/root/repo/target/debug/deps/hetero_cuts-587ad17fae2f009d: crates/bench/src/bin/hetero_cuts.rs

crates/bench/src/bin/hetero_cuts.rs:
