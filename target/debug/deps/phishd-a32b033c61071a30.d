/root/repo/target/debug/deps/phishd-a32b033c61071a30.d: crates/proc/src/bin/phishd.rs Cargo.toml

/root/repo/target/debug/deps/libphishd-a32b033c61071a30.rmeta: crates/proc/src/bin/phishd.rs Cargo.toml

crates/proc/src/bin/phishd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
