/root/repo/target/debug/deps/proto_roundtrip-6a2c8ee06cb4a784.d: crates/proc/tests/proto_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproto_roundtrip-6a2c8ee06cb4a784.rmeta: crates/proc/tests/proto_roundtrip.rs Cargo.toml

crates/proc/tests/proto_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
