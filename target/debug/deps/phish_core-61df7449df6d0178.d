/root/repo/target/debug/deps/phish_core-61df7449df6d0178.d: crates/core/src/lib.rs crates/core/src/cell.rs crates/core/src/codec.rs crates/core/src/config.rs crates/core/src/deque.rs crates/core/src/engine.rs crates/core/src/kernel.rs crates/core/src/mapreduce.rs crates/core/src/slab.rs crates/core/src/spec.rs crates/core/src/spec_engine.rs crates/core/src/stats.rs crates/core/src/task.rs crates/core/src/trace.rs crates/core/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libphish_core-61df7449df6d0178.rmeta: crates/core/src/lib.rs crates/core/src/cell.rs crates/core/src/codec.rs crates/core/src/config.rs crates/core/src/deque.rs crates/core/src/engine.rs crates/core/src/kernel.rs crates/core/src/mapreduce.rs crates/core/src/slab.rs crates/core/src/spec.rs crates/core/src/spec_engine.rs crates/core/src/stats.rs crates/core/src/task.rs crates/core/src/trace.rs crates/core/src/worker.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cell.rs:
crates/core/src/codec.rs:
crates/core/src/config.rs:
crates/core/src/deque.rs:
crates/core/src/engine.rs:
crates/core/src/kernel.rs:
crates/core/src/mapreduce.rs:
crates/core/src/slab.rs:
crates/core/src/spec.rs:
crates/core/src/spec_engine.rs:
crates/core/src/stats.rs:
crates/core/src/task.rs:
crates/core/src/trace.rs:
crates/core/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
