/root/repo/target/debug/deps/network_insensitivity-ae1b66b72ee2896c.d: crates/bench/src/bin/network_insensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork_insensitivity-ae1b66b72ee2896c.rmeta: crates/bench/src/bin/network_insensitivity.rs Cargo.toml

crates/bench/src/bin/network_insensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
