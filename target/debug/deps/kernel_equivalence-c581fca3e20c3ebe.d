/root/repo/target/debug/deps/kernel_equivalence-c581fca3e20c3ebe.d: tests/kernel_equivalence.rs

/root/repo/target/debug/deps/kernel_equivalence-c581fca3e20c3ebe: tests/kernel_equivalence.rs

tests/kernel_equivalence.rs:
