/root/repo/target/debug/deps/transport-c2a44518c6c63906.d: crates/bench/benches/transport.rs Cargo.toml

/root/repo/target/debug/deps/libtransport-c2a44518c6c63906.rmeta: crates/bench/benches/transport.rs Cargo.toml

crates/bench/benches/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
