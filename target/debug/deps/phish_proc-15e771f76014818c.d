/root/repo/target/debug/deps/phish_proc-15e771f76014818c.d: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs

/root/repo/target/debug/deps/phish_proc-15e771f76014818c: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs

crates/proc/src/lib.rs:
crates/proc/src/app.rs:
crates/proc/src/deploy.rs:
crates/proc/src/driver.rs:
crates/proc/src/proto.rs:
crates/proc/src/signal.rs:
crates/proc/src/worker.rs:
