/root/repo/target/debug/deps/fault_tolerance-13e3ffe12d072ec0.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-13e3ffe12d072ec0: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
