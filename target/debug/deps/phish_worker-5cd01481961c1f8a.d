/root/repo/target/debug/deps/phish_worker-5cd01481961c1f8a.d: crates/proc/src/bin/phish-worker.rs

/root/repo/target/debug/deps/phish_worker-5cd01481961c1f8a: crates/proc/src/bin/phish-worker.rs

crates/proc/src/bin/phish-worker.rs:
