/root/repo/target/debug/deps/phish-4fed3c577158e8df.d: src/lib.rs src/livejob.rs Cargo.toml

/root/repo/target/debug/deps/libphish-4fed3c577158e8df.rmeta: src/lib.rs src/livejob.rs Cargo.toml

src/lib.rs:
src/livejob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
