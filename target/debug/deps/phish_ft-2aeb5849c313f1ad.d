/root/repo/target/debug/deps/phish_ft-2aeb5849c313f1ad.d: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

/root/repo/target/debug/deps/phish_ft-2aeb5849c313f1ad: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

crates/ft/src/lib.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/engine.rs:
crates/ft/src/ledger.rs:
