/root/repo/target/debug/deps/simulator-d36c7c533260dd7f.d: tests/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-d36c7c533260dd7f.rmeta: tests/simulator.rs Cargo.toml

tests/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
