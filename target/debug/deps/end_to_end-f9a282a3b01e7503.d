/root/repo/target/debug/deps/end_to_end-f9a282a3b01e7503.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f9a282a3b01e7503: tests/end_to_end.rs

tests/end_to_end.rs:
