/root/repo/target/debug/deps/phish_bench-aa7d03a444f005b0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libphish_bench-aa7d03a444f005b0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libphish_bench-aa7d03a444f005b0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
