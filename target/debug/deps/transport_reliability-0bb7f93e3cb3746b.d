/root/repo/target/debug/deps/transport_reliability-0bb7f93e3cb3746b.d: tests/transport_reliability.rs Cargo.toml

/root/repo/target/debug/deps/libtransport_reliability-0bb7f93e3cb3746b.rmeta: tests/transport_reliability.rs Cargo.toml

tests/transport_reliability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
