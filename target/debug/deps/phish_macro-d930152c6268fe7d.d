/root/repo/target/debug/deps/phish_macro-d930152c6268fe7d.d: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs Cargo.toml

/root/repo/target/debug/deps/libphish_macro-d930152c6268fe7d.rmeta: crates/macro/src/lib.rs crates/macro/src/clearinghouse.rs crates/macro/src/clearinghouse_service.rs crates/macro/src/deployment.rs crates/macro/src/idleness.rs crates/macro/src/jobmanager.rs crates/macro/src/jobq.rs crates/macro/src/jobq_service.rs Cargo.toml

crates/macro/src/lib.rs:
crates/macro/src/clearinghouse.rs:
crates/macro/src/clearinghouse_service.rs:
crates/macro/src/deployment.rs:
crates/macro/src/idleness.rs:
crates/macro/src/jobmanager.rs:
crates/macro/src/jobq.rs:
crates/macro/src/jobq_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
