/root/repo/target/debug/deps/simulator-6ebdb22179e9ee8e.d: tests/simulator.rs

/root/repo/target/debug/deps/simulator-6ebdb22179e9ee8e: tests/simulator.rs

tests/simulator.rs:
