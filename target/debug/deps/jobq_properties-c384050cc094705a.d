/root/repo/target/debug/deps/jobq_properties-c384050cc094705a.d: crates/macro/tests/jobq_properties.rs

/root/repo/target/debug/deps/jobq_properties-c384050cc094705a: crates/macro/tests/jobq_properties.rs

crates/macro/tests/jobq_properties.rs:
