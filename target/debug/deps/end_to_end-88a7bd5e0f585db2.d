/root/repo/target/debug/deps/end_to_end-88a7bd5e0f585db2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-88a7bd5e0f585db2: tests/end_to_end.rs

tests/end_to_end.rs:
