/root/repo/target/debug/deps/phish_worker-dff2a0b1a8f29520.d: crates/proc/src/bin/phish-worker.rs

/root/repo/target/debug/deps/phish_worker-dff2a0b1a8f29520: crates/proc/src/bin/phish-worker.rs

crates/proc/src/bin/phish-worker.rs:
