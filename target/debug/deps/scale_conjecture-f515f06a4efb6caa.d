/root/repo/target/debug/deps/scale_conjecture-f515f06a4efb6caa.d: crates/bench/src/bin/scale_conjecture.rs

/root/repo/target/debug/deps/scale_conjecture-f515f06a4efb6caa: crates/bench/src/bin/scale_conjecture.rs

crates/bench/src/bin/scale_conjecture.rs:
