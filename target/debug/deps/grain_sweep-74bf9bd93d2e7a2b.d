/root/repo/target/debug/deps/grain_sweep-74bf9bd93d2e7a2b.d: crates/bench/src/bin/grain_sweep.rs

/root/repo/target/debug/deps/grain_sweep-74bf9bd93d2e7a2b: crates/bench/src/bin/grain_sweep.rs

crates/bench/src/bin/grain_sweep.rs:
