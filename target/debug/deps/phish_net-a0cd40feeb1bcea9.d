/root/repo/target/debug/deps/phish_net-a0cd40feeb1bcea9.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs

/root/repo/target/debug/deps/phish_net-a0cd40feeb1bcea9: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/rpc.rs:
crates/net/src/splitphase.rs:
crates/net/src/time.rs:
crates/net/src/udp.rs:
