/root/repo/target/debug/deps/jobq_properties-de00d4ca3646d1f4.d: crates/macro/tests/jobq_properties.rs Cargo.toml

/root/repo/target/debug/deps/libjobq_properties-de00d4ca3646d1f4.rmeta: crates/macro/tests/jobq_properties.rs Cargo.toml

crates/macro/tests/jobq_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
