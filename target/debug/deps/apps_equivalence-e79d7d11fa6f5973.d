/root/repo/target/debug/deps/apps_equivalence-e79d7d11fa6f5973.d: tests/apps_equivalence.rs

/root/repo/target/debug/deps/apps_equivalence-e79d7d11fa6f5973: tests/apps_equivalence.rs

tests/apps_equivalence.rs:
