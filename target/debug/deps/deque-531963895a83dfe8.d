/root/repo/target/debug/deps/deque-531963895a83dfe8.d: crates/bench/benches/deque.rs

/root/repo/target/debug/deps/deque-531963895a83dfe8: crates/bench/benches/deque.rs

crates/bench/benches/deque.rs:
