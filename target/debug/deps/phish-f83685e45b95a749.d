/root/repo/target/debug/deps/phish-f83685e45b95a749.d: src/lib.rs src/livejob.rs

/root/repo/target/debug/deps/phish-f83685e45b95a749: src/lib.rs src/livejob.rs

src/lib.rs:
src/livejob.rs:
