/root/repo/target/debug/deps/phish-ddb03cbc9b992c80.d: src/lib.rs src/livejob.rs Cargo.toml

/root/repo/target/debug/deps/libphish-ddb03cbc9b992c80.rmeta: src/lib.rs src/livejob.rs Cargo.toml

src/lib.rs:
src/livejob.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
