/root/repo/target/debug/deps/rpc_services-aa3414a06f7bf19b.d: tests/rpc_services.rs

/root/repo/target/debug/deps/rpc_services-aa3414a06f7bf19b: tests/rpc_services.rs

tests/rpc_services.rs:
