/root/repo/target/debug/deps/macro_sharing-b4fa8a29d630c509.d: crates/bench/src/bin/macro_sharing.rs

/root/repo/target/debug/deps/macro_sharing-b4fa8a29d630c509: crates/bench/src/bin/macro_sharing.rs

crates/bench/src/bin/macro_sharing.rs:
