/root/repo/target/debug/deps/fault_tolerance-95ea600c940e387e.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-95ea600c940e387e: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
