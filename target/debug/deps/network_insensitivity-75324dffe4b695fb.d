/root/repo/target/debug/deps/network_insensitivity-75324dffe4b695fb.d: crates/bench/src/bin/network_insensitivity.rs

/root/repo/target/debug/deps/network_insensitivity-75324dffe4b695fb: crates/bench/src/bin/network_insensitivity.rs

crates/bench/src/bin/network_insensitivity.rs:
