/root/repo/target/debug/deps/table1_serial_slowdown-754aeb292bb31266.d: crates/bench/src/bin/table1_serial_slowdown.rs

/root/repo/target/debug/deps/table1_serial_slowdown-754aeb292bb31266: crates/bench/src/bin/table1_serial_slowdown.rs

crates/bench/src/bin/table1_serial_slowdown.rs:
