/root/repo/target/debug/deps/paper_shapes-98dc5f05b0185700.d: tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-98dc5f05b0185700.rmeta: tests/paper_shapes.rs Cargo.toml

tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
