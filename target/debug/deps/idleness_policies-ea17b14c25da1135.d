/root/repo/target/debug/deps/idleness_policies-ea17b14c25da1135.d: crates/bench/src/bin/idleness_policies.rs

/root/repo/target/debug/deps/idleness_policies-ea17b14c25da1135: crates/bench/src/bin/idleness_policies.rs

crates/bench/src/bin/idleness_policies.rs:
