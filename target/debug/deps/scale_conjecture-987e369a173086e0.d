/root/repo/target/debug/deps/scale_conjecture-987e369a173086e0.d: crates/bench/src/bin/scale_conjecture.rs

/root/repo/target/debug/deps/scale_conjecture-987e369a173086e0: crates/bench/src/bin/scale_conjecture.rs

crates/bench/src/bin/scale_conjecture.rs:
