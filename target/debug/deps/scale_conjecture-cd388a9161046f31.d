/root/repo/target/debug/deps/scale_conjecture-cd388a9161046f31.d: crates/bench/src/bin/scale_conjecture.rs Cargo.toml

/root/repo/target/debug/deps/libscale_conjecture-cd388a9161046f31.rmeta: crates/bench/src/bin/scale_conjecture.rs Cargo.toml

crates/bench/src/bin/scale_conjecture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
