/root/repo/target/debug/deps/macro_policies-1cbde26fb54eb9d1.d: crates/bench/src/bin/macro_policies.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_policies-1cbde26fb54eb9d1.rmeta: crates/bench/src/bin/macro_policies.rs Cargo.toml

crates/bench/src/bin/macro_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
