/root/repo/target/debug/deps/table2_pfold_stats-a28a2d56340eb992.d: crates/bench/src/bin/table2_pfold_stats.rs

/root/repo/target/debug/deps/table2_pfold_stats-a28a2d56340eb992: crates/bench/src/bin/table2_pfold_stats.rs

crates/bench/src/bin/table2_pfold_stats.rs:
