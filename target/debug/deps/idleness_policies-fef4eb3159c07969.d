/root/repo/target/debug/deps/idleness_policies-fef4eb3159c07969.d: crates/bench/src/bin/idleness_policies.rs Cargo.toml

/root/repo/target/debug/deps/libidleness_policies-fef4eb3159c07969.rmeta: crates/bench/src/bin/idleness_policies.rs Cargo.toml

crates/bench/src/bin/idleness_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
