/root/repo/target/debug/deps/fig4_pfold_time-84a5a97eed9c2d9d.d: crates/bench/src/bin/fig4_pfold_time.rs

/root/repo/target/debug/deps/fig4_pfold_time-84a5a97eed9c2d9d: crates/bench/src/bin/fig4_pfold_time.rs

crates/bench/src/bin/fig4_pfold_time.rs:
