/root/repo/target/debug/deps/network_insensitivity-0143628fb7a86a0c.d: crates/bench/src/bin/network_insensitivity.rs

/root/repo/target/debug/deps/network_insensitivity-0143628fb7a86a0c: crates/bench/src/bin/network_insensitivity.rs

crates/bench/src/bin/network_insensitivity.rs:
