/root/repo/target/debug/deps/macro_policies-181f409090f6ecad.d: crates/bench/src/bin/macro_policies.rs

/root/repo/target/debug/deps/macro_policies-181f409090f6ecad: crates/bench/src/bin/macro_policies.rs

crates/bench/src/bin/macro_policies.rs:
