/root/repo/target/debug/deps/phish_proc-f9741bb8ee036828.d: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs

/root/repo/target/debug/deps/libphish_proc-f9741bb8ee036828.rlib: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs

/root/repo/target/debug/deps/libphish_proc-f9741bb8ee036828.rmeta: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs

crates/proc/src/lib.rs:
crates/proc/src/app.rs:
crates/proc/src/deploy.rs:
crates/proc/src/driver.rs:
crates/proc/src/proto.rs:
crates/proc/src/signal.rs:
crates/proc/src/worker.rs:
