/root/repo/target/debug/deps/macro_sharing-18aeeab0e899fd1f.d: crates/bench/src/bin/macro_sharing.rs

/root/repo/target/debug/deps/macro_sharing-18aeeab0e899fd1f: crates/bench/src/bin/macro_sharing.rs

crates/bench/src/bin/macro_sharing.rs:
