/root/repo/target/debug/deps/phish-dd1fe953d5004869.d: src/lib.rs src/livejob.rs

/root/repo/target/debug/deps/libphish-dd1fe953d5004869.rlib: src/lib.rs src/livejob.rs

/root/repo/target/debug/deps/libphish-dd1fe953d5004869.rmeta: src/lib.rs src/livejob.rs

src/lib.rs:
src/livejob.rs:
