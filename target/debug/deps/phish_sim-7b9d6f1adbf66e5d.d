/root/repo/target/debug/deps/phish_sim-7b9d6f1adbf66e5d.d: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs Cargo.toml

/root/repo/target/debug/deps/libphish_sim-7b9d6f1adbf66e5d.rmeta: crates/sim/src/lib.rs crates/sim/src/events.rs crates/sim/src/fleet.rs crates/sim/src/microsim.rs crates/sim/src/netmodel.rs crates/sim/src/sharing.rs crates/sim/src/workstation.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/events.rs:
crates/sim/src/fleet.rs:
crates/sim/src/microsim.rs:
crates/sim/src/netmodel.rs:
crates/sim/src/sharing.rs:
crates/sim/src/workstation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
