/root/repo/target/debug/deps/fig5_pfold_speedup-23e64ae192b471da.d: crates/bench/src/bin/fig5_pfold_speedup.rs

/root/repo/target/debug/deps/fig5_pfold_speedup-23e64ae192b471da: crates/bench/src/bin/fig5_pfold_speedup.rs

crates/bench/src/bin/fig5_pfold_speedup.rs:
