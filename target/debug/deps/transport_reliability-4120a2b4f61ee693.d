/root/repo/target/debug/deps/transport_reliability-4120a2b4f61ee693.d: tests/transport_reliability.rs Cargo.toml

/root/repo/target/debug/deps/libtransport_reliability-4120a2b4f61ee693.rmeta: tests/transport_reliability.rs Cargo.toml

tests/transport_reliability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
