/root/repo/target/debug/deps/fault_tolerance-3a1f4ea4052be010.d: crates/bench/src/bin/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-3a1f4ea4052be010: crates/bench/src/bin/fault_tolerance.rs

crates/bench/src/bin/fault_tolerance.rs:
