/root/repo/target/debug/deps/ablation_orders-250464c7739c0346.d: crates/bench/src/bin/ablation_orders.rs Cargo.toml

/root/repo/target/debug/deps/libablation_orders-250464c7739c0346.rmeta: crates/bench/src/bin/ablation_orders.rs Cargo.toml

crates/bench/src/bin/ablation_orders.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
