/root/repo/target/debug/deps/hetero_cuts-94abb0ee27ee54ff.d: crates/bench/src/bin/hetero_cuts.rs

/root/repo/target/debug/deps/hetero_cuts-94abb0ee27ee54ff: crates/bench/src/bin/hetero_cuts.rs

crates/bench/src/bin/hetero_cuts.rs:
