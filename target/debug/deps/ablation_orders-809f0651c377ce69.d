/root/repo/target/debug/deps/ablation_orders-809f0651c377ce69.d: crates/bench/src/bin/ablation_orders.rs Cargo.toml

/root/repo/target/debug/deps/libablation_orders-809f0651c377ce69.rmeta: crates/bench/src/bin/ablation_orders.rs Cargo.toml

crates/bench/src/bin/ablation_orders.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
