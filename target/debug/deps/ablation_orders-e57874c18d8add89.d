/root/repo/target/debug/deps/ablation_orders-e57874c18d8add89.d: crates/bench/src/bin/ablation_orders.rs

/root/repo/target/debug/deps/ablation_orders-e57874c18d8add89: crates/bench/src/bin/ablation_orders.rs

crates/bench/src/bin/ablation_orders.rs:
