/root/repo/target/debug/deps/proc_e2e-dd5d2cd51cb6e3f5.d: crates/proc/tests/proc_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libproc_e2e-dd5d2cd51cb6e3f5.rmeta: crates/proc/tests/proc_e2e.rs Cargo.toml

crates/proc/tests/proc_e2e.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_phish-worker=placeholder:phish-worker
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
