/root/repo/target/debug/deps/phish_core-7915530538f2ded1.d: crates/core/src/lib.rs crates/core/src/cell.rs crates/core/src/codec.rs crates/core/src/config.rs crates/core/src/deque.rs crates/core/src/engine.rs crates/core/src/kernel.rs crates/core/src/mapreduce.rs crates/core/src/slab.rs crates/core/src/spec.rs crates/core/src/spec_engine.rs crates/core/src/stats.rs crates/core/src/task.rs crates/core/src/trace.rs crates/core/src/worker.rs

/root/repo/target/debug/deps/phish_core-7915530538f2ded1: crates/core/src/lib.rs crates/core/src/cell.rs crates/core/src/codec.rs crates/core/src/config.rs crates/core/src/deque.rs crates/core/src/engine.rs crates/core/src/kernel.rs crates/core/src/mapreduce.rs crates/core/src/slab.rs crates/core/src/spec.rs crates/core/src/spec_engine.rs crates/core/src/stats.rs crates/core/src/task.rs crates/core/src/trace.rs crates/core/src/worker.rs

crates/core/src/lib.rs:
crates/core/src/cell.rs:
crates/core/src/codec.rs:
crates/core/src/config.rs:
crates/core/src/deque.rs:
crates/core/src/engine.rs:
crates/core/src/kernel.rs:
crates/core/src/mapreduce.rs:
crates/core/src/slab.rs:
crates/core/src/spec.rs:
crates/core/src/spec_engine.rs:
crates/core/src/stats.rs:
crates/core/src/task.rs:
crates/core/src/trace.rs:
crates/core/src/worker.rs:
