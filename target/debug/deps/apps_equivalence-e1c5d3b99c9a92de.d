/root/repo/target/debug/deps/apps_equivalence-e1c5d3b99c9a92de.d: tests/apps_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libapps_equivalence-e1c5d3b99c9a92de.rmeta: tests/apps_equivalence.rs Cargo.toml

tests/apps_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
