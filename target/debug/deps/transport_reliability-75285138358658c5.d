/root/repo/target/debug/deps/transport_reliability-75285138358658c5.d: tests/transport_reliability.rs

/root/repo/target/debug/deps/transport_reliability-75285138358658c5: tests/transport_reliability.rs

tests/transport_reliability.rs:
