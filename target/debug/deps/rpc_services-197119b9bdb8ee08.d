/root/repo/target/debug/deps/rpc_services-197119b9bdb8ee08.d: tests/rpc_services.rs

/root/repo/target/debug/deps/rpc_services-197119b9bdb8ee08: tests/rpc_services.rs

tests/rpc_services.rs:
