/root/repo/target/debug/deps/properties-fe50b3b14de11366.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-fe50b3b14de11366.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
