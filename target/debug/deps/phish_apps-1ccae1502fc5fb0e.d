/root/repo/target/debug/deps/phish_apps-1ccae1502fc5fb0e.d: crates/apps/src/lib.rs crates/apps/src/fib.rs crates/apps/src/nqueens.rs crates/apps/src/pfold.rs crates/apps/src/pfold3d.rs crates/apps/src/ray/mod.rs crates/apps/src/ray/geometry.rs crates/apps/src/ray/render.rs crates/apps/src/ray/scene.rs crates/apps/src/ray/vec3.rs

/root/repo/target/debug/deps/libphish_apps-1ccae1502fc5fb0e.rlib: crates/apps/src/lib.rs crates/apps/src/fib.rs crates/apps/src/nqueens.rs crates/apps/src/pfold.rs crates/apps/src/pfold3d.rs crates/apps/src/ray/mod.rs crates/apps/src/ray/geometry.rs crates/apps/src/ray/render.rs crates/apps/src/ray/scene.rs crates/apps/src/ray/vec3.rs

/root/repo/target/debug/deps/libphish_apps-1ccae1502fc5fb0e.rmeta: crates/apps/src/lib.rs crates/apps/src/fib.rs crates/apps/src/nqueens.rs crates/apps/src/pfold.rs crates/apps/src/pfold3d.rs crates/apps/src/ray/mod.rs crates/apps/src/ray/geometry.rs crates/apps/src/ray/render.rs crates/apps/src/ray/scene.rs crates/apps/src/ray/vec3.rs

crates/apps/src/lib.rs:
crates/apps/src/fib.rs:
crates/apps/src/nqueens.rs:
crates/apps/src/pfold.rs:
crates/apps/src/pfold3d.rs:
crates/apps/src/ray/mod.rs:
crates/apps/src/ray/geometry.rs:
crates/apps/src/ray/render.rs:
crates/apps/src/ray/scene.rs:
crates/apps/src/ray/vec3.rs:
