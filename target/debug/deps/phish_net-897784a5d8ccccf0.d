/root/repo/target/debug/deps/phish_net-897784a5d8ccccf0.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs

/root/repo/target/debug/deps/libphish_net-897784a5d8ccccf0.rlib: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs

/root/repo/target/debug/deps/libphish_net-897784a5d8ccccf0.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/message.rs crates/net/src/metrics.rs crates/net/src/rpc.rs crates/net/src/splitphase.rs crates/net/src/time.rs crates/net/src/udp.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/message.rs:
crates/net/src/metrics.rs:
crates/net/src/rpc.rs:
crates/net/src/splitphase.rs:
crates/net/src/time.rs:
crates/net/src/udp.rs:
