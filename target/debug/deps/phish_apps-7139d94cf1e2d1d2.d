/root/repo/target/debug/deps/phish_apps-7139d94cf1e2d1d2.d: crates/apps/src/lib.rs crates/apps/src/fib.rs crates/apps/src/nqueens.rs crates/apps/src/pfold.rs crates/apps/src/pfold3d.rs crates/apps/src/ray/mod.rs crates/apps/src/ray/geometry.rs crates/apps/src/ray/render.rs crates/apps/src/ray/scene.rs crates/apps/src/ray/vec3.rs Cargo.toml

/root/repo/target/debug/deps/libphish_apps-7139d94cf1e2d1d2.rmeta: crates/apps/src/lib.rs crates/apps/src/fib.rs crates/apps/src/nqueens.rs crates/apps/src/pfold.rs crates/apps/src/pfold3d.rs crates/apps/src/ray/mod.rs crates/apps/src/ray/geometry.rs crates/apps/src/ray/render.rs crates/apps/src/ray/scene.rs crates/apps/src/ray/vec3.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/fib.rs:
crates/apps/src/nqueens.rs:
crates/apps/src/pfold.rs:
crates/apps/src/pfold3d.rs:
crates/apps/src/ray/mod.rs:
crates/apps/src/ray/geometry.rs:
crates/apps/src/ray/render.rs:
crates/apps/src/ray/scene.rs:
crates/apps/src/ray/vec3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
