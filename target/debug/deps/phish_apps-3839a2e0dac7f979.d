/root/repo/target/debug/deps/phish_apps-3839a2e0dac7f979.d: crates/apps/src/lib.rs crates/apps/src/fib.rs crates/apps/src/nqueens.rs crates/apps/src/pfold.rs crates/apps/src/pfold3d.rs crates/apps/src/ray/mod.rs crates/apps/src/ray/geometry.rs crates/apps/src/ray/render.rs crates/apps/src/ray/scene.rs crates/apps/src/ray/vec3.rs

/root/repo/target/debug/deps/phish_apps-3839a2e0dac7f979: crates/apps/src/lib.rs crates/apps/src/fib.rs crates/apps/src/nqueens.rs crates/apps/src/pfold.rs crates/apps/src/pfold3d.rs crates/apps/src/ray/mod.rs crates/apps/src/ray/geometry.rs crates/apps/src/ray/render.rs crates/apps/src/ray/scene.rs crates/apps/src/ray/vec3.rs

crates/apps/src/lib.rs:
crates/apps/src/fib.rs:
crates/apps/src/nqueens.rs:
crates/apps/src/pfold.rs:
crates/apps/src/pfold3d.rs:
crates/apps/src/ray/mod.rs:
crates/apps/src/ray/geometry.rs:
crates/apps/src/ray/render.rs:
crates/apps/src/ray/scene.rs:
crates/apps/src/ray/vec3.rs:
