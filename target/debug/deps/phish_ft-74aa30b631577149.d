/root/repo/target/debug/deps/phish_ft-74aa30b631577149.d: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

/root/repo/target/debug/deps/libphish_ft-74aa30b631577149.rlib: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

/root/repo/target/debug/deps/libphish_ft-74aa30b631577149.rmeta: crates/ft/src/lib.rs crates/ft/src/checkpoint.rs crates/ft/src/engine.rs crates/ft/src/ledger.rs

crates/ft/src/lib.rs:
crates/ft/src/checkpoint.rs:
crates/ft/src/engine.rs:
crates/ft/src/ledger.rs:
