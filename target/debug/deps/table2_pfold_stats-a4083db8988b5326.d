/root/repo/target/debug/deps/table2_pfold_stats-a4083db8988b5326.d: crates/bench/src/bin/table2_pfold_stats.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_pfold_stats-a4083db8988b5326.rmeta: crates/bench/src/bin/table2_pfold_stats.rs Cargo.toml

crates/bench/src/bin/table2_pfold_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
