/root/repo/target/debug/deps/apps_equivalence-0d7833ad44c1f810.d: tests/apps_equivalence.rs

/root/repo/target/debug/deps/apps_equivalence-0d7833ad44c1f810: tests/apps_equivalence.rs

tests/apps_equivalence.rs:
