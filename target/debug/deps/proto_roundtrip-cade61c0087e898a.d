/root/repo/target/debug/deps/proto_roundtrip-cade61c0087e898a.d: crates/proc/tests/proto_roundtrip.rs

/root/repo/target/debug/deps/proto_roundtrip-cade61c0087e898a: crates/proc/tests/proto_roundtrip.rs

crates/proc/tests/proto_roundtrip.rs:
