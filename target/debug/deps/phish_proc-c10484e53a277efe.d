/root/repo/target/debug/deps/phish_proc-c10484e53a277efe.d: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libphish_proc-c10484e53a277efe.rmeta: crates/proc/src/lib.rs crates/proc/src/app.rs crates/proc/src/deploy.rs crates/proc/src/driver.rs crates/proc/src/proto.rs crates/proc/src/signal.rs crates/proc/src/worker.rs Cargo.toml

crates/proc/src/lib.rs:
crates/proc/src/app.rs:
crates/proc/src/deploy.rs:
crates/proc/src/driver.rs:
crates/proc/src/proto.rs:
crates/proc/src/signal.rs:
crates/proc/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
