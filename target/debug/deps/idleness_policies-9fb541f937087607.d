/root/repo/target/debug/deps/idleness_policies-9fb541f937087607.d: crates/bench/src/bin/idleness_policies.rs

/root/repo/target/debug/deps/idleness_policies-9fb541f937087607: crates/bench/src/bin/idleness_policies.rs

crates/bench/src/bin/idleness_policies.rs:
