/root/repo/target/debug/deps/idleness_policies-b1be04586d4b8e4f.d: crates/bench/src/bin/idleness_policies.rs Cargo.toml

/root/repo/target/debug/deps/libidleness_policies-b1be04586d4b8e4f.rmeta: crates/bench/src/bin/idleness_policies.rs Cargo.toml

crates/bench/src/bin/idleness_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
