/root/repo/target/debug/deps/rpc_services-ad0c3e2d9feefa08.d: tests/rpc_services.rs Cargo.toml

/root/repo/target/debug/deps/librpc_services-ad0c3e2d9feefa08.rmeta: tests/rpc_services.rs Cargo.toml

tests/rpc_services.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
