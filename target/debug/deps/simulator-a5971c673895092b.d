/root/repo/target/debug/deps/simulator-a5971c673895092b.d: tests/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-a5971c673895092b.rmeta: tests/simulator.rs Cargo.toml

tests/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
