/root/repo/target/debug/deps/macro_sharing-4fea9f12437ec6f2.d: crates/bench/src/bin/macro_sharing.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_sharing-4fea9f12437ec6f2.rmeta: crates/bench/src/bin/macro_sharing.rs Cargo.toml

crates/bench/src/bin/macro_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
