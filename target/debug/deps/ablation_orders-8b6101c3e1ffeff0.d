/root/repo/target/debug/deps/ablation_orders-8b6101c3e1ffeff0.d: crates/bench/src/bin/ablation_orders.rs

/root/repo/target/debug/deps/ablation_orders-8b6101c3e1ffeff0: crates/bench/src/bin/ablation_orders.rs

crates/bench/src/bin/ablation_orders.rs:
