/root/repo/target/debug/deps/phish_bench-77d1a2b69cf4727d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/phish_bench-77d1a2b69cf4727d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
