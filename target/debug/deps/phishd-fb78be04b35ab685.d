/root/repo/target/debug/deps/phishd-fb78be04b35ab685.d: crates/proc/src/bin/phishd.rs

/root/repo/target/debug/deps/phishd-fb78be04b35ab685: crates/proc/src/bin/phishd.rs

crates/proc/src/bin/phishd.rs:
