/root/repo/target/debug/deps/proc_e2e-52b17fa2404ce00d.d: crates/proc/tests/proc_e2e.rs

/root/repo/target/debug/deps/proc_e2e-52b17fa2404ce00d: crates/proc/tests/proc_e2e.rs

crates/proc/tests/proc_e2e.rs:

# env-dep:CARGO_BIN_EXE_phish-worker=/root/repo/target/debug/phish-worker
