//! Fault tolerance demo: workers crash mid-computation and the ledger-based
//! recovery redoes exactly the lost subtrees — the final answer is
//! bit-identical to the crash-free run.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_run [workers] [chain_len]
//! ```

use phish::apps::pfold::{pfold_serial, PfoldSpec, DEFAULT_SPAWN_DEPTH};
use phish::ft::{CrashPlan, FtConfig, RecoveringEngine};

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    assert!(workers >= 2, "need a survivor: use at least 2 workers");

    println!("pfold({n}) on {workers} workers; killing workers mid-run\n");
    let expect = pfold_serial(n);

    let cfg = FtConfig::fast(workers);
    let spec = PfoldSpec::new(n, DEFAULT_SPAWN_DEPTH);

    let (clean_hist, clean) = RecoveringEngine::run(&cfg, spec, &CrashPlan::none());
    assert_eq!(clean_hist, expect);
    println!(
        "crash-free run:  {:>8} tasks, {:>4} steals, {:>6.1} ms",
        clean.stats.tasks_executed,
        clean.stats.tasks_stolen,
        clean.elapsed().as_secs_f64() * 1e3
    );

    // Kill worker 1 early and worker 2 midway.
    let plan = CrashPlan {
        kill_after_tasks: vec![
            (1, 50),
            (2, clean.stats.tasks_executed / workers as u64 / 2),
        ],
    };
    let spec = PfoldSpec::new(n, DEFAULT_SPAWN_DEPTH);
    let (hist, r) = RecoveringEngine::run(&cfg, spec, &plan);
    assert_eq!(hist, expect, "recovery must reproduce the exact histogram");

    println!(
        "with 2 crashes:  {:>8} tasks, {:>4} steals, {:>6.1} ms",
        r.stats.tasks_executed,
        r.stats.tasks_stolen,
        r.elapsed().as_secs_f64() * 1e3
    );
    println!();
    println!("crashes detected:        {}", r.crashes);
    println!("subtrees re-enqueued:    {}", r.respawned_subtrees);
    println!("assignments orphaned:    {}", r.orphaned_assignments);
    println!("stale reports discarded: {}", r.discarded_reports);
    println!(
        "work redone:             {} tasks ({:.1}% overhead)",
        r.stats
            .tasks_executed
            .saturating_sub(clean.stats.tasks_executed),
        (r.stats.tasks_executed as f64 / clean.stats.tasks_executed as f64 - 1.0) * 100.0
    );
    println!("\nresult identical to the crash-free run — \"lost work is redone\" (§3).");
}
