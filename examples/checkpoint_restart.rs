//! Checkpoint/restart (§6 planned extension): run a long job in budgeted
//! slices, persisting a checkpoint file after each slice; "crash" the
//! process state; reload the file and finish — in parallel, on a different
//! number of workers than the serial slicer used.
//!
//! ```sh
//! cargo run --release --example checkpoint_restart [chain] [slice_budget]
//! ```

use phish::apps::pfold::{count_walks, pfold_serial, PfoldSpec};
use phish::ft::checkpoint::{run_slice, Checkpoint, SliceOutcome};
use phish::ft::resume_parallel;
use phish::scheduler::SchedulerConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let chain: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(13);
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);

    let path = std::env::temp_dir().join("phish-demo.ckp");
    println!("pfold({chain}) in checkpointed slices of {budget} tasks");
    println!("checkpoint file: {}\n", path.display());

    // Phase 1: run two slices, persisting after each.
    let mut state = Checkpoint::fresh(PfoldSpec::new(chain, chain));
    for slice in 1..=2 {
        match run_slice(state, budget) {
            SliceOutcome::Done(hist) => {
                println!("finished during slice {slice} (job smaller than budget)");
                println!("total foldings: {}", count_walks(&hist));
                return;
            }
            SliceOutcome::Paused(ckp) => {
                ckp.save(&path).expect("persist checkpoint");
                println!(
                    "slice {slice}: {} tasks done, frontier {} specs — saved ({} bytes)",
                    ckp.steps_done,
                    ckp.frontier.len(),
                    std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
                );
                state = ckp;
            }
        }
    }

    // Phase 2: "the machine crashes" — drop all in-memory state.
    drop(state);
    println!("\n-- process state dropped; reloading from disk --\n");

    // Phase 3: reload and finish on 4 workers.
    let loaded = Checkpoint::<PfoldSpec>::load(&path)
        .expect("read file")
        .expect("valid checkpoint");
    println!(
        "reloaded: {} tasks already done, {} specs in frontier",
        loaded.steps_done,
        loaded.frontier.len()
    );
    let (hist, stats) = resume_parallel(SchedulerConfig::paper(4), loaded);
    println!(
        "resumed on 4 workers: {} more tasks, {} steals",
        stats.tasks_executed, stats.tasks_stolen
    );
    assert_eq!(
        hist,
        pfold_serial(chain),
        "checkpointed result must be exact"
    );
    println!(
        "\ntotal foldings: {} — exact, across the restart.",
        count_walks(&hist)
    );
    std::fs::remove_file(&path).ok();
}
