//! Dump a scheduling trace: watch the idle-initiated schedule unfold —
//! spawns, steals, non-local synchronizations, the final root post.
//!
//! ```sh
//! cargo run --release --example trace_dump [n] [workers]
//! ```

use phish::apps::fib_task;
use phish::scheduler::{Cont, Engine, SchedulerConfig, TraceEventKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);

    let cfg = SchedulerConfig::paper(workers).with_trace(100_000);
    let (value, stats, trace) = Engine::run_traced(cfg, fib_task(n, Cont::ROOT));
    println!("fib({n}) = {value} on {workers} workers\n");

    // The full log can be huge; show the interesting events plus a summary.
    println!("steal edges (thief <- victim), in time order:");
    for (thief, victim) in trace.steal_edges() {
        println!("  w{thief} <- w{victim}");
    }
    let remote = trace.count_matching(|k| matches!(k, TraceEventKind::PostRemote { .. }));
    let spawns = trace.count_matching(|k| matches!(k, TraceEventKind::Spawn));
    let execs = trace.count_matching(|k| matches!(k, TraceEventKind::Exec));
    println!(
        "\nevents: {} total ({} dropped)",
        trace.events.len(),
        trace.dropped
    );
    println!("  spawns       {spawns}");
    println!("  executions   {execs}");
    println!("  remote posts {remote}");
    println!("\naggregate stats:\n{stats}");
}
