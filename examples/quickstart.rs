//! Quickstart: run a dynamic parallel computation under the idle-initiated
//! micro-level scheduler and read off the Table-2-style statistics.
//!
//! ```sh
//! cargo run --release --example quickstart [n] [workers]
//! ```

use phish::apps::{fib_serial, fib_task};
use phish::scheduler::{Cont, Engine, SchedulerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(25);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("phish quickstart: fib({n}) on {workers} workers");
    println!("(the paper's fib: naive doubly-recursive, one task per call)\n");

    let serial_start = std::time::Instant::now();
    let expect = fib_serial(n);
    let serial = serial_start.elapsed();

    let cfg = SchedulerConfig::paper(workers);
    let (value, stats) = Engine::run(cfg, fib_task(n, Cont::ROOT));
    assert_eq!(value, expect, "parallel result must match serial");

    println!("fib({n}) = {value}");
    println!("\nscheduling statistics (cf. Table 2 of the paper):");
    println!("{stats}");
    println!(
        "\nbest-serial time   {:>10.3} ms",
        serial.as_secs_f64() * 1e3
    );
    println!(
        "parallel time      {:>10.3} ms",
        stats.elapsed_ns as f64 / 1e6
    );
    println!(
        "serial slowdown    {:>10.2}x  (ratio of 1-worker parallel to best serial; \
         run with workers=1 to measure it exactly)",
        stats.elapsed_ns as f64 / serial.as_nanos() as f64
    );
    let locality =
        1.0 - stats.nonlocal_synchronizations as f64 / stats.synchronizations.max(1) as f64;
    println!("local synchs       {:>10.2}%", locality * 100.0);
}
