//! One driver and N worker *processes* over real loopback UDP — the
//! paper's actual deployment shape, in miniature.
//!
//! The harness binds a `phishd` driver endpoint in this process, spawns N
//! `phish-worker` child processes pointed at it, runs fib(n) across the
//! fleet with the same work-stealing kernel every in-process engine uses,
//! and verifies the answer against the serial elision. With a drop
//! probability the datagrams really are lost and really are retransmitted
//! — the counters printed at the end are the proof.
//!
//! ```sh
//! cargo build --release -p phish-proc   # the workers are real binaries
//! cargo run --release --example udp_cluster [workers] [n] [drop]
//! ```

use phish::apps::FibSpec;
use phish::net::{LossyConfig, UdpConfig};
use phish::proc::{AppKind, AppResult, Deployment, DriverConfig};
use phish::scheduler::run_serial;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let drop_prob: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.05);

    println!(
        "udp cluster: 1 driver + {workers} worker processes, fib({n}), {:.0}% datagram loss",
        drop_prob * 100.0
    );

    let mut cfg = DriverConfig::local(AppKind::Fib, n, workers);
    if drop_prob > 0.0 {
        cfg = cfg.with_udp(UdpConfig::lan().with_faults(LossyConfig::dropping(drop_prob, 0xF15)));
    }
    let outcome = match Deployment::local(AppKind::Fib, n, workers)
        .with_config(cfg)
        .run()
    {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("cluster failed: {e}");
            eprintln!("(build the workers first: cargo build --release -p phish-proc)");
            std::process::exit(1);
        }
    };

    println!("\nresult: {}", outcome.driver.result.display());
    let serial = run_serial(FibSpec { n });
    assert_eq!(
        outcome.driver.result,
        AppResult::Fib(serial),
        "matches serial elision"
    );
    println!("matches the serial elision: fib({n}) = {serial}");

    let net = outcome.driver.net;
    println!("\ndriver traffic (real datagrams on loopback):");
    println!("  sent            {:>8}", net.messages_sent);
    println!("  delivered       {:>8}", net.messages_delivered);
    println!("  dropped         {:>8}  (injected)", net.messages_dropped);
    println!(
        "  retransmissions {:>8}  (how the loss was absorbed)",
        net.retransmissions
    );
    println!(
        "\nclearinghouse: {} registrations, {} heartbeats, {} confirm rounds",
        outcome.driver.clearinghouse.registrations,
        outcome.driver.clearinghouse.heartbeats,
        outcome.driver.confirm_rounds,
    );
    println!(
        "worker exits: {:?} (all Some(0) = clean)",
        outcome.worker_exits
    );
}
