//! HP-model protein folding: the heteropolymer version of pfold, closest
//! to what the Pande group's application actually studied — an H/P
//! sequence folds best when hydrophobic monomers cluster, and the energy
//! histogram shows how rare the low-energy (native-like) conformations are.
//!
//! ```sh
//! cargo run --release --example hp_protein [sequence]
//! ```

use phish::apps::pfold::{count_walks, parse_hp, pfold_hp_serial, PfoldHpSpec};
use phish::scheduler::{run_serial, SchedulerConfig, SpecEngine};

fn main() {
    let seq_str = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "HPHPPHHPHPPH".to_string());
    let Some(seq) = parse_hp(&seq_str) else {
        eprintln!("sequence must be H/P characters only");
        std::process::exit(1);
    };
    println!(
        "folding {seq_str} ({} monomers) on the 2D lattice\n",
        seq.len()
    );

    let t0 = std::time::Instant::now();
    let (hist, stats) =
        SpecEngine::run(SchedulerConfig::paper(4), PfoldHpSpec::new(seq.clone(), 6));
    let elapsed = t0.elapsed();
    assert_eq!(hist, pfold_hp_serial(&seq), "parallel must equal serial");
    // Sanity: spec serial agrees too.
    assert_eq!(hist, run_serial(PfoldHpSpec::new(seq.clone(), 6)));

    let total = count_walks(&hist);
    println!("H–H contact energy histogram over {total} conformations:");
    for (contacts, count) in hist.iter().enumerate() {
        if *count > 0 {
            let bar =
                "#".repeat((count * 50 / hist.iter().max().copied().unwrap_or(1).max(1)) as usize);
            println!("  E = -{contacts:<2} {count:>12}  {bar}");
        }
    }
    let ground = hist.len() - 1;
    let native = hist[ground];
    println!(
        "\nground state: E = -{ground} with {native} conformation(s) — \
         {:.6}% of the ensemble",
        native as f64 / total as f64 * 100.0
    );
    println!(
        "\n{} tasks, {} steals, {:.1} ms",
        stats.tasks_executed,
        stats.tasks_stolen,
        elapsed.as_secs_f64() * 1e3
    );
}
