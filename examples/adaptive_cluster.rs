//! Macro-level scheduling in action: a simulated day on a workstation
//! network where owners come and go, jobs are submitted to the PhishJobQ,
//! and idle machines adopt work — the paper's Figure 2 scenario, animated.
//!
//! ```sh
//! cargo run --release --example adaptive_cluster [workstations]
//! ```

use phish::net::time::SECOND;
use phish::sim::{run_fleet, FleetConfig, OwnerProfile, Phase, SimJobSpec};

fn main() {
    let workstations: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);

    // Three jobs with different shapes, like a real queue: a wide long job,
    // a job whose parallelism collapses near the end, and a narrow one.
    let jobs = vec![
        SimJobSpec::uniform("render-farm", 4000 * SECOND, 64),
        SimJobSpec {
            name: "pfold-sweep".into(),
            phases: vec![
                Phase {
                    work: 1500 * SECOND,
                    parallelism: 32,
                },
                Phase {
                    work: 300 * SECOND,
                    parallelism: 3,
                },
            ],
            max_participants: None,
        },
        SimJobSpec::uniform("nightly-tests", 600 * SECOND, 6),
    ];

    let cfg = FleetConfig {
        workstations,
        owner_profile: OwnerProfile::office_worker(),
        seed: 2026,
        jobs,
        shrink_detect_delay: 2 * SECOND,
        max_time: 48 * 3600 * SECOND,
        assign_policy: Default::default(),
        idleness: phish::sim::IdlenessChoice::NobodyLoggedIn,
    };
    println!(
        "simulating {workstations} workstations with office-worker owners \
         (idle-initiated, owner-sovereign)\n"
    );
    let r = run_fleet(&cfg);

    println!(
        "{:<16} {:>14} {:>12} {:>10}",
        "job", "completed at", "cpu-time", "peak P"
    );
    for (i, name) in ["render-farm", "pfold-sweep", "nightly-tests"]
        .iter()
        .enumerate()
    {
        let done = r.completions[i]
            .map(|t| format!("{:.1} min", t as f64 / 60e9))
            .unwrap_or_else(|| "unfinished".into());
        println!(
            "{:<16} {:>14} {:>10.1} s {:>10}",
            name,
            done,
            r.busy_time[i] as f64 / 1e9,
            r.peak_participants[i]
        );
    }
    println!();
    println!(
        "makespan:               {:.1} min",
        r.makespan as f64 / 60e9
    );
    println!(
        "idle capacity harvested: {:.1}% of owner-idle workstation-time",
        r.utilization() * 100.0
    );
    println!(
        "JobQ load:              {:.3} messages/s ({} total) — the \u{00a7}3 \
         scalability conjecture in action",
        r.jobq_msgs_per_sec(),
        r.jobq_messages
    );
    println!(
        "Clearinghouse traffic:  {} messages",
        r.clearinghouse_messages
    );
}
