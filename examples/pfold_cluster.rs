//! The paper's flagship workload: protein folding (pfold) across a
//! simulated cluster of participants, reporting the exact statistics block
//! of Table 2 plus the energy histogram the application computes.
//!
//! ```sh
//! cargo run --release --example pfold_cluster [chain_len] [workers]
//! ```
//!
//! With `chain_len` around 16–17 the search tree reaches the ~10-million
//! task scale of the paper's runs (start smaller: 13 runs in about a
//! second).

use phish::apps::pfold::{count_walks, pfold_task, DEFAULT_SPAWN_DEPTH};
use phish::scheduler::{Cont, Engine, SchedulerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(13);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("pfold: all foldings of a {n}-monomer chain on the 2D lattice");
    println!("participants: {workers}\n");

    let cfg = SchedulerConfig::paper(workers);
    let (hist, stats) = Engine::run(cfg, pfold_task(n, DEFAULT_SPAWN_DEPTH, Cont::ROOT));

    println!("energy histogram (energy = -contacts):");
    for (contacts, count) in hist.iter().enumerate() {
        if *count > 0 {
            println!("  E = -{contacts:<3} {count:>14} foldings");
        }
    }
    println!("  total      {:>14} foldings\n", count_walks(&hist));

    println!("scheduling statistics (cf. Table 2, pfold with 4 and 8 participants):");
    println!("{stats}");
    println!();
    println!(
        "steal rate: {:.6}% of tasks were migrated between participants",
        stats.tasks_stolen as f64 / stats.tasks_executed.max(1) as f64 * 100.0
    );
    println!(
        "locality:   {:.4}% of synchronizations were local",
        (1.0 - stats.nonlocal_synchronizations as f64 / stats.synchronizations.max(1) as f64)
            * 100.0
    );
    println!(
        "working set: max {} tasks in use — independent of the {} tasks executed",
        stats.max_tasks_in_use, stats.tasks_executed
    );
}
