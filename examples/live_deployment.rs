//! The whole system, live: a threaded deployment where simulated
//! workstation owners come and go while real pfold work gets done.
//!
//! This is Figure 2 of the paper running in one process — PhishJobQ,
//! per-workstation JobManagers with the paper's polling cadences (scaled
//! down 10000× so minutes become milliseconds), a Clearinghouse, and
//! worker bodies executing the actual lattice-folding computation with
//! data migration on eviction.
//!
//! ```sh
//! cargo run --release --example live_deployment [workstations] [chain]
//! ```

use std::sync::Arc;
use std::time::Duration;

use phish::apps::pfold::{count_walks, pfold_serial, PfoldSpec};
use phish::machine::{Deployment, DeploymentConfig, JobSpec, OwnerScript};
use phish::SpecPoolJob;

fn main() {
    let mut args = std::env::args().skip(1);
    let workstations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let chain: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(14);

    println!("live deployment: {workstations} workstations, pfold({chain})");
    println!("(owners of workstations 0 and 1 return mid-run and reclaim their machines)\n");

    // Owners: workstation 0's owner returns at t=150ms, workstation 1's
    // owner alternates 100ms away / 100ms back; the rest are absent.
    let mut cfg = DeploymentConfig::dedicated(workstations);
    let returning: OwnerScript = Arc::new(|t| t > 150_000_000);
    let flaky: OwnerScript = Arc::new(|t| (t / 100_000_000) % 2 == 1);
    cfg = cfg.with_owner(0, returning).with_owner(1, flaky);

    let dep = Deployment::start(cfg);
    let job = Arc::new(SpecPoolJob::new(PfoldSpec::new(chain, 7)));
    let started = std::time::Instant::now();
    let id = dep.submit(
        JobSpec::named(format!("pfold {chain}")),
        Arc::clone(&job) as _,
    );
    assert!(
        dep.wait_job(id, Duration::from_secs(300)),
        "job did not finish"
    );
    let elapsed = started.elapsed();
    let hist = job.take_result();
    let stats = dep.shutdown();

    println!(
        "completed in {:.1} ms wall-clock",
        elapsed.as_secs_f64() * 1e3
    );
    println!("total foldings: {}", count_walks(&hist));
    assert_eq!(
        hist,
        pfold_serial(chain),
        "result must be exact despite churn"
    );
    println!("result verified exact against the serial fold.\n");
    println!("participation outcomes:");
    println!("  ran to completion:    {}", stats.finished_exits);
    println!("  evicted by owners:    {}", stats.evictions);
    println!("  left (no work):       {}", stats.shrink_exits);
    println!(
        "\nevicted participants migrated their unfinished subtrees back to \
         the pool (§2: \"the process's data migrates before termination\")."
    );
}
