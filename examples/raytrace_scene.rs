//! The `ray` application: renders the benchmark scene in parallel and
//! writes a PPM image — the modern equivalent of the paper's
//! "simply typing `ray my-scene`".
//!
//! ```sh
//! cargo run --release --example raytrace_scene [size] [workers] [out.ppm]
//! ```

use std::io::Write;
use std::sync::Arc;

use phish::apps::ray::{benchmark_scene, render_serial, render_task, Pixel};
use phish::scheduler::{Cont, Engine, SchedulerConfig};

fn write_ppm(path: &str, pixels: &[Pixel], w: u32, h: u32) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(f);
    writeln!(out, "P6\n{w} {h}\n255")?;
    for p in pixels {
        let rgb = [
            (p[0].clamp(0.0, 1.0).sqrt() * 255.0) as u8, // gamma 2.0
            (p[1].clamp(0.0, 1.0).sqrt() * 255.0) as u8,
            (p[2].clamp(0.0, 1.0).sqrt() * 255.0) as u8,
        ];
        out.write_all(&rgb)?;
    }
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let size: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let out = args.next().unwrap_or_else(|| "scene.ppm".to_string());

    let (scene, camera) = benchmark_scene();
    println!(
        "ray: {size}x{size}, {} objects, {workers} workers",
        scene.objects.len()
    );

    let t0 = std::time::Instant::now();
    let serial = render_serial(&scene, &camera, size, size);
    let serial_time = t0.elapsed();
    println!(
        "serial render:   {:>8.1} ms",
        serial_time.as_secs_f64() * 1e3
    );

    let scene = Arc::new(scene);
    let rows_per_band = (size / (workers as u32 * 4).max(1)).max(1);
    let (image, stats) = Engine::run(
        SchedulerConfig::paper(workers),
        render_task(
            Arc::clone(&scene),
            camera,
            size,
            size,
            rows_per_band,
            Cont::ROOT,
        ),
    );
    println!(
        "parallel render: {:>8.1} ms  ({} band tasks, {} steals)",
        stats.elapsed_ns as f64 / 1e6,
        stats.tasks_executed,
        stats.tasks_stolen
    );
    assert_eq!(image.pixels, serial, "parallel must be pixel-identical");

    write_ppm(&out, &image.pixels, size, size).expect("write image");
    println!("wrote {out}");
    println!(
        "\nray's coarse grain is why Table 1 reports a serial slowdown of only \
         1.04: {} tasks for {} pixels.",
        stats.tasks_executed,
        size * size
    );
}
