//! Integration tests of the discrete-event simulator against the real
//! applications: exactness at any participant count, paper-shaped speedup
//! curves, and macro-level dynamics.

use phish::apps::pfold::{count_walks, pfold_serial, PfoldSpec};
use phish::apps::FibSpec;
use phish::net::time::SECOND;
use phish::sim::microsim::ScaleCost;
use phish::sim::{
    gang_timeshare, paper_scenario, run_fleet, run_microsim, space_share, FleetConfig, LinkModel,
    MicroSimConfig, MicroVictimPolicy, OwnerProfile, SimJobSpec, Topology,
};

#[test]
fn microsim_pfold_exact_at_every_p() {
    let n = 10;
    let expect = pfold_serial(n);
    for p in [1, 2, 8, 32] {
        let cfg = MicroSimConfig::ethernet(p);
        let (hist, report) = run_microsim(&cfg, PfoldSpec::new(n, 5));
        assert_eq!(hist, expect, "P = {p}");
        assert_eq!(
            count_walks(&hist),
            count_walks(&expect),
            "walk count mismatch at P = {p}"
        );
        assert!(report.stats.tasks_executed > 0);
    }
}

#[test]
fn microsim_speedup_is_near_linear_for_pfold() {
    // Figure 5's shape: near-linear speedup to 32 participants.
    // Scale virtual task costs so the run is seconds of virtual time, like
    // the paper's (their pfold T_1 was ~600s); otherwise the 3ms steal RTT
    // dominates a millisecond-scale tree.
    let n = 13;
    let t = |p: usize| {
        run_microsim(
            &MicroSimConfig::ethernet(p),
            ScaleCost::new(PfoldSpec::new(n, 7), 1000),
        )
        .1
        .completion_ns
    };
    let t1 = t(1);
    for (p, floor) in [(2, 1.7), (4, 3.2), (8, 6.0), (16, 11.0), (32, 20.0)] {
        let sp = t1 as f64 / t(p) as f64;
        assert!(sp > floor, "S_{p} = {sp:.2} below {floor}");
        assert!(sp <= p as f64 + 0.01, "S_{p} = {sp:.2} super-linear?");
    }
}

#[test]
fn microsim_fib_shows_overhead_but_still_scales() {
    // fib's grain is tiny; on the 1994-Ethernet model the steal RTT is
    // enormous relative to task cost, yet FIFO stealing still moves big
    // subtrees, so speedup remains substantial.
    let t = |p: usize| {
        run_microsim(
            &MicroSimConfig::ethernet(p),
            ScaleCost::new(FibSpec { n: 22 }, 10_000),
        )
        .1
        .completion_ns
    };
    let t1 = t(1);
    let t8 = t(8);
    let s8 = t1 as f64 / t8 as f64;
    assert!(s8 > 3.0, "fib 8-way speedup {s8:.2} collapsed");
}

#[test]
fn microsim_steals_scale_with_p_not_with_tasks() {
    // Table 2: 70 steals at 4 participants, 133 at 8 — steals grow with P,
    // not with the 10M tasks.
    let n = 13;
    let r4 = run_microsim(&MicroSimConfig::ethernet(4), PfoldSpec::new(n, 7)).1;
    let r8 = run_microsim(&MicroSimConfig::ethernet(8), PfoldSpec::new(n, 7)).1;
    assert_eq!(
        r4.stats.tasks_executed, r8.stats.tasks_executed,
        "same tree"
    );
    assert!(r4.stats.tasks_stolen < r4.stats.tasks_executed / 50);
    assert!(r8.stats.tasks_stolen < r8.stats.tasks_executed / 25);
    assert!(
        r8.stats.tasks_stolen > r4.stats.tasks_stolen / 4,
        "more participants should steal at least comparably often"
    );
}

#[test]
fn cut_aware_stealing_reduces_inter_cluster_traffic_without_losing_speed() {
    let topo = || Topology::clustered(2, 8, LinkModel::atm_1995(), LinkModel::ethernet_1994());
    let base = MicroSimConfig {
        topology: topo(),
        victim: MicroVictimPolicy::Uniform,
        seed: 3,
        sched_overhead: 200,
        msg_bytes: 64,
    };
    let biased = MicroSimConfig {
        victim: MicroVictimPolicy::ClusterFirst { local_attempts: 4 },
        topology: topo(),
        ..base.clone()
    };
    let spec = || ScaleCost::new(PfoldSpec::new(12, 6), 1000);
    let (hu, ru) = run_microsim(&base, spec());
    let (hb, rb) = run_microsim(&biased, spec());
    assert_eq!(hu, hb, "victim policy must not change the answer");
    assert!(rb.inter_cluster_bytes < ru.inter_cluster_bytes);
    assert!(
        (rb.completion_ns as f64) < ru.completion_ns as f64 * 1.25,
        "cut-awareness should not cost much time: {} vs {}",
        rb.completion_ns,
        ru.completion_ns
    );
}

#[test]
fn fleet_thousand_workstations_scalability() {
    // The §3 conjecture: "we conjecture that Phish can be scaled to over a
    // thousand workstations." The JobQ must stay far below saturation.
    let jobs = vec![
        SimJobSpec::uniform("big-a", 20_000 * SECOND, 600),
        SimJobSpec::uniform("big-b", 20_000 * SECOND, 600),
    ];
    let cfg = FleetConfig {
        workstations: 1000,
        owner_profile: OwnerProfile::mostly_idle(),
        seed: 11,
        jobs,
        shrink_detect_delay: 2 * SECOND,
        max_time: 8 * 3600 * SECOND,
        assign_policy: Default::default(),
        idleness: phish::sim::IdlenessChoice::NobodyLoggedIn,
    };
    let r = run_fleet(&cfg);
    assert!(
        r.completions.iter().all(|c| c.is_some()),
        "{:?}",
        r.completions
    );
    // 1000 workstations, yet the JobQ sees only a trickle.
    assert!(
        r.jobq_msgs_per_sec() < 40.0,
        "JobQ rate {:.1}/s at 1000 workstations",
        r.jobq_msgs_per_sec()
    );
    assert!(r.peak_participants.iter().any(|p| *p > 100));
}

#[test]
fn sharing_strategies_rank_as_the_paper_argues() {
    let jobs = paper_scenario();
    let gang = gang_timeshare(
        &jobs,
        32,
        phish::sim::sharing::GANG_QUANTUM,
        phish::sim::sharing::GANG_SWITCH_COST,
    );
    let stat = space_share(&jobs, 32, false);
    let adap = space_share(&jobs, 32, true);
    // Space beats gang on throughput; adaptive beats static on mean
    // completion.
    assert!(adap.utilization >= stat.utilization);
    assert!(adap.mean_completion <= stat.mean_completion);
    assert!(adap.mean_completion < gang.mean_completion);
    assert!(gang.context_switches > 0);
    assert_eq!(adap.context_switches, 0);
}
