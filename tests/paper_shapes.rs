//! Regression guards for the paper's qualitative claims, at test scale.
//! If a scheduler change breaks one of these shapes, the corresponding
//! experiment (EXPERIMENTS.md) would silently degrade — fail fast here.

use phish::apps::pfold::{count_walks, pfold_task};
use phish::apps::{fib_serial, fib_task};
use phish::scheduler::{Cont, Engine, ExecOrder, SchedulerConfig};

#[test]
fn table2_shape_working_set_is_tiny_and_p_independent() {
    // pfold at task-per-node grain: max tasks in use must be tens,
    // regardless of the task count and of the participant count.
    let chain = 12;
    let (h2, s2) = Engine::run(
        SchedulerConfig::paper(2),
        pfold_task(chain, chain, Cont::ROOT),
    );
    let (h4, s4) = Engine::run(
        SchedulerConfig::paper(4),
        pfold_task(chain, chain, Cont::ROOT),
    );
    assert_eq!(h2, h4, "result independent of P");
    assert!(count_walks(&h2) > 100_000);
    assert!(s2.tasks_executed > 200_000);
    for s in [&s2, &s4] {
        assert!(
            s.max_tasks_in_use < 150,
            "working set {} should be O(depth), not O({})",
            s.max_tasks_in_use,
            s.tasks_executed
        );
    }
    // Steals are orders of magnitude below tasks (they can be zero on a
    // loaded single-core host; the paper's point is the upper bound).
    assert!(s4.tasks_stolen * 100 < s4.tasks_executed);
    // Synchronizations track tasks: every leaf and continuation posts once.
    assert!(s2.synchronizations * 2 > s2.tasks_executed);
    assert!(s2.synchronizations <= s2.tasks_executed);
    // Locality: non-local synchs bounded by messages, vastly below synchs.
    assert!(s4.nonlocal_synchronizations <= s4.messages_sent);
    assert!(s4.nonlocal_synchronizations * 100 < s4.synchronizations.max(100));
}

#[test]
fn table1_shape_fine_grain_pays_coarse_grain_does_not() {
    // fib's per-task work is ~nothing: parallel-1-worker must be far
    // slower than serial. pfold at coarse grain must be within ~2x.
    use std::time::Instant;
    let cfg = SchedulerConfig::paper(1);

    let t0 = Instant::now();
    let expect = fib_serial(22);
    let serial_fib = t0.elapsed();
    let t0 = Instant::now();
    let (v, _) = Engine::run(cfg, fib_task(22, Cont::ROOT));
    let parallel_fib = t0.elapsed();
    assert_eq!(v, expect);
    assert!(
        parallel_fib > serial_fib * 5,
        "fib must pay heavily for its grain: {parallel_fib:?} vs {serial_fib:?}"
    );

    use phish::apps::pfold::{pfold_serial, DEFAULT_SPAWN_DEPTH};
    let t0 = Instant::now();
    let expect = pfold_serial(12);
    let serial_pf = t0.elapsed();
    let t0 = Instant::now();
    let (h, _) = Engine::run(cfg, pfold_task(12, DEFAULT_SPAWN_DEPTH, Cont::ROOT));
    let parallel_pf = t0.elapsed();
    assert_eq!(h, expect);
    assert!(
        parallel_pf < serial_pf * 3,
        "coarse pfold must stay near serial: {parallel_pf:?} vs {serial_pf:?}"
    );
}

#[test]
fn ablation_shape_lifo_bounds_the_ready_list() {
    let chain = 11;
    let mut lifo = SchedulerConfig::paper(1);
    lifo.exec_order = ExecOrder::Lifo;
    let (_, sl) = Engine::run(lifo, pfold_task(chain, chain, Cont::ROOT));
    let mut fifo = SchedulerConfig::paper(1);
    fifo.exec_order = ExecOrder::Fifo;
    let (_, sf) = Engine::run(fifo, pfold_task(chain, chain, Cont::ROOT));
    assert!(
        sl.max_tasks_in_use * 100 < sf.max_tasks_in_use,
        "LIFO {} vs FIFO {}: the locality claim must hold by orders of magnitude",
        sl.max_tasks_in_use,
        sf.max_tasks_in_use
    );
}
