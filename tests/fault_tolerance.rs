//! Property tests of crash recovery: for arbitrary crash points, the
//! recovering engine's answer equals the serial answer, and the recovery
//! accounting is consistent.

use proptest::prelude::*;

use phish::apps::pfold::{pfold_serial, PfoldSpec};
use phish::apps::{nqueens_serial, NQueensSpec};
use phish::ft::{CrashPlan, FtConfig, RecoveringEngine};

proptest! {
    // Each case spins up real threads with heartbeats; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pfold_exact_under_random_crashes(
        kill1 in 5u64..400,
        kill2 in 5u64..400,
        seed in any::<u64>(),
    ) {
        let n = 11;
        let expect = pfold_serial(n);
        let plan = CrashPlan { kill_after_tasks: vec![(1, kill1), (2, kill2)] };
        let cfg = FtConfig { seed, ..FtConfig::fast(4) };
        let (hist, report) = RecoveringEngine::run(&cfg, PfoldSpec::new(n, 5), &plan);
        prop_assert_eq!(hist, expect);
        prop_assert!(report.crashes <= 2);
        // A worker that never reached its kill count survives.
        prop_assert!(report.stats.per_worker[1].tasks_executed <= kill1);
        prop_assert!(report.stats.per_worker[2].tasks_executed <= kill2);
    }

    #[test]
    fn nqueens_exact_under_one_crash(kill in 1u64..200, seed in any::<u64>()) {
        let n = 8;
        let expect = nqueens_serial(n);
        let cfg = FtConfig { seed, ..FtConfig::fast(3) };
        let (v, report) = RecoveringEngine::run(
            &cfg,
            NQueensSpec::new(n, 3),
            &CrashPlan::kill(1, kill),
        );
        prop_assert_eq!(v, expect);
        prop_assert!(report.crashes <= 1);
    }
}

#[test]
fn crash_accounting_is_consistent() {
    let n = 11;
    let expect = pfold_serial(n);
    let (hist, r) = RecoveringEngine::run(
        &FtConfig::fast(4),
        PfoldSpec::new(n, 5),
        &CrashPlan::kill(1, 100),
    );
    assert_eq!(hist, expect);
    if r.crashes == 1 {
        // If the dead worker had stolen anything, those subtrees must have
        // been re-enqueued by their victims (or the root re-assigned).
        let dead_worked = r.stats.per_worker[1].tasks_executed > 0;
        assert!(
            !dead_worked || r.respawned_subtrees > 0 || r.stats.per_worker[1].tasks_executed < 100,
            "dead worker did work that nobody re-enqueued: {r:?}"
        );
    }
}

#[test]
fn survivors_finish_even_when_most_workers_die() {
    let n = 12;
    let expect = pfold_serial(n);
    // 5 workers; 4 die at staggered points. The survivor must finish.
    // (How many actually reach their kill count before the job ends is
    // timing-dependent; exactness of the result is not.)
    let plan = CrashPlan {
        kill_after_tasks: vec![(1, 10), (2, 30), (3, 60), (4, 90)],
    };
    let (hist, r) = RecoveringEngine::run(&FtConfig::fast(5), PfoldSpec::new(n, 6), &plan);
    assert_eq!(hist, expect);
    for (w, cap) in [(1, 10), (2, 30), (3, 60), (4, 90)] {
        assert!(
            r.stats.per_worker[w].tasks_executed <= cap,
            "worker {w} outlived its kill point: {} > {cap}",
            r.stats.per_worker[w].tasks_executed
        );
    }
    assert!(
        r.crashes >= 1,
        "at least the earliest kill must be detected"
    );
}
