//! Cross-engine equivalence: all four adapters of the shared
//! work-stealing kernel — the CPS [`Engine`], the [`SpecEngine`], the
//! crash-recovering [`RecoveringEngine`] (run crash-free), and the
//! virtual-time microsim — compute the same answer as the serial
//! reference for every application, over randomized seeds and worker
//! counts. The three spec-based engines additionally execute exactly
//! `count_tasks(root)` tasks: crash-free, every spec node is stepped
//! exactly once no matter which substrate carries it.

use proptest::prelude::*;

use phish::apps::pfold::{pfold_serial, pfold_task, PfoldSpec};
use phish::apps::{fib_serial, fib_task, nqueens_serial, nqueens_task, FibSpec, NQueensSpec};
use phish::ft::{CrashPlan, FtConfig, RecoveringEngine};
use phish::net::LossyConfig;
use phish::scheduler::{count_tasks, Cont, Engine, SchedulerConfig, SpecEngine, SpecTask};
use phish::sim::{run_microsim, MicroSimConfig};

/// Run one spec root through the three spec-based engines plus the
/// serial reference, asserting identical outputs and identical task
/// counts everywhere.
fn assert_spec_engines_agree<S>(root: S, expect: &S::Output, workers: usize, seed: u64)
where
    S: SpecTask + Clone + 'static,
    S::Output: PartialEq + std::fmt::Debug,
{
    let tasks = count_tasks(root.clone());

    let cfg = SchedulerConfig::paper(workers).with_seed(seed);
    let (spec_out, spec_stats) = SpecEngine::run(cfg, root.clone());
    assert_eq!(&spec_out, expect, "SpecEngine output");
    assert_eq!(spec_stats.tasks_executed, tasks, "SpecEngine task count");

    let ft_cfg = FtConfig {
        seed,
        ..FtConfig::fast(workers)
    };
    let (ft_out, ft_report) = RecoveringEngine::run(&ft_cfg, root.clone(), &CrashPlan::none());
    assert_eq!(&ft_out, expect, "RecoveringEngine output");
    assert_eq!(
        ft_report.stats.tasks_executed, tasks,
        "RecoveringEngine task count"
    );
    assert_eq!(ft_report.crashes, 0);

    let mut micro_cfg = MicroSimConfig::ethernet(workers);
    micro_cfg.seed = seed;
    let (micro_out, micro_report) = run_microsim(&micro_cfg, root);
    assert_eq!(&micro_out, expect, "microsim output");
    assert_eq!(
        micro_report.stats.tasks_executed, tasks,
        "microsim task count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fib_engines_agree(n in 5u64..15, workers in 1usize..=4, seed in any::<u64>()) {
        let expect = fib_serial(n);
        let cfg = SchedulerConfig::paper(workers).with_seed(seed);
        let (cps, _) = Engine::run(cfg, fib_task(n, Cont::ROOT));
        prop_assert_eq!(cps, expect);
        assert_spec_engines_agree(FibSpec { n }, &expect, workers, seed);
    }

    #[test]
    fn nqueens_engines_agree(
        n in 4u32..8,
        depth in 0u32..3,
        workers in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let expect = nqueens_serial(n);
        let cfg = SchedulerConfig::paper(workers).with_seed(seed);
        let (cps, _) = Engine::run(cfg, nqueens_task(n, depth, Cont::ROOT));
        prop_assert_eq!(cps, expect);
        assert_spec_engines_agree(NQueensSpec::new(n, depth), &expect, workers, seed);
    }

    #[test]
    fn pfold_engines_agree(
        n in 2usize..8,
        depth in 1usize..5,
        workers in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let expect = pfold_serial(n);
        let cfg = SchedulerConfig::paper(workers).with_seed(seed);
        let (cps, _) = Engine::run(cfg, pfold_task(n, depth, Cont::ROOT));
        prop_assert_eq!(&cps, &expect);
        assert_spec_engines_agree(PfoldSpec::new(n, depth), &expect, workers, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Equivalence must also hold when every inter-node message rides a
    /// *faulty* datagram fabric: with ≥10% drop plus duplication and
    /// reordering, the recovery protocol still delivers the steals,
    /// adoptions, and heartbeats exactly once, so both threaded
    /// message-passing engines keep computing the serial answer — and the
    /// crash-free RecoveringEngine still steps every spec node exactly
    /// once.
    #[test]
    fn lossy_fabric_preserves_equivalence(
        n in 5u64..13,
        workers in 2usize..=4,
        seed in any::<u64>(),
        drop_prob in 0.10f64..0.25,
        dup_prob in 0.0f64..0.15,
        reorder_prob in 0.0f64..0.15,
    ) {
        let expect = fib_serial(n);
        let faults = LossyConfig {
            drop_prob,
            dup_prob,
            reorder_prob,
            seed: seed ^ 0xFAB,
        };

        // CPS engine: message-protocol steals and non-local synchs over
        // the faulty fabric.
        let cfg = SchedulerConfig::paper_distributed(workers)
            .with_seed(seed)
            .with_link_faults(faults);
        let (cps, _) = Engine::run(cfg, fib_task(n, Cont::ROOT));
        prop_assert_eq!(cps, expect);

        // RecoveringEngine crash-free over the same fault schedule:
        // exact result AND exact task count.
        let tasks = count_tasks(FibSpec { n });
        let ft_cfg = FtConfig {
            seed,
            link_faults: Some(faults),
            ..FtConfig::fast(workers)
        };
        let (ft_out, report) = RecoveringEngine::run(&ft_cfg, FibSpec { n }, &CrashPlan::none());
        prop_assert_eq!(ft_out, expect);
        prop_assert_eq!(report.stats.tasks_executed, tasks);
        prop_assert_eq!(report.crashes, 0);
    }

    /// Same property on the irregular pfold tree (uneven fan-out, the
    /// paper's own application).
    #[test]
    fn lossy_fabric_pfold_agrees(
        n in 2usize..7,
        depth in 1usize..4,
        workers in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let expect = pfold_serial(n);
        let faults = LossyConfig {
            drop_prob: 0.15,
            dup_prob: 0.10,
            reorder_prob: 0.10,
            seed: seed ^ 0xF01D,
        };
        let cfg = SchedulerConfig::paper_distributed(workers)
            .with_seed(seed)
            .with_link_faults(faults);
        let (cps, _) = Engine::run(cfg, pfold_task(n, depth, Cont::ROOT));
        prop_assert_eq!(&cps, &expect);

        let tasks = count_tasks(PfoldSpec::new(n, depth));
        let ft_cfg = FtConfig {
            seed,
            link_faults: Some(faults),
            ..FtConfig::fast(workers)
        };
        let (ft_out, report) =
            RecoveringEngine::run(&ft_cfg, PfoldSpec::new(n, depth), &CrashPlan::none());
        prop_assert_eq!(&ft_out, &expect);
        prop_assert_eq!(report.stats.tasks_executed, tasks);
        prop_assert_eq!(report.crashes, 0);
    }
}

/// Fixed-seed determinism: the counters the paper's tables are built
/// from must not drift run-to-run for a fixed seed, on any engine.
#[test]
fn fixed_seed_runs_are_reproducible() {
    let seed = 0xD15EA5E;
    let spec = || PfoldSpec::new(7, 3);

    let cfg = SchedulerConfig::paper(3).with_seed(seed);
    let (_, a) = SpecEngine::run(cfg, spec());
    let (_, b) = SpecEngine::run(cfg, spec());
    assert_eq!(a.tasks_executed, b.tasks_executed);
    assert_eq!(a.tasks_spawned, b.tasks_spawned);

    let mut micro_cfg = MicroSimConfig::ethernet(3);
    micro_cfg.seed = seed;
    let (_, ma) = run_microsim(&micro_cfg, spec());
    let (_, mb) = run_microsim(&micro_cfg, spec());
    assert_eq!(ma, mb, "microsim report must be bit-identical per seed");
}
