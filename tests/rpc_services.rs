//! End-to-end through the RPC services: workstations obtain jobs from the
//! PhishJobQ *over RPC*, register with the Clearinghouse *over RPC*, do
//! real work, report output through the Clearinghouse, and complete the
//! job — the paper's Figure 2/3 with every arrow an actual message.

use std::sync::Arc;
use std::time::Duration;

use phish::apps::pfold::{count_walks, pfold_serial, PfoldSpec};
use phish::machine::{AssignPolicy, ClearinghouseService, JobQService, JobSpec};
use phish::net::{FabricConfig, LossyConfig};
use phish::scheduler::run_serial;

const T: Duration = Duration::from_secs(30);

#[test]
fn full_rpc_pipeline_with_real_work() {
    let workers = 3;
    let mut jobq = JobQService::start(AssignPolicy::RoundRobin, workers + 1);
    let mut ch = ClearinghouseService::start(workers, Duration::from_secs(120));

    // A user submits pfold.
    let mut user = jobq.take_client(workers);
    let job = user
        .submit(JobSpec::named("pfold 11"), T)
        .expect("submission");

    // Shared frontier for the participants (the job's "shared state").
    let pool = Arc::new(phish::SpecPoolJob::new(PfoldSpec::new(11, 6)));

    let handles: Vec<_> = (0..workers)
        .map(|i| {
            let mut jq = jobq.take_client(i);
            let mut chc = ch.take_client(i);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                // Idle workstation: request a job over RPC.
                let assignment = jq.request_job(T).expect("assignment");
                assert_eq!(assignment.name, "pfold 11");
                // Worker process: register over RPC.
                let roster = chc.register(T).expect("roster");
                assert!(!roster.participants.is_empty());
                // Participate (no evictions in this test).
                let evict = std::sync::atomic::AtomicBool::new(false);
                use phish::machine::WorkerBody;
                let exit = pool.run(i, &evict);
                chc.write_line(format!("exit: {exit:?}"), T);
                chc.unregister(T);
                jq.release(assignment.job, T);
                exit
            })
        })
        .collect();
    let exits: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(exits
        .iter()
        .any(|e| matches!(e, phish::machine::ParticipantExit::JobFinished)));

    // One participant (or the user) reports completion.
    assert!(user.complete(job, T));
    assert!(pool.is_done());
    let hist = pool.take_result();
    assert_eq!(hist, pfold_serial(11), "RPC pipeline must be exact");
    assert_eq!(
        count_walks(&hist),
        count_walks(&run_serial(PfoldSpec::new(11, 6)))
    );

    let final_q = jobq.shutdown();
    assert!(final_q.is_empty(), "completed job must leave the pool");
    let (stats, output) = ch.shutdown();
    assert_eq!(stats.registrations, workers as u64);
    assert_eq!(stats.unregistrations, workers as u64);
    assert_eq!(output.len(), workers, "every participant logged its exit");
}

#[test]
fn full_rpc_pipeline_survives_lossy_links() {
    // The same Figure 2/3 pipeline, but every RPC — job requests, roster
    // registration, output lines, completion — rides a datagram fabric
    // that drops, duplicates, and reorders. The recovery protocol makes
    // the protocol exact anyway.
    let workers = 3;
    let faults = |seed| LossyConfig {
        drop_prob: 0.15,
        dup_prob: 0.08,
        reorder_prob: 0.10,
        seed,
    };
    let mut jobq = JobQService::start_with(
        AssignPolicy::RoundRobin,
        workers + 1,
        FabricConfig::lossy(faults(0x10B0)),
    );
    let mut ch = ClearinghouseService::start_with(
        workers,
        Duration::from_secs(120),
        FabricConfig::lossy(faults(0xC1EA)),
    );

    let mut user = jobq.take_client(workers);
    let job = user
        .submit(JobSpec::named("pfold 9"), T)
        .expect("submission");
    let pool = Arc::new(phish::SpecPoolJob::new(PfoldSpec::new(9, 5)));

    let handles: Vec<_> = (0..workers)
        .map(|i| {
            let mut jq = jobq.take_client(i);
            let mut chc = ch.take_client(i);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let assignment = jq.request_job(T).expect("assignment");
                assert_eq!(assignment.name, "pfold 9");
                let roster = chc.register(T).expect("roster");
                assert!(!roster.participants.is_empty());
                let evict = std::sync::atomic::AtomicBool::new(false);
                use phish::machine::WorkerBody;
                let exit = pool.run(i, &evict);
                chc.write_line(format!("exit: {exit:?}"), T);
                chc.unregister(T);
                jq.release(assignment.job, T);
                exit
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert!(user.complete(job, T));
    assert!(pool.is_done());
    let hist = pool.take_result();
    assert_eq!(hist, pfold_serial(9), "lossy RPC pipeline must be exact");

    let final_q = jobq.shutdown();
    assert!(final_q.is_empty());
    let (stats, output) = ch.shutdown();
    assert_eq!(stats.registrations, workers as u64);
    assert_eq!(stats.unregistrations, workers as u64);
    assert_eq!(
        output.len(),
        workers,
        "every exit line delivered exactly once"
    );
}

#[test]
fn rpc_crash_detection_feeds_recovery_signal() {
    // Two registered workers; one goes silent. The survivor learns about
    // the crash through the Clearinghouse RPC — the signal the recovery
    // layer consumes.
    let mut ch = ClearinghouseService::start(2, Duration::from_millis(60));
    let mut survivor = ch.take_client(0);
    let mut casualty = ch.take_client(1);
    survivor.register(T).unwrap();
    casualty.register(T).unwrap();
    drop(casualty); // silence
    let mut crashed = Vec::new();
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(10));
        survivor.heartbeat(T);
        crashed = survivor.take_crashed(T);
        if !crashed.is_empty() {
            break;
        }
    }
    assert_eq!(crashed.len(), 1, "silent worker must be reported");
    ch.shutdown();
}
