//! Property tests: every application computes the same answer in every
//! form (best-serial, continuation-passing parallel, spec) under every
//! scheduler configuration and worker count.

use proptest::prelude::*;

use phish::apps::pfold::{pfold_serial, pfold_task, PfoldSpec};
use phish::apps::{fib_serial, fib_task, nqueens_serial, nqueens_task, FibSpec, NQueensSpec};
use phish::scheduler::{
    run_serial, Cont, Engine, ExecOrder, SchedulerConfig, SpecEngine, StealEnd, StealProtocol,
    VictimPolicy,
};

fn cfg_strategy() -> impl Strategy<Value = SchedulerConfig> {
    (
        1usize..=4,
        prop_oneof![Just(ExecOrder::Lifo), Just(ExecOrder::Fifo)],
        prop_oneof![Just(StealEnd::Tail), Just(StealEnd::Head)],
        prop_oneof![
            Just(VictimPolicy::UniformRandom),
            Just(VictimPolicy::RoundRobin)
        ],
        prop_oneof![
            Just(StealProtocol::SharedMemory),
            Just(StealProtocol::Message)
        ],
        any::<u64>(),
    )
        .prop_map(|(workers, exec_order, steal_end, victim, protocol, seed)| {
            let mut c = SchedulerConfig::paper(workers).with_seed(seed);
            c.exec_order = exec_order;
            c.steal_end = steal_end;
            c.victim_policy = victim;
            c.steal_protocol = protocol;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fib_all_forms_agree(n in 5u64..18, cfg in cfg_strategy()) {
        let expect = fib_serial(n);
        let (cps, _) = Engine::run(cfg, fib_task(n, Cont::ROOT));
        prop_assert_eq!(cps, expect);
        prop_assert_eq!(run_serial(FibSpec { n }), expect);
        let (spec, _) = SpecEngine::run(cfg, FibSpec { n });
        prop_assert_eq!(spec, expect);
    }

    #[test]
    fn nqueens_all_forms_agree(n in 4u32..9, depth in 0u32..4, cfg in cfg_strategy()) {
        let expect = nqueens_serial(n);
        let (cps, _) = Engine::run(cfg, nqueens_task(n, depth, Cont::ROOT));
        prop_assert_eq!(cps, expect);
        let (spec, _) = SpecEngine::run(cfg, NQueensSpec::new(n, depth));
        prop_assert_eq!(spec, expect);
    }

    #[test]
    fn pfold_all_forms_agree(n in 2usize..9, depth in 1usize..6, cfg in cfg_strategy()) {
        let expect = pfold_serial(n);
        let (cps, _) = Engine::run(cfg, pfold_task(n, depth, Cont::ROOT));
        prop_assert_eq!(&cps, &expect);
        let (spec, _) = SpecEngine::run(cfg, PfoldSpec::new(n, depth));
        prop_assert_eq!(&spec, &expect);
    }

    #[test]
    fn stats_invariants_hold(n in 8u64..16, cfg in cfg_strategy()) {
        let (_, stats) = Engine::run(cfg, fib_task(n, Cont::ROOT));
        // Tasks: root plus everything spawned (continuations run inline as
        // tasks, so executed ≥ spawned).
        prop_assert!(stats.tasks_executed >= stats.tasks_spawned);
        // Every synchronization is local or non-local.
        prop_assert!(stats.nonlocal_synchronizations <= stats.synchronizations);
        // Every non-local synch is a message; steal traffic only adds more.
        prop_assert!(stats.messages_sent >= stats.nonlocal_synchronizations);
        // The working set is bounded by depth × branching, far below the
        // task count for any non-trivial tree.
        prop_assert!(stats.max_tasks_in_use >= 1);
        // Stolen tasks were all spawned (or the root).
        prop_assert!(stats.tasks_stolen <= stats.tasks_executed);
        prop_assert_eq!(stats.per_worker.len(), cfg.workers);
    }
}

#[test]
fn ray_parallel_identical_under_every_protocol() {
    use phish::apps::ray::{benchmark_scene, render_serial, render_task};
    use std::sync::Arc;
    let (scene, cam) = benchmark_scene();
    let expect = render_serial(&scene, &cam, 24, 24);
    let scene = Arc::new(scene);
    for protocol in [StealProtocol::SharedMemory, StealProtocol::Message] {
        let mut cfg = SchedulerConfig::paper(3);
        cfg.steal_protocol = protocol;
        let (band, _) = Engine::run(
            cfg,
            render_task(Arc::clone(&scene), cam, 24, 24, 3, Cont::ROOT),
        );
        assert_eq!(band.pixels, expect, "{protocol:?}");
    }
}
