//! End-to-end integration: the macro level (JobQ + JobManagers +
//! Clearinghouse) drives real micro-level executions.
//!
//! This is the whole Figure 2 pipeline in one process: jobs are submitted
//! to the PhishJobQ; simulated workstations become idle, request work, and
//! run actual `phish_core::Engine` computations as their "worker
//! processes"; the Clearinghouse tracks the participants.

use phish::apps::{fib_serial, fib_task, nqueens_serial, nqueens_task};
use phish::machine::{
    Clearinghouse, JobManager, JobQ, JobSpec, ManagerAction, NobodyLoggedIn, OwnerObservation,
};
use phish::net::time::SECOND;
use phish::net::NodeId;
use phish::scheduler::{Cont, Engine, SchedulerConfig};

const IDLE: OwnerObservation = OwnerObservation {
    users_logged_in: 0,
    cpu_load: 0.0,
};

#[test]
fn jobq_to_engine_pipeline() {
    let mut jobq = JobQ::new();
    let fib_job = jobq.submit(JobSpec::named("fib 22"));
    let nq_job = jobq.submit(JobSpec::named("nqueens 9"));
    let mut clearinghouse = Clearinghouse::new();

    // Two workstations come idle and pull jobs round-robin.
    let mut results: Vec<(String, u64)> = Vec::new();
    for ws in 0..2u32 {
        let mut manager = JobManager::new(Box::new(NobodyLoggedIn), 0);
        let t = 300 * SECOND; // first owner poll
        let actions = manager.tick(t, &IDLE);
        assert_eq!(actions, vec![ManagerAction::RequestJob]);
        let assignment = jobq.request().expect("two jobs pooled");
        let started = manager.on_job_reply(t, Some(assignment.clone()));
        assert!(matches!(started[0], ManagerAction::StartWorker(_)));

        // The "worker process": register, run the real engine, unregister.
        let roster = clearinghouse.register(NodeId(ws), t);
        // The previous workstation already unregistered, so each join sees
        // itself as the only participant.
        assert_eq!(roster.participants.len(), 1);
        let value = if assignment.job == fib_job {
            let (v, _) = Engine::run(SchedulerConfig::paper(2), fib_task(22, Cont::ROOT));
            v
        } else {
            let (v, _) = Engine::run(SchedulerConfig::paper(2), nqueens_task(9, 3, Cont::ROOT));
            v
        };
        clearinghouse.write_line(NodeId(ws), format!("result {value}"));
        clearinghouse.unregister(NodeId(ws));
        jobq.release(assignment.job);
        results.push((assignment.name.clone(), value));
    }

    // Round-robin must have given one workstation each job.
    let names: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["fib 22", "nqueens 9"]);
    assert_eq!(results[0].1, fib_serial(22));
    assert_eq!(results[1].1, nqueens_serial(9));

    jobq.complete(fib_job);
    jobq.complete(nq_job);
    assert!(jobq.is_empty());
    clearinghouse.flush_io();
    assert_eq!(clearinghouse.output().len(), 2);
    assert_eq!(clearinghouse.participant_count(), 0);
}

#[test]
fn owner_return_kills_participation_but_job_survives() {
    // A workstation joins, the owner comes back, the manager kills the
    // worker — and the job can still be completed by another machine.
    let mut jobq = JobQ::new();
    let job = jobq.submit(JobSpec::named("pfold"));
    let mut manager = JobManager::new(Box::new(NobodyLoggedIn), 0);
    let t0 = 300 * SECOND;
    manager.tick(t0, &IDLE);
    let assignment = jobq.request().expect("job pooled");
    manager.on_job_reply(t0, Some(assignment.clone()));

    // Owner returns; within 2 seconds the worker is killed.
    let busy = OwnerObservation {
        users_logged_in: 1,
        cpu_load: 0.7,
    };
    let actions = manager.tick(t0 + 2 * SECOND, &busy);
    assert!(matches!(actions[0], ManagerAction::KillWorker(_)));
    jobq.release(assignment.job);

    // The job remains pooled; another workstation picks it up and finishes.
    let again = jobq.request().expect("job still in pool");
    assert_eq!(again.job, job);
    let (v, _) = Engine::run(SchedulerConfig::paper(2), fib_task(18, Cont::ROOT));
    assert_eq!(v, fib_serial(18));
    jobq.complete(job);
}

#[test]
fn retirement_feeds_macro_scheduler() {
    // Micro-level retirement (parallelism shrank) frees the workstation,
    // whose manager immediately asks the JobQ for new work.
    use phish::scheduler::RetirePolicy;

    let mut cfg = SchedulerConfig::paper(4);
    cfg.retire = RetirePolicy::AfterFailedRounds(2);
    // A small job: most workers find nothing to steal and retire.
    let (v, stats) = Engine::run(cfg, fib_task(12, Cont::ROOT));
    assert_eq!(v, fib_serial(12));
    assert_eq!(stats.per_worker.len(), 4);

    // The freed workstation's manager goes back to the JobQ.
    let mut jobq = JobQ::new();
    let other = jobq.submit(JobSpec::named("other"));
    let mut manager = JobManager::new(Box::new(NobodyLoggedIn), 0);
    let t0 = 300 * SECOND;
    manager.tick(t0, &IDLE);
    let a = jobq.request().expect("other job available");
    let actions = manager.on_job_reply(t0, Some(a));
    assert!(matches!(actions[0], ManagerAction::StartWorker(_)));
    let _ = other;
}

#[test]
fn clearinghouse_tracks_a_full_job_lifecycle() {
    let mut ch = Clearinghouse::with_flush_threshold(4);
    let t0 = 0;
    // Eight workers join over time, update, and leave.
    for w in 0..8u32 {
        ch.register(NodeId(w), t0 + u64::from(w) * SECOND);
    }
    assert_eq!(ch.participant_count(), 8);
    let roster = ch.update(NodeId(0), t0 + 10 * SECOND);
    assert_eq!(roster.participants.len(), 8);
    for w in 0..8u32 {
        ch.write_line(NodeId(w), "partial histogram sent");
    }
    for w in 0..8u32 {
        ch.unregister(NodeId(w));
    }
    ch.flush_io();
    assert_eq!(ch.participant_count(), 0);
    assert_eq!(ch.output().len(), 8);
    let s = ch.stats();
    assert_eq!(s.registrations, 8);
    assert_eq!(s.unregistrations, 8);
    assert!(s.io_flushes >= 2, "threshold 4 over 8 lines: ≥2 flushes");
}
