//! Property tests of the datagram substrate: exactly-once delivery must
//! survive arbitrary loss/duplication/reordering schedules — the property
//! the Phish runtime relied on when it layered its protocol over UDP/IP.

use proptest::prelude::*;

use phish::net::reliable::ReliableMsg;
use phish::net::{
    ChannelNet, Endpoint, LossyConfig, LossyEndpoint, NodeId, ReliableConfig, ReliableEndpoint,
    SendCost,
};

fn reliable_pair(cfg: LossyConfig) -> (ReliableEndpoint<u64>, ReliableEndpoint<u64>) {
    let eps = ChannelNet::<ReliableMsg<u64>>::new(2, SendCost::FREE).into_endpoints();
    let mut it = eps.into_iter();
    let rel = ReliableConfig {
        rto: 10,
        max_retries: 100_000,
    };
    let a = ReliableEndpoint::new(LossyEndpoint::new(it.next().unwrap(), cfg), rel);
    let b = ReliableEndpoint::new(LossyEndpoint::new(it.next().unwrap(), cfg), rel);
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exactly_once_under_arbitrary_faults(
        drop_prob in 0.0f64..0.6,
        dup_prob in 0.0f64..0.4,
        reorder_prob in 0.0f64..0.4,
        seed in any::<u64>(),
        count in 1u64..150,
    ) {
        let cfg = LossyConfig { drop_prob, dup_prob, reorder_prob, seed };
        let (mut a, mut b) = reliable_pair(cfg);
        for i in 0..count {
            a.send(NodeId(1), i, 0);
        }
        let mut got = Vec::new();
        let mut now = 0;
        for _ in 0..200_000 {
            now += 11;
            got.extend(a.pump(now).into_iter().map(|e| e.body));
            got.extend(b.pump(now).into_iter().map(|e| e.body));
            if a.in_flight() == 0 && b.in_flight() == 0 {
                break;
            }
        }
        prop_assert_eq!(a.in_flight(), 0, "sender never quiesced");
        got.sort_unstable();
        prop_assert_eq!(got, (0..count).collect::<Vec<_>>());
    }

    #[test]
    fn raw_lossy_link_loses_at_configured_rate(
        seed in any::<u64>(),
    ) {
        // Sanity check the fault injector itself: at 30% drop the observed
        // loss over 2000 sends must be near 30%.
        let cfg = LossyConfig { drop_prob: 0.3, dup_prob: 0.0, reorder_prob: 0.0, seed };
        let eps = ChannelNet::<u64>::new(2, SendCost::FREE).into_endpoints();
        let mut it = eps.into_iter();
        let mut tx = LossyEndpoint::new(it.next().unwrap(), cfg);
        let rx: Endpoint<u64> = it.next().unwrap();
        for i in 0..2000 {
            tx.send(NodeId(1), i);
        }
        tx.flush_delayed();
        let mut n = 0;
        while rx.try_recv().is_some() {
            n += 1;
        }
        prop_assert!((1200..=1600).contains(&n), "delivered {n}/2000 at 30% loss");
    }
}

#[test]
fn split_phase_with_reliable_transport() {
    // A split-phase RPC over the lossy/reliable stack: request ids survive
    // the transport faults.
    use phish::net::SplitPhase;
    let (mut client, mut server) = reliable_pair(LossyConfig::nasty(7));
    let mut sp: SplitPhase<u64> = SplitPhase::new();
    // Issue 20 requests; encode the request id in the payload's high bits.
    let ids: Vec<_> = (0..20u64)
        .map(|i| {
            let id = sp.register();
            client.send(NodeId(1), (id.0 << 8) | i, 0);
            (id, i)
        })
        .collect();
    let mut now = 0;
    let mut outstanding = 20;
    while outstanding > 0 {
        now += 11;
        // Server echoes requests back as replies, doubled.
        for env in server.pump(now) {
            let (id, arg) = (env.body >> 8, env.body & 0xFF);
            server.send(env.src, (id << 8) | (arg * 2), now);
        }
        for env in client.pump(now) {
            let id = phish::net::RequestId(env.body >> 8);
            if sp.complete(id, env.body & 0xFF) {
                outstanding -= 1;
            }
        }
        assert!(now < 10_000_000, "split-phase RPC never completed");
    }
    for (id, i) in ids {
        assert_eq!(sp.poll(id), Some(i * 2), "request {i} got wrong reply");
    }
}
